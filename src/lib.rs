#![forbid(unsafe_code)]
//! WASABI — detecting retry bugs in software systems.
//!
//! This facade crate re-exports the whole workspace; see the individual
//! crates for detail:
//!
//! - [`lang`] — Javelin, the Java-like modeling language;
//! - [`vm`] — interpreter, virtual clock, trace, and unit-test runner;
//! - [`inject`] — fault-injection handlers (the AspectJ substitute);
//! - [`analysis`] — CFG-based retry detection and IF-policy checks;
//! - [`llm`] — the `LanguageModel` trait, prompts, and the simulated LLM;
//! - [`oracles`] — missing-cap / missing-delay / different-exception oracles;
//! - [`planner`] — coverage profiling and fault-injection planning;
//! - [`engine`] — the parallel campaign engine (worker pool + deterministic merge);
//! - [`corpus`] — the bug-study dataset and the synthetic 8-app corpus;
//! - [`core`] — the WASABI orchestrator (dynamic + static workflows);
//! - [`repair`] — auto-repair: patch synthesis + campaign-backed validation;
//! - [`serve`] — the campaign-as-a-service daemon and its wire protocol;
//! - [`util`] — seeded PRNG and the dependency-free JSON writer.

pub use wasabi_analysis as analysis;
pub use wasabi_core as core;
pub use wasabi_corpus as corpus;
pub use wasabi_engine as engine;
pub use wasabi_inject as inject;
pub use wasabi_lang as lang;
pub use wasabi_llm as llm;
pub use wasabi_oracles as oracles;
pub use wasabi_planner as planner;
pub use wasabi_repair as repair;
pub use wasabi_serve as serve;
pub use wasabi_util as util;
pub use wasabi_vm as vm;
