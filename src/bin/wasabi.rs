//! The `wasabi` command-line tool: run the retry-bug detectors on Javelin
//! source files.
//!
//! ```text
//! wasabi analyze [--json] <file.jav>...   # retry loops, locations, IF outliers
//! wasabi sweep   [--json] <file.jav>...   # LLM static sweep (WHEN findings)
//! wasabi test    [--json] <file.jav>...   # dynamic workflow (inject + oracles)
//! wasabi corpus  <APP> <out-dir>          # write a synthetic app to disk
//! ```

use serde_json::{json, Value};
use std::process::ExitCode;
use wasabi::analysis::ifratio::{if_ratio_reports, IfOptions};
use wasabi::analysis::loops::{all_retry_locations, LoopQueryOptions};
use wasabi::analysis::resolve::ProjectIndex;
use wasabi::core::dynamic::{run_dynamic, DynamicOptions};
use wasabi::core::identify::identify;
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;

const USAGE: &str = "usage:
  wasabi analyze [--json] <file.jav>...
  wasabi sweep   [--json] <file.jav>...
  wasabi test    [--json] <file.jav>...
  wasabi corpus  <APP> <out-dir>     (APP = HA HD MA YA HB HI CA EL)";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = args.remove(0);
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");

    match command.as_str() {
        "analyze" => with_project(&args, |project| analyze(project, json)),
        "sweep" => with_project(&args, |project| sweep(project, json)),
        "test" => with_project(&args, |project| test(project, json)),
        "corpus" => corpus(&args),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn with_project(paths: &[String], run: impl FnOnce(&Project) -> ExitCode) -> ExitCode {
    if paths.is_empty() {
        eprintln!("no input files\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut sources = Vec::new();
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(source) => sources.push((path.clone(), source)),
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        }
    }
    match Project::compile("cli", sources) {
        Ok(project) => run(&project),
        Err(errors) => {
            for error in errors.iter().take(20) {
                eprintln!("{error}");
            }
            ExitCode::FAILURE
        }
    }
}

fn analyze(project: &Project, json: bool) -> ExitCode {
    let index = ProjectIndex::build(project);
    let loops = all_retry_locations(&index, &LoopQueryOptions::default());
    let if_reports = if_ratio_reports(&index, &IfOptions::default());
    if json {
        let value = json!({
            "retry_loops": loops.iter().map(|(l, locations)| json!({
                "coordinator": l.coordinator.to_string(),
                "at": project.locate(l.file, l.span),
                "catches": l.reaching_catches,
                "locations": locations.iter().map(|loc| json!({
                    "retried": loc.retried.to_string(),
                    "exception": loc.exception,
                    "site": loc.site.to_string(),
                })).collect::<Vec<Value>>(),
            })).collect::<Vec<Value>>(),
            "if_outliers": if_reports.iter().map(|r| json!({
                "exception": r.exception,
                "retried": r.r,
                "throwable": r.n,
                "outliers": r.outliers.iter()
                    .map(|o| o.coordinator.to_string())
                    .collect::<Vec<String>>(),
            })).collect::<Vec<Value>>(),
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("serialize"));
        return ExitCode::SUCCESS;
    }
    println!("retry loops: {}", loops.len());
    for (retry_loop, locations) in &loops {
        println!(
            "  {} at {} (catches {:?})",
            retry_loop.coordinator,
            project.locate(retry_loop.file, retry_loop.span),
            retry_loop.reaching_catches
        );
        for location in locations {
            println!("    retries {} on {}", location.retried, location.exception);
        }
    }
    if !if_reports.is_empty() {
        println!("IF-policy outliers:");
        for report in &if_reports {
            println!(
                "  {} retried in {}/{} loops; check: {}",
                report.exception,
                report.r,
                report.n,
                report
                    .outliers
                    .iter()
                    .map(|o| o.coordinator.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    ExitCode::SUCCESS
}

fn sweep(project: &Project, json: bool) -> ExitCode {
    let mut llm = SimulatedLlm::with_seed(0);
    let sweep = wasabi::llm::detector::sweep_project(project, &mut llm);
    if json {
        let value = json!({
            "retry_files": sweep.retry_files.iter().map(|r| json!({
                "path": r.path,
                "poll_excluded": r.poll_excluded,
                "methods": r.retry_methods,
                "sleeps_before_retry": r.sleeps_before_retry,
                "has_cap": r.has_cap,
            })).collect::<Vec<Value>>(),
            "findings": sweep.findings.iter().map(|f| json!({
                "kind": f.kind.to_string(),
                "path": f.path,
                "method": f.method,
            })).collect::<Vec<Value>>(),
            "usage": {
                "calls": sweep.usage.calls,
                "bytes_sent": sweep.usage.bytes_sent,
                "tokens": sweep.usage.tokens,
                "cost_usd": sweep.usage.cost_usd(),
            },
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("serialize"));
        return ExitCode::SUCCESS;
    }
    for finding in &sweep.findings {
        println!("[{}] {} in {}", finding.kind, finding.method, finding.path);
    }
    println!(
        "({} files flagged as retry; {} LLM calls, ${:.2})",
        sweep.retry_files.len(),
        sweep.usage.calls,
        sweep.usage.cost_usd()
    );
    ExitCode::SUCCESS
}

fn test(project: &Project, json: bool) -> ExitCode {
    let mut llm = SimulatedLlm::with_seed(0);
    let identified = identify(project, &mut llm);
    let result = run_dynamic(project, &identified.locations, &DynamicOptions::default());
    if json {
        let value = json!({
            "locations": identified.locations.len(),
            "covering_tests": result.profile.tests_covering_retry(),
            "runs_planned": result.runs_planned,
            "runs_naive": result.runs_naive,
            "pinned_configs": result.restoration.pinned,
            "bugs": result.bugs.iter().map(|b| json!({
                "kind": b.kind.to_string(),
                "coordinator": b.representative().location.coordinator.to_string(),
                "exception": b.representative().location.exception,
                "detail": b.representative().detail,
                "reports": b.reports.len(),
            })).collect::<Vec<Value>>(),
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("serialize"));
    } else {
        println!(
            "{} retry locations; {} injected runs ({} without planning)",
            identified.locations.len(),
            result.runs_planned,
            result.runs_naive
        );
        for bug in &result.bugs {
            let report = bug.representative();
            println!("[{}] {} — {}", bug.kind, report.location.coordinator, report.detail);
        }
        println!("{} distinct retry bug(s)", result.bugs.len());
    }
    if result.bugs.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn corpus(args: &[String]) -> ExitCode {
    let (Some(app), Some(out_dir)) = (args.first(), args.get(1)) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let Some(spec) = wasabi::corpus::spec::paper_apps()
        .into_iter()
        .find(|s| s.short == *app)
    else {
        eprintln!("unknown app `{app}` (HA HD MA YA HB HI CA EL)");
        return ExitCode::from(2);
    };
    let generated =
        wasabi::corpus::synth::generate_app(&spec, wasabi::corpus::spec::Scale::Small);
    for (path, source) in &generated.files {
        let full = std::path::Path::new(out_dir).join(path);
        if let Some(parent) = full.parent() {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {err}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = std::fs::write(&full, source) {
            eprintln!("cannot write {}: {err}", full.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "wrote {} files ({} retry structures, {} unit tests) to {out_dir}",
        generated.files.len(),
        generated.truth.structures.len(),
        generated.tests_generated
    );
    ExitCode::SUCCESS
}
