//! The `wasabi` command-line tool: run the retry-bug detectors on Javelin
//! source files.
//!
//! ```text
//! wasabi analyze [--json] <file.jav>...            # retry loops, locations, IF outliers
//! wasabi sweep   [--json] <file.jav>...            # LLM static sweep (WHEN findings)
//! wasabi lint    [--json] [--jobs N] [--baseline PATH] [--write-baseline PATH]
//!                [--cross-check] [--no-ifratio]    # interprocedural retry diagnostics
//!                <file.jav>...                     # (+ static↔LLM agreement matrix)

//! wasabi test    [--json] [--jobs N] [--max-attempts N] [--journal PATH]
//!                [--resume PATH] [--quiet] [--chaos-panic RATE]
//!                [--trace-out PATH] <file.jav>...
//! wasabi test    --shards N [--shard-dir DIR] [--chaos-kill-shard I] ...
//!                                                  # multi-process sharded campaign
//! wasabi merge   [--json] <shard-dir>              # merge shard journals into a report
//! wasabi stats   <trace.jsonl>... [--journal PATH] # per-phase/per-run trace tables
//! wasabi corpus  <APP> <out-dir> [--amp]           # write a synthetic app to disk
//! wasabi repair  [--json] [--jobs N] [--max-fix-attempts N] [--report PATH]
//!                [--out DIR] [--profile-cache DIR]
//!                (--corpus APP [--amp] [--scale S] | <file.jav>...)
//! wasabi bench   [--jobs N] [--iters N] [--apps HD,MA,...] [--scale tiny|small|paper]
//! wasabi serve   [--addr HOST:PORT] [--unix PATH] [--max-queued N] [--max-inflight N]
//!                [--cache N] [--jobs N]            # campaign-as-a-service daemon
//! wasabi submit  --addr ADDR [--priority N] [--jobs N] [--subscribe] <file.jav>...
//! wasabi submit  --addr ADDR (--stats | --shutdown | --cancel ID | --status ID)
//! ```
//!
//! Exit codes, uniform across subcommands: 0 = success, 1 = findings
//! (retry bugs, lint diagnostics, trace mismatches), 2 = usage, input,
//! or I/O errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use wasabi::analysis::checkers::LintOptions;
use wasabi::analysis::ifratio::{if_ratio_reports, IfOptions};
use wasabi::analysis::loops::{all_retry_locations, LoopQueryOptions};
use wasabi::analysis::resolve::ProjectIndex;
use wasabi::core::dynamic::{run_dynamic_with_observer, DynamicOptions};
use wasabi::core::identify::identify;
use wasabi::core::lint::{cross_check, lint_with_overlap};
use wasabi::core::{report_json, source_digest, ProfileCacheOptions};
use wasabi::engine::campaign::{ChaosConfig, RetryPolicy};
use wasabi::engine::{
    journal, load_trace, render_stats, validate_trace, write_trace, EngineEvent, EngineObserver,
    MetricsObserver, NullObserver, StderrProgress, Tee,
};
use wasabi::lang::project::Project;
use wasabi::llm::simulated::SimulatedLlm;
use wasabi::serve::daemon::{Bind, ServeOptions};
use wasabi::serve::protocol::Request;
use wasabi::serve::retry::{Attempt as SubmitAttempt, RetryConfig};
use wasabi::serve::scheduler::SchedulerConfig;
use wasabi::serve::Connection;
use wasabi::util::Json;

const USAGE: &str = "usage:
  wasabi analyze [--json] <file.jav>...
  wasabi sweep   [--json] <file.jav>...
  wasabi lint    [--json] [--jobs N] [--baseline PATH] [--write-baseline PATH]
                 [--cross-check] [--no-ifratio] <file.jav>...
  wasabi test    [--json] [--jobs N] [--max-attempts N] [--journal PATH]
                 [--resume PATH] [--quiet] [--chaos-panic RATE]
                 [--trace-out PATH] [--adaptive] [--profile-cache DIR]
                 [--profile-cache-bypass] <file.jav>...
  wasabi test    --shards N [--shard-dir DIR] [--chaos-kill-shard I]
                 [--chaos-exit-after N] <file.jav>...
  wasabi merge   [--json] <shard-dir>
  wasabi stats   <trace.jsonl>... [--journal PATH]
  wasabi corpus  <APP> <out-dir> [--amp] [--policy]   (APP = HA HD MA YA HB HI CA EL)
  wasabi repair  [--json] [--jobs N] [--max-fix-attempts N] [--report PATH]
                 [--out DIR] [--profile-cache DIR]
                 (--corpus APP [--amp] [--scale tiny|small|paper] | <file.jav>...)
  wasabi bench   [--jobs N] [--iters N] [--apps HD,MA,...] [--scale tiny|small|paper]
                 [--adaptive] [--profile-cache DIR] [--profile-cache-bypass]
  wasabi serve   [--addr HOST:PORT] [--unix PATH] [--max-queued N] [--max-inflight N]
                 [--cache N] [--jobs N] [--profile-cache DIR]
  wasabi submit  --addr ADDR [--priority N] [--jobs N] [--shards N] [--subscribe]
                 [--retry-attempts N] [--retry-base-ms MS] <file.jav>...
  wasabi submit  --addr ADDR (--stats | --shutdown [--drain [--drain-deadline-ms MS]]
                 | --cancel ID | --status ID)";

/// Campaign-related flags shared by `wasabi test` (and tolerated, unused,
/// by the other commands so flag order never matters).
#[derive(Debug, Default)]
struct CampaignFlags {
    jobs: usize,
    /// Whether `--jobs` was given explicitly (vs. the serial default);
    /// `wasabi submit` forwards the override only when explicit, so the
    /// daemon's own worker-count default wins otherwise.
    jobs_explicit: bool,
    max_attempts: Option<u8>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    quiet: bool,
    chaos_panic: Option<f64>,
    trace_out: Option<PathBuf>,
    /// Parent side of a sharded campaign: child-process count.
    shards: Option<usize>,
    /// Shard directory (journals, manifest, DLQ); default `wasabi-shards`.
    shard_dir: Option<PathBuf>,
    /// Child side: execute only plan slots `[a, b)` of the key-sorted run
    /// list (implies `--stream`; prints no report — the parent merges).
    shard_range: Option<(usize, usize)>,
    /// Bounded-memory streaming: spill records to the journal, keep only
    /// in-flight runs resident.
    stream: bool,
    /// Chaos: exit(86) after N journal appends (crash injection for the
    /// supervisor's restart path).
    chaos_exit_after: Option<u64>,
    /// Chaos, parent side: kill this shard's first child mid-flight.
    chaos_kill_shard: Option<usize>,
    /// Coverage-guided adaptive planning (`wasabi test --adaptive`):
    /// probe wave first, widen only where inconclusive. Off by default;
    /// report digests are pinned only for the fixed grid.
    adaptive: bool,
    /// Directory for digest-keyed coverage-profile persistence
    /// (`--profile-cache DIR`), shared by `test`, `bench`, and `serve`.
    profile_cache: Option<PathBuf>,
    /// Skip the cache read side (always re-profile, still write back).
    profile_cache_bypass: bool,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = args.remove(0);
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let flags = match take_campaign_flags(&mut args) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    match command.as_str() {
        "analyze" => with_project(&args, |project| analyze(project, json)),
        "sweep" => with_project(&args, |project| sweep(project, json)),
        "lint" => lint(&mut args, json, &flags),
        "test" if flags.shards.is_some() => test_sharded(&args, json, &flags),
        "test" => with_project(&args, |project| test(project, json, &flags)),
        "merge" => merge(&args, json),
        "stats" => stats(&args, &flags),
        "corpus" => corpus(&args),
        "repair" => repair(args, json, &flags),
        "bench" => bench(args, &flags),
        "serve" => serve(args, &flags),
        "submit" => submit(args, &flags),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Extracts a boolean `--flag` from the argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let found = args.iter().any(|a| a == flag);
    args.retain(|a| a != flag);
    found
}

/// Extracts `--flag VALUE` (or `--flag=VALUE`) from the argument list.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let mut found = None;
    let prefix = format!("{flag}=");
    let mut index = 0;
    while index < args.len() {
        let arg = args[index].clone();
        if arg == flag {
            let Some(value) = args.get(index + 1) else {
                return Err(format!("{flag} requires a value"));
            };
            found = Some(value.clone());
            args.drain(index..index + 2);
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            found = Some(value.to_string());
            args.remove(index);
        } else {
            index += 1;
        }
    }
    Ok(found)
}

/// Extracts every campaign flag from the argument list; what remains is
/// input files. Defaults: serial (`--jobs 1`), engine-default retry
/// policy, no journal, progress on stderr.
fn take_campaign_flags(args: &mut Vec<String>) -> Result<CampaignFlags, String> {
    let mut flags = CampaignFlags {
        jobs: 1,
        ..CampaignFlags::default()
    };
    if let Some(value) = take_value_flag(args, "--jobs")? {
        flags.jobs = value
            .parse::<usize>()
            .map_err(|_| format!("invalid --jobs value `{value}`"))?;
        if flags.jobs == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        flags.jobs_explicit = true;
    }
    if let Some(value) = take_value_flag(args, "--max-attempts")? {
        let attempts = value
            .parse::<u8>()
            .map_err(|_| format!("invalid --max-attempts value `{value}`"))?;
        if attempts == 0 {
            return Err("--max-attempts must be at least 1".to_string());
        }
        flags.max_attempts = Some(attempts);
    }
    flags.journal = take_value_flag(args, "--journal")?.map(PathBuf::from);
    flags.resume = take_value_flag(args, "--resume")?.map(PathBuf::from);
    flags.trace_out = take_value_flag(args, "--trace-out")?.map(PathBuf::from);
    if let Some(value) = take_value_flag(args, "--shards")? {
        let shards = value
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --shards value `{value}`"))?;
        flags.shards = Some(shards);
    }
    flags.shard_dir = take_value_flag(args, "--shard-dir")?.map(PathBuf::from);
    if let Some(value) = take_value_flag(args, "--shard-range")? {
        let range = value
            .split_once(':')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .filter(|(a, b)| a <= b)
            .ok_or_else(|| format!("invalid --shard-range value `{value}` (want A:B)"))?;
        flags.shard_range = Some(range);
    }
    flags.stream = take_flag(args, "--stream");
    if let Some(value) = take_value_flag(args, "--chaos-exit-after")? {
        let appends = value
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --chaos-exit-after value `{value}`"))?;
        flags.chaos_exit_after = Some(appends);
    }
    if let Some(value) = take_value_flag(args, "--chaos-kill-shard")? {
        let shard = value
            .parse::<usize>()
            .map_err(|_| format!("invalid --chaos-kill-shard value `{value}`"))?;
        flags.chaos_kill_shard = Some(shard);
    }
    if let Some(value) = take_value_flag(args, "--chaos-panic")? {
        let rate = value
            .parse::<f64>()
            .map_err(|_| format!("invalid --chaos-panic value `{value}`"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err("--chaos-panic must be in [0, 1]".to_string());
        }
        flags.chaos_panic = Some(rate);
    }
    flags.adaptive = take_flag(args, "--adaptive");
    flags.profile_cache = take_value_flag(args, "--profile-cache")?.map(PathBuf::from);
    flags.profile_cache_bypass = take_flag(args, "--profile-cache-bypass");
    if flags.profile_cache_bypass && flags.profile_cache.is_none() {
        return Err("--profile-cache-bypass requires --profile-cache".to_string());
    }
    // Shard slices index the *fixed* key-sorted grid; an adaptive child
    // would execute a different (probe-dependent) run set, so the
    // combination is refused rather than silently ignored.
    if flags.adaptive && (flags.shards.is_some() || flags.shard_range.is_some()) {
        return Err("--adaptive cannot be combined with --shards/--shard-range".to_string());
    }
    flags.quiet = args.iter().any(|a| a == "--quiet");
    args.retain(|a| a != "--quiet");
    Ok(flags)
}

fn with_project(paths: &[String], run: impl FnOnce(&Project) -> ExitCode) -> ExitCode {
    if paths.is_empty() {
        eprintln!("no input files\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut sources = Vec::new();
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(source) => sources.push((path.clone(), source)),
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        }
    }
    match Project::compile("cli", sources) {
        Ok(project) => run(&project),
        Err(errors) => {
            for error in errors.iter().take(20) {
                eprintln!("{error}");
            }
            // Input errors are 2, like any other unusable invocation;
            // exit 1 is reserved for findings in valid inputs.
            ExitCode::from(2)
        }
    }
}

fn analyze(project: &Project, json: bool) -> ExitCode {
    let index = ProjectIndex::build(project);
    let loops = all_retry_locations(&index, &LoopQueryOptions::default());
    let if_reports = if_ratio_reports(&index, &IfOptions::default());
    if json {
        let value = Json::obj([
            (
                "retry_loops",
                Json::arr(loops.iter().map(|(l, locations)| {
                    Json::obj([
                        ("coordinator", Json::from(l.coordinator.to_string())),
                        ("at", Json::from(project.locate(l.file, l.span))),
                        (
                            "catches",
                            Json::arr(l.reaching_catches.iter().map(|c| Json::from(c.as_str()))),
                        ),
                        (
                            "locations",
                            Json::arr(locations.iter().map(|loc| {
                                Json::obj([
                                    ("retried", Json::from(loc.retried.to_string())),
                                    ("exception", Json::from(loc.exception.as_str())),
                                    ("site", Json::from(loc.site.to_string())),
                                ])
                            })),
                        ),
                    ])
                })),
            ),
            (
                "if_outliers",
                Json::arr(if_reports.iter().map(|r| {
                    Json::obj([
                        ("exception", Json::from(r.exception.as_str())),
                        ("retried", Json::from(r.r)),
                        ("throwable", Json::from(r.n)),
                        (
                            "outliers",
                            Json::arr(
                                r.outliers
                                    .iter()
                                    .map(|o| Json::from(o.coordinator.to_string())),
                            ),
                        ),
                    ])
                })),
            ),
        ]);
        print!("{}", value.pretty());
        return ExitCode::SUCCESS;
    }
    println!("retry loops: {}", loops.len());
    for (retry_loop, locations) in &loops {
        println!(
            "  {} at {} (catches {:?})",
            retry_loop.coordinator,
            project.locate(retry_loop.file, retry_loop.span),
            retry_loop.reaching_catches
        );
        for location in locations {
            println!("    retries {} on {}", location.retried, location.exception);
        }
    }
    if !if_reports.is_empty() {
        println!("IF-policy outliers:");
        for report in &if_reports {
            println!(
                "  {} retried in {}/{} loops; check: {}",
                report.exception,
                report.r,
                report.n,
                report
                    .outliers
                    .iter()
                    .map(|o| o.coordinator.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    ExitCode::SUCCESS
}

fn sweep(project: &Project, json: bool) -> ExitCode {
    let mut llm = SimulatedLlm::with_seed(0);
    let sweep = wasabi::llm::detector::sweep_project(project, &mut llm);
    if json {
        let value = Json::obj([
            (
                "retry_files",
                Json::arr(sweep.retry_files.iter().map(|r| {
                    Json::obj([
                        ("path", Json::from(r.path.as_str())),
                        ("poll_excluded", Json::from(r.poll_excluded)),
                        ("methods", Json::arr(r.retry_methods.iter().map(|m| Json::from(m.as_str())))),
                        ("sleeps_before_retry", Json::from(r.sleeps_before_retry)),
                        ("has_cap", Json::from(r.has_cap)),
                    ])
                })),
            ),
            (
                "findings",
                Json::arr(sweep.findings.iter().map(|f| {
                    Json::obj([
                        ("kind", Json::from(f.kind.to_string())),
                        ("path", Json::from(f.path.as_str())),
                        ("method", Json::from(f.method.as_str())),
                    ])
                })),
            ),
            (
                "usage",
                Json::obj([
                    ("calls", Json::from(sweep.usage.calls)),
                    ("bytes_sent", Json::from(sweep.usage.bytes_sent)),
                    ("tokens", Json::from(sweep.usage.tokens)),
                    ("cost_usd", Json::from(sweep.usage.cost_usd())),
                ]),
            ),
        ]);
        print!("{}", value.pretty());
        return ExitCode::SUCCESS;
    }
    for finding in &sweep.findings {
        println!("[{}] {} in {}", finding.kind, finding.method, finding.path);
    }
    println!(
        "({} files flagged as retry; {} LLM calls, ${:.2})",
        sweep.retry_files.len(),
        sweep.usage.calls,
        sweep.usage.cost_usd()
    );
    ExitCode::SUCCESS
}

/// `wasabi lint`: run the interprocedural checkers and the LLM overlap
/// accounting. Exit code 0 with no (non-suppressed) diagnostics, 1 when
/// any remain, 2 on usage errors. Output is byte-identical for any
/// `--jobs` value.
fn lint(args: &mut Vec<String>, json: bool, flags: &CampaignFlags) -> ExitCode {
    let (baseline_path, write_baseline) = match (
        take_value_flag(args, "--baseline"),
        take_value_flag(args, "--write-baseline"),
    ) {
        (Ok(read), Ok(write)) => (read, write),
        (Err(message), _) | (_, Err(message)) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(contents) => Some(wasabi::analysis::diag::parse_baseline(&contents)),
            Err(err) => {
                eprintln!("cannot read baseline {path}: {err}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let want_cross = take_flag(args, "--cross-check");
    let no_ifratio = take_flag(args, "--no-ifratio");
    let jobs = flags.jobs;
    with_project(args, move |project| {
        let mut llm = SimulatedLlm::with_seed(0);
        let options = LintOptions {
            jobs,
            ifratio: !no_ifratio,
            ..LintOptions::default()
        };
        let report = lint_with_overlap(project, &mut llm, &options);
        // Arbitrate before baseline suppression: the matrix is about what
        // each detector *finds*, and a suppressed diagnostic was still
        // found.
        let cross = want_cross.then(|| cross_check(&report.lint, &report.sweep));
        if let Some(path) = &write_baseline {
            let rendered = wasabi::analysis::diag::render_baseline(&report.lint.diagnostics);
            if let Err(err) = std::fs::write(path, rendered) {
                eprintln!("cannot write baseline {path}: {err}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {} fingerprints to {path}",
                report.lint.diagnostics.len()
            );
            return ExitCode::SUCCESS;
        }
        let (diags, suppressed) = match &baseline {
            Some(fingerprints) => {
                wasabi::analysis::diag::apply_baseline(report.lint.diagnostics, fingerprints)
            }
            None => (report.lint.diagnostics, 0),
        };
        if json {
            let mut fields = vec![
                (
                    "diagnostics",
                    Json::arr(diags.iter().map(|d| {
                        Json::obj([
                            ("code", Json::from(d.code)),
                            ("severity", Json::from(d.severity.label())),
                            ("file", Json::from(d.file.as_str())),
                            ("line", Json::from(d.line as i64)),
                            ("col", Json::from(d.col as i64)),
                            ("coordinator", Json::from(d.coordinator.as_str())),
                            ("message", Json::from(d.message.as_str())),
                            (
                                "chain",
                                Json::arr(d.chain.iter().map(|h| Json::from(h.as_str()))),
                            ),
                        ])
                    })),
                ),
                ("suppressed", Json::from(suppressed as i64)),
                (
                    "overlap",
                    Json::obj([
                        ("static_only", Json::from(report.overlap.static_only as i64)),
                        ("llm_only", Json::from(report.overlap.llm_only as i64)),
                        ("both", Json::from(report.overlap.both as i64)),
                        ("total", Json::from(report.overlap.total() as i64)),
                    ]),
                ),
            ];
            if let Some(cross) = &cross {
                fields.push((
                    "cross_check",
                    Json::obj([
                        (
                            "cells",
                            Json::arr(cross.cells.iter().map(|cell| {
                                Json::obj([
                                    ("tier", Json::from(cell.tier.label())),
                                    ("code", Json::from(cell.code.as_str())),
                                    ("file", Json::from(cell.file.as_str())),
                                    ("method", Json::from(cell.method.as_str())),
                                ])
                            })),
                        ),
                        ("both", Json::from(cross.both as i64)),
                        ("static_only", Json::from(cross.static_only as i64)),
                        ("llm_only", Json::from(cross.llm_only as i64)),
                    ]),
                ));
            }
            print!("{}", Json::obj(fields).pretty());
        } else {
            print!("{}", wasabi::analysis::diag::render_text(&diags));
            println!(
                "{} diagnostics ({} suppressed by baseline); WHEN overlap: {} static-only, {} llm-only, {} both",
                diags.len(),
                suppressed,
                report.overlap.static_only,
                report.overlap.llm_only,
                report.overlap.both
            );
            if let Some(cross) = &cross {
                print!("{}", cross.render_text());
            }
        }
        if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    })
}

/// Builds the profile-cache options for a compiled project, keyed by the
/// same relative-path source digest the serve daemon's caches use (see
/// DESIGN.md §15 for why paths, not just contents, participate).
fn profile_cache_options(flags: &CampaignFlags, project: &Project) -> Option<ProfileCacheOptions> {
    flags.profile_cache.as_ref().map(|dir| {
        let sources: Vec<(String, String)> = project
            .files
            .iter()
            .map(|file| (file.path.clone(), file.source.clone()))
            .collect();
        ProfileCacheOptions {
            dir: dir.clone(),
            digest: source_digest(&project.name, &sources),
            bypass: flags.profile_cache_bypass,
        }
    })
}

fn test(project: &Project, json: bool, flags: &CampaignFlags) -> ExitCode {
    // With `--trace-out`, a metrics recorder rides along via `Tee`; the
    // identify step runs before the dynamic pipeline, so bracket it here
    // and the trace's phases tile the whole command.
    let mut recorder = flags.trace_out.as_ref().map(|_| MetricsObserver::new());
    let mut llm = SimulatedLlm::with_seed(0);
    if let Some(recorder) = recorder.as_mut() {
        recorder.on_event(&EngineEvent::PhaseStarted { name: "identify" });
    }
    let identified = identify(project, &mut llm);
    if let Some(recorder) = recorder.as_mut() {
        recorder.on_event(&EngineEvent::PhaseFinished { name: "identify" });
    }
    let resume_records = match &flags.resume {
        Some(path) => match journal::load_for_resume(path) {
            Ok(records) => records,
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::from(2);
            }
        },
        None => Vec::new(),
    };
    // Fixed seed: the chaos smoke relies on identical draws across
    // reruns and worker counts.
    let mut chaos = flags.chaos_panic.map(|rate| ChaosConfig::panics(rate, 0xC4A05));
    if let Some(appends) = flags.chaos_exit_after {
        let mut config = chaos.unwrap_or_else(|| ChaosConfig::panics(0.0, 0xC4A05));
        config.exit_after_appends = Some(appends);
        chaos = Some(config);
    }
    // CERBERUS-style arbitration hints: under --adaptive, arbitrate the
    // static checkers against the LLM sweep and let disagreement-tier
    // methods probe first. Pure scheduling — the executed run set and the
    // report bytes are unchanged.
    let disagreement_hints = if flags.adaptive {
        let lint_report = lint_with_overlap(
            project,
            &mut SimulatedLlm::with_seed(0),
            &LintOptions::default(),
        );
        cross_check(&lint_report.lint, &lint_report.sweep).disagreement_methods()
    } else {
        BTreeSet::new()
    };
    let options = DynamicOptions {
        jobs: flags.jobs,
        retry: match flags.max_attempts {
            Some(attempts) => RetryPolicy::with_max_attempts(attempts),
            None => RetryPolicy::default(),
        },
        journal: flags.journal.clone(),
        resume_records,
        chaos,
        // Shard children stream by construction: their journal is the
        // hand-off to the parent, so records need not stay resident.
        stream: flags.stream || flags.shard_range.is_some(),
        shard_range: flags.shard_range,
        // Per-run host timing feeds only the trace recorder; without
        // `--trace-out`, skip the clock reads (the report JSON never
        // carries timing, so output bytes cannot change).
        capture_timing: flags.trace_out.is_some(),
        adaptive: flags.adaptive,
        disagreement_hints,
        profile_cache: profile_cache_options(flags, project),
        ..DynamicOptions::default()
    };
    // Progress goes to stderr, so `--json` output on stdout stays clean.
    let mut progress: Box<dyn EngineObserver> = if flags.quiet {
        Box::new(NullObserver)
    } else {
        Box::new(StderrProgress::default())
    };
    let result = match recorder.as_mut() {
        Some(recorder) => {
            let mut tee = Tee {
                first: progress.as_mut(),
                second: recorder,
            };
            run_dynamic_with_observer(project, &identified.locations, &options, &mut tee)
        }
        None => {
            run_dynamic_with_observer(project, &identified.locations, &options, progress.as_mut())
        }
    };
    if let Some(summary) = &result.adaptive {
        if !flags.quiet {
            eprintln!(
                "[adaptive] {} probe + {}/{} widen runs executed ({} conclusive, {} dedup across {} classes)",
                summary.probe_runs,
                summary.widen_executed,
                summary.widen_candidates,
                summary.skipped_conclusive,
                summary.skipped_dedup,
                summary.classes
            );
        }
    }
    if let (Some(path), Some(recorder)) = (flags.trace_out.as_ref(), recorder.as_ref()) {
        if let Err(err) = write_trace(path, "cli", recorder.phases(), recorder.runs()) {
            eprintln!("{err}");
            return ExitCode::from(2);
        }
        if !flags.quiet {
            eprintln!(
                "[trace] {} phase span(s), {} run span(s) written to {}",
                recorder.phases().len(),
                recorder.runs().len(),
                path.display()
            );
        }
    }
    if flags.shard_range.is_some() {
        // A shard child's product is its journal, not a report: the
        // parent merges journals into the single report. Only the exit
        // code (0/1 = clean) speaks here.
    } else if json {
        // The report document lives in wasabi-core (`report_json`) so the
        // serve daemon emits byte-identical output for the same sources.
        print!("{}", report_json(&identified, &result));
    } else {
        println!(
            "{} retry locations; {} injected runs ({} without planning)",
            identified.locations.len(),
            result.runs_planned,
            result.runs_naive
        );
        for bug in &result.bugs {
            let report = bug.representative();
            println!("[{}] {} — {}", bug.kind, report.location.coordinator, report.detail);
        }
        println!("{} distinct retry bug(s)", result.bugs.len());
    }
    if result.bugs.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `wasabi test --shards N`: the crash-tolerant multi-process campaign.
/// The parent plans, partitions the key-sorted run list, supervises one
/// child process per shard (restart with backoff, bisect poison runs into
/// the DLQ), and merges the shard journals into a report byte-identical
/// to a single-process run.
fn test_sharded(files: &[String], json: bool, flags: &CampaignFlags) -> ExitCode {
    if files.is_empty() {
        eprintln!("no input files\n{USAGE}");
        return ExitCode::from(2);
    }
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            eprintln!("cannot locate the wasabi binary for re-exec: {err}");
            return ExitCode::from(2);
        }
    };
    let options = wasabi::core::sharded::ShardedOptions {
        shards: flags.shards.unwrap_or(2),
        dir: flags
            .shard_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("wasabi-shards")),
        exe,
        cwd: None,
        jobs: flags.jobs,
        max_attempts: flags.max_attempts,
        policy: Default::default(),
        chaos_kill_shard: flags.chaos_kill_shard,
        chaos_exit_after: flags.chaos_exit_after.unwrap_or(3),
        quiet: flags.quiet,
    };
    match wasabi::core::sharded::run_sharded(files, &options) {
        Ok(outcome) => print_sharded_outcome(&outcome, json, flags.quiet),
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(2)
        }
    }
}

/// `wasabi merge <shard-dir>`: standalone key-order merge of a sharded
/// campaign's journals into the same report the campaign printed.
fn merge(args: &[String], json: bool) -> ExitCode {
    let [dir] = args else {
        eprintln!("merge takes exactly one shard directory\n{USAGE}");
        return ExitCode::from(2);
    };
    match wasabi::core::sharded::merge_dir(std::path::Path::new(dir), None) {
        Ok(outcome) => print_sharded_outcome(&outcome, json, false),
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(2)
        }
    }
}

fn print_sharded_outcome(
    outcome: &wasabi::core::sharded::ShardedOutcome,
    json: bool,
    quiet: bool,
) -> ExitCode {
    if json {
        print!("{}", outcome.report);
    } else {
        println!(
            "{} run(s) merged; {} dead-lettered; {} distinct retry bug(s)",
            outcome.merged_runs, outcome.dead_lettered, outcome.bugs
        );
    }
    if !quiet && outcome.restarts > 0 {
        eprintln!("[shard] {} child restart(s) across the campaign", outcome.restarts);
    }
    if outcome.bugs == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `wasabi stats`: renders the per-phase/per-run tables from recorded
/// trace files and validates them — internal consistency always, and,
/// with `--journal PATH`, a cross-check of every run span against the
/// campaign journal (same keys, attempts, injections). Validation
/// problems go to stderr and fail the command, so CI can gate on it.
fn stats(paths: &[String], flags: &CampaignFlags) -> ExitCode {
    if paths.is_empty() {
        eprintln!("no trace files\n{USAGE}");
        return ExitCode::from(2);
    }
    let journal_records = match &flags.journal {
        Some(path) => match journal::load(path) {
            Ok(loaded) => Some(loaded.records),
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut traces = Vec::new();
    for path in paths {
        match load_trace(std::path::Path::new(path)) {
            Ok(trace) => traces.push(trace),
            Err(err) => {
                eprintln!("{err}");
                return ExitCode::from(2);
            }
        }
    }
    print!("{}", render_stats(&traces));
    let mut problems = Vec::new();
    for trace in &traces {
        problems.extend(validate_trace(trace, journal_records.as_deref()));
    }
    if problems.is_empty() {
        ExitCode::SUCCESS
    } else {
        for problem in &problems {
            eprintln!("trace validation: {problem}");
        }
        ExitCode::FAILURE
    }
}

/// Engine-throughput benchmark over the repro corpus: generates each
/// paper app at small scale, runs the full dynamic workflow, and reports
/// runs/sec and interpreter steps/sec as machine-readable JSON. The best
/// (fastest) of `--iters` repetitions per app is reported, so one noisy
/// iteration cannot skew the numbers. Driven by `cargo xtask bench`.
fn bench(mut args: Vec<String>, flags: &CampaignFlags) -> ExitCode {
    use std::time::Instant;

    let iters = match take_value_flag(&mut args, "--iters") {
        Ok(Some(value)) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid --iters value `{value}`");
                return ExitCode::from(2);
            }
        },
        Ok(None) => 2,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let apps_filter: Option<Vec<String>> = match take_value_flag(&mut args, "--apps") {
        Ok(found) => found.map(|list| list.split(',').map(str::to_string).collect()),
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let scale = match take_value_flag(&mut args, "--scale") {
        Ok(found) => match found.as_deref() {
            None | Some("small") => wasabi::corpus::spec::Scale::Small,
            Some("tiny") => wasabi::corpus::spec::Scale::Tiny,
            Some("paper") => wasabi::corpus::spec::Scale::Paper,
            Some(other) => {
                eprintln!("invalid --scale `{other}` (tiny|small|paper)");
                return ExitCode::from(2);
            }
        },
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let specs: Vec<_> = wasabi::corpus::spec::paper_apps()
        .into_iter()
        .filter(|spec| {
            apps_filter
                .as_ref()
                .is_none_or(|wanted| wanted.iter().any(|w| w == spec.short))
        })
        .collect();
    if specs.is_empty() {
        eprintln!("no apps selected (known: HA HD MA YA HB HI CA EL)");
        return ExitCode::from(2);
    }

    let mut app_rows = Vec::new();
    let (mut runs, mut steps, mut virtual_ms) = (0u64, 0u64, 0u64);
    let mut wall_us = 0u128;
    // Per-phase wall time, summed across apps (best iteration each), in
    // first-appearance order so the JSON reads in pipeline order.
    let mut phase_totals: Vec<(String, u64)> = Vec::new();
    for spec in &specs {
        let app = wasabi::corpus::synth::generate_app(spec, scale);
        let project = wasabi::corpus::synth::compile_app(&app);
        let mut llm = SimulatedLlm::with_seed(app.spec.seed);
        let identified = identify(&project, &mut llm);
        // (wall_us, runs, steps, virtual_ms, per-phase wall times).
        type BenchSample = (u128, u64, u64, u64, Vec<(String, u64)>);
        let mut best: Option<BenchSample> = None;
        for _ in 0..iters {
            let options = DynamicOptions {
                jobs: flags.jobs,
                adaptive: flags.adaptive,
                profile_cache: profile_cache_options(flags, &project),
                ..DynamicOptions::default()
            };
            // A metrics recorder attributes the measured wall time to
            // pipeline phases; the phase sum tiles the measured region.
            let mut recorder = MetricsObserver::new();
            let started = Instant::now();
            let result = run_dynamic_with_observer(
                &project,
                &identified.locations,
                &options,
                &mut recorder,
            );
            let elapsed_us = started.elapsed().as_micros();
            let phases: Vec<(String, u64)> = recorder
                .phases()
                .iter()
                .map(|p| (p.name.clone(), p.wall_us()))
                .collect();
            let sample = (
                elapsed_us,
                result.campaign.runs_total as u64,
                result.campaign.steps,
                result.campaign.virtual_ms,
                phases,
            );
            if best.as_ref().is_none_or(|b| sample.0 < b.0) {
                best = Some(sample);
            }
        }
        let (us, app_runs, app_steps, app_virtual, app_phases) = best.expect("iters >= 1");
        for (name, phase_us) in &app_phases {
            match phase_totals.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += phase_us,
                None => phase_totals.push((name.clone(), *phase_us)),
            }
        }
        app_rows.push(Json::obj([
            ("app", Json::from(spec.short)),
            ("runs", Json::from(app_runs)),
            ("steps", Json::from(app_steps)),
            ("virtual_ms", Json::from(app_virtual)),
            ("wall_ms", Json::from(us as f64 / 1000.0)),
            ("phases", phases_to_json(&app_phases)),
        ]));
        runs += app_runs;
        steps += app_steps;
        virtual_ms += app_virtual;
        wall_us += us;
    }
    let wall_secs = (wall_us as f64 / 1.0e6).max(1.0e-9);
    let value = Json::obj([
        ("scale", Json::from(format!("{scale:?}").to_lowercase())),
        ("jobs", Json::from(flags.jobs)),
        ("iters", Json::from(iters)),
        ("apps", Json::arr(app_rows)),
        (
            "totals",
            Json::obj([
                ("runs", Json::from(runs)),
                ("steps", Json::from(steps)),
                ("virtual_ms", Json::from(virtual_ms)),
                ("wall_ms", Json::from(wall_us as f64 / 1000.0)),
                ("phases", phases_to_json(&phase_totals)),
                ("runs_per_sec", Json::from(runs as f64 / wall_secs)),
                ("steps_per_sec", Json::from(steps as f64 / wall_secs)),
            ]),
        ),
    ]);
    print!("{}", value.pretty());
    ExitCode::SUCCESS
}

/// `{"restore": ms, ...}` per-phase wall-time object for bench rows, in
/// the order the phases ran.
fn phases_to_json(phases: &[(String, u64)]) -> Json {
    Json::obj(
        phases
            .iter()
            .map(|(name, us)| (name.as_str(), Json::from(*us as f64 / 1000.0))),
    )
}

/// `wasabi serve`: run the campaign-as-a-service daemon until a client
/// sends the `shutdown` op. Prints one startup banner line to stdout —
/// `{"kind":"wasabi-serve","version":1,"addr":"..."}` — so scripts can
/// discover the bound port when `--addr` ends in `:0`.
fn serve(mut args: Vec<String>, flags: &CampaignFlags) -> ExitCode {
    let parsed = (|| -> Result<ServeOptions, String> {
        let addr = take_value_flag(&mut args, "--addr")?;
        let unix = take_value_flag(&mut args, "--unix")?;
        let mut scheduler = SchedulerConfig::default();
        if let Some(value) = take_value_flag(&mut args, "--max-queued")? {
            scheduler.max_queued = value
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("invalid --max-queued value `{value}`"))?;
        }
        if let Some(value) = take_value_flag(&mut args, "--max-inflight")? {
            scheduler.max_inflight = value
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("invalid --max-inflight value `{value}`"))?;
        }
        if let Some(value) = take_value_flag(&mut args, "--queue-timeout-ms")? {
            let ms = value
                .parse::<u64>()
                .map_err(|_| format!("invalid --queue-timeout-ms value `{value}`"))?;
            scheduler.queue_timeout_us = Some(ms.saturating_mul(1000));
        }
        let mut options = ServeOptions {
            scheduler,
            campaign_jobs: flags.jobs,
            profile_cache: flags.profile_cache.clone(),
            ..ServeOptions::default()
        };
        if let Some(value) = take_value_flag(&mut args, "--cache")? {
            options.cache_capacity = value
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("invalid --cache value `{value}`"))?;
        }
        options.bind = match (unix, addr) {
            (Some(_), Some(_)) => return Err("--addr and --unix are mutually exclusive".into()),
            #[cfg(unix)]
            (Some(path), None) => Bind::Unix(PathBuf::from(path)),
            #[cfg(not(unix))]
            (Some(_), None) => return Err("--unix is not supported on this platform".into()),
            (None, addr) => Bind::Tcp(addr.unwrap_or_else(|| "127.0.0.1:0".to_string())),
        };
        if let Some(extra) = args.first() {
            return Err(format!("unexpected argument `{extra}`"));
        }
        Ok(options)
    })();
    let options = match parsed {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let quiet = flags.quiet;
    match wasabi::serve::daemon::spawn(options) {
        Ok(handle) => {
            use std::io::Write as _;
            println!("{}", handle.banner());
            // The banner is the machine-readable hand-off; scripts read
            // it from a pipe before the daemon exits, so flush past the
            // pipe's block buffering.
            let _ = std::io::stdout().flush();
            if !quiet {
                eprintln!("[serve] listening on {} (send the shutdown op to stop)", handle.addr);
            }
            handle.join();
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("cannot bind: {err}");
            ExitCode::from(2)
        }
    }
}

/// `wasabi submit`: client for a running `wasabi serve` daemon. The
/// default form submits sources, waits, and prints the report JSON —
/// byte-identical to `wasabi test --quiet --json` on the same files —
/// with `wasabi test` exit semantics (1 when bugs were found). Control
/// forms (`--stats`, `--shutdown`, `--cancel`, `--status`) print the
/// daemon's one-line response.
fn submit(mut args: Vec<String>, flags: &CampaignFlags) -> ExitCode {
    let subscribe = take_flag(&mut args, "--subscribe");
    let stats_op = take_flag(&mut args, "--stats");
    let shutdown_op = take_flag(&mut args, "--shutdown");
    let drain = take_flag(&mut args, "--drain");
    // (addr, priority, cancel, status, retry, drain_deadline).
    type SubmitArgs = (String, u8, Option<u64>, Option<u64>, RetryConfig, Option<u64>);
    let parsed = (|| -> Result<SubmitArgs, String> {
        let addr = take_value_flag(&mut args, "--addr")?
            .ok_or("submit requires --addr (from the serve banner)")?;
        let priority = match take_value_flag(&mut args, "--priority")? {
            None => wasabi::serve::scheduler::DEFAULT_PRIORITY,
            Some(value) => value
                .parse::<u8>()
                .ok()
                .filter(|&p| p <= wasabi::serve::scheduler::MAX_PRIORITY)
                .ok_or_else(|| format!("invalid --priority value `{value}` (0-9)"))?,
        };
        let cancel = match take_value_flag(&mut args, "--cancel")? {
            None => None,
            Some(value) => Some(
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid --cancel job id `{value}`"))?,
            ),
        };
        let status = match take_value_flag(&mut args, "--status")? {
            None => None,
            Some(value) => Some(
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid --status job id `{value}`"))?,
            ),
        };
        let mut retry = RetryConfig::default();
        if let Some(value) = take_value_flag(&mut args, "--retry-attempts")? {
            retry.attempts = value
                .parse::<u32>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("invalid --retry-attempts value `{value}`"))?;
        }
        if let Some(value) = take_value_flag(&mut args, "--retry-base-ms")? {
            let ms = value
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("invalid --retry-base-ms value `{value}`"))?;
            retry.base = std::time::Duration::from_millis(ms);
        }
        let drain_deadline = match take_value_flag(&mut args, "--drain-deadline-ms")? {
            None => None,
            Some(value) => Some(
                value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid --drain-deadline-ms value `{value}`"))?,
            ),
        };
        Ok((addr, priority, cancel, status, retry, drain_deadline))
    })();
    let (addr, priority, cancel, status, retry, drain_deadline) = match parsed {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Control ops: one connection, one request, print the response line.
    let control = if stats_op {
        Some(Request::Stats)
    } else if shutdown_op {
        Some(Request::Shutdown {
            drain,
            deadline_ms: drain_deadline,
        })
    } else if let Some(id) = cancel {
        Some(Request::Cancel { id })
    } else {
        status.map(|id| Request::Status { id })
    };
    if let Some(request) = control {
        let mut conn = match Connection::connect(&addr) {
            Ok(conn) => conn,
            Err(err) => {
                eprintln!("cannot connect to {addr}: {err}");
                return ExitCode::from(2);
            }
        };
        return match conn.request(&request) {
            Ok(response) => {
                println!("{response}");
                if response.get("ok").and_then(Json::as_bool) == Some(true) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(2)
                }
            }
            Err(err) => {
                eprintln!("daemon request failed: {err}");
                ExitCode::from(2)
            }
        };
    }

    if args.is_empty() {
        eprintln!("no input files\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut files = Vec::with_capacity(args.len());
    for path in &args {
        match std::fs::read_to_string(path) {
            Ok(source) => files.push((path.clone(), source)),
            Err(err) => {
                eprintln!("cannot read {path}: {err}");
                return ExitCode::from(2);
            }
        }
    }
    let request = Request::Submit {
        name: "cli".to_string(),
        priority,
        files,
        jobs: flags.jobs_explicit.then_some(flags.jobs),
        shards: flags.shards,
    };
    // Each attempt reconnects: connect failures and admission rejections
    // (full queue, draining daemon) are the transient refusals worth a
    // backoff; protocol errors are fatal and fail immediately.
    let quiet = flags.quiet;
    let attempted = wasabi::serve::retry_submit(
        &retry,
        |attempt| {
            if attempt > 0 && !quiet {
                eprintln!("[submit] retrying (attempt {})", attempt + 1);
            }
            let mut conn = match Connection::connect(&addr) {
                Ok(conn) => conn,
                Err(err) => {
                    return SubmitAttempt::Retryable(format!("cannot connect to {addr}: {err}"))
                }
            };
            let submitted = match conn.request(&request) {
                Ok(response) => response,
                Err(err) => {
                    return SubmitAttempt::Retryable(format!("daemon request failed: {err}"))
                }
            };
            if submitted.get("ok").and_then(Json::as_bool) != Some(true) {
                return if let Some(reason) = submitted.get("rejected").and_then(Json::as_str) {
                    SubmitAttempt::Retryable(format!("submission rejected: {reason}"))
                } else {
                    let message = submitted.get("error").and_then(Json::as_str).unwrap_or("?");
                    SubmitAttempt::Fatal(format!("submission failed: {message}"))
                };
            }
            match submitted.get("id").and_then(Json::as_u64) {
                Some(id) => SubmitAttempt::Ok((conn, id)),
                None => SubmitAttempt::Fatal("daemon response carried no job id".to_string()),
            }
        },
        std::thread::sleep,
    );
    let (mut conn, id) = match attempted {
        Ok(accepted) => accepted,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if !flags.quiet {
        eprintln!("[submit] job {id} queued on {addr}");
    }

    if subscribe {
        // Stream span/progress events to stderr until the terminal
        // event, then fall through to collect the report.
        match conn.request(&Request::Subscribe { id }) {
            Ok(ack) if ack.get("ok").and_then(Json::as_bool) == Some(true) => {
                while let Ok(Some(line)) = conn.read_line() {
                    eprintln!("[event] {line}");
                    let finished = Json::parse(&line)
                        .ok()
                        .and_then(|e| e.get("event").and_then(Json::as_str).map(str::to_string))
                        .is_some_and(|kind| kind == "finished");
                    if finished {
                        break;
                    }
                }
            }
            Ok(ack) => {
                eprintln!("subscribe failed: {ack:?}");
                return ExitCode::from(2);
            }
            Err(err) => {
                eprintln!("subscribe failed: {err}");
                return ExitCode::from(2);
            }
        }
    }

    match conn.request(&Request::Wait { id }) {
        Ok(response) if response.get("ok").and_then(Json::as_bool) == Some(true) => {
            if let Some(report) = response.get("report").and_then(Json::as_str) {
                // The report string already ends with a newline
                // (`Json::pretty` output), matching `wasabi test --json`.
                print!("{report}");
            }
            if !flags.quiet {
                let cached = response.get("cached").and_then(Json::as_bool) == Some(true);
                eprintln!("[submit] job {id} done{}", if cached { " (cache hit)" } else { "" });
            }
            let bugs = response.get("bugs").and_then(Json::as_u64).unwrap_or(0);
            if bugs == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(response) => {
            let message = response.get("error").and_then(Json::as_str).unwrap_or("?");
            eprintln!("job {id} failed: {message}");
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("daemon request failed: {err}");
            ExitCode::from(2)
        }
    }
}

fn corpus(args: &[String]) -> ExitCode {
    let mut args: Vec<String> = args.to_vec();
    let amp = take_flag(&mut args, "--amp");
    let policy = take_flag(&mut args, "--policy");
    let (Some(app), Some(out_dir)) = (args.first(), args.get(1)) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let Some(spec) = wasabi::corpus::spec::paper_apps()
        .into_iter()
        .find(|s| s.short == *app)
    else {
        eprintln!("unknown app `{app}` (HA HD MA YA HB HI CA EL)");
        return ExitCode::from(2);
    };
    let scale = wasabi::corpus::spec::Scale::Small;
    let mut generated = if amp {
        wasabi::corpus::synth::generate_app_with_amp(&spec, scale)
    } else {
        wasabi::corpus::synth::generate_app(&spec, scale)
    };
    if policy {
        wasabi::corpus::synth::append_policy_seeds(&mut generated);
    }
    for (path, source) in &generated.files {
        let full = std::path::Path::new(out_dir).join(path);
        if let Some(parent) = full.parent() {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {err}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(err) = std::fs::write(&full, source) {
            eprintln!("cannot write {}: {err}", full.display());
            return ExitCode::from(2);
        }
    }
    // The policy truth labels ride along as a sidecar so external
    // harnesses (and the lint gate) can score W004–W006 findings without
    // linking the corpus crate.
    if policy {
        let sidecar = Json::arr(generated.truth.policy_seeds.iter().map(|seed| {
            Json::obj([
                ("id", Json::from(seed.id.as_str())),
                ("code", Json::from(seed.code)),
                (
                    "coordinator",
                    Json::from(format!(
                        "{}.{}",
                        seed.coordinator.class, seed.coordinator.name
                    )),
                ),
                ("file", Json::from(seed.file_path.as_str())),
                ("genuine", Json::from(seed.genuine)),
            ])
        }));
        let full = std::path::Path::new(out_dir).join("policy_truth.json");
        if let Err(err) = std::fs::write(&full, sidecar.pretty()) {
            eprintln!("cannot write {}: {err}", full.display());
            return ExitCode::from(2);
        }
    }
    println!(
        "wrote {} files ({} retry structures, {} unit tests) to {out_dir}",
        generated.files.len(),
        generated.truth.structures.len(),
        generated.tests_generated
    );
    ExitCode::SUCCESS
}

/// `wasabi repair`: synthesize patches for confirmed retry diagnostics
/// and validate each candidate with a targeted fault-injection campaign.
/// Exit 0 when every target is fixed (or there was nothing to fix),
/// 1 when unfixed targets remain, 2 on usage or I/O errors.
fn repair(mut args: Vec<String>, json: bool, flags: &CampaignFlags) -> ExitCode {
    let max_fix_attempts = match take_value_flag(&mut args, "--max-fix-attempts") {
        Ok(Some(value)) => match value.parse::<u32>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("invalid --max-fix-attempts value `{value}`");
                return ExitCode::from(2);
            }
        },
        Ok(None) => 3,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (report_path, out_dir, corpus_app) = match (
        take_value_flag(&mut args, "--report"),
        take_value_flag(&mut args, "--out"),
        take_value_flag(&mut args, "--corpus"),
    ) {
        (Ok(report), Ok(out), Ok(corpus)) => (report.map(PathBuf::from), out, corpus),
        (Err(message), _, _) | (_, Err(message), _) | (_, _, Err(message)) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let amp = take_flag(&mut args, "--amp");
    let scale = match take_value_flag(&mut args, "--scale") {
        Ok(found) => match found.as_deref() {
            None | Some("small") => wasabi::corpus::spec::Scale::Small,
            Some("tiny") => wasabi::corpus::spec::Scale::Tiny,
            Some("paper") => wasabi::corpus::spec::Scale::Paper,
            Some(other) => {
                eprintln!("invalid --scale `{other}` (tiny|small|paper)");
                return ExitCode::from(2);
            }
        },
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Corpus mode generates the app in-memory (with ground truth for
    // scoring); file mode reads the argument paths.
    let (name, sources, truth, llm_seed) = if let Some(app) = corpus_app {
        if !args.is_empty() {
            eprintln!("--corpus and explicit input files are mutually exclusive\n{USAGE}");
            return ExitCode::from(2);
        }
        let Some(spec) = wasabi::corpus::spec::paper_apps()
            .into_iter()
            .find(|s| s.short == app)
        else {
            eprintln!("unknown app `{app}` (HA HD MA YA HB HI CA EL)");
            return ExitCode::from(2);
        };
        let generated = if amp {
            wasabi::corpus::synth::generate_app_with_amp(&spec, scale)
        } else {
            wasabi::corpus::synth::generate_app(&spec, scale)
        };
        let seed = generated.spec.seed;
        (app, generated.files, Some(generated.truth), seed)
    } else {
        if amp {
            eprintln!("--amp requires --corpus\n{USAGE}");
            return ExitCode::from(2);
        }
        if args.is_empty() {
            eprintln!("no input files\n{USAGE}");
            return ExitCode::from(2);
        }
        let mut sources = Vec::new();
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(source) => sources.push((path.clone(), source)),
                Err(err) => {
                    eprintln!("cannot read {path}: {err}");
                    return ExitCode::from(2);
                }
            }
        }
        ("project".to_string(), sources, None, 0)
    };

    let options = wasabi::repair::RepairOptions {
        jobs: flags.jobs,
        max_fix_attempts,
        llm_seed,
        profile_cache: flags.profile_cache.clone(),
        ..wasabi::repair::RepairOptions::default()
    };
    let outcome = match wasabi::repair::repair(&name, sources, &options) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("repair failed: {err}");
            return ExitCode::from(2);
        }
    };

    let report = wasabi::repair::render_report(&outcome, truth.as_ref());
    if let Some(path) = &report_path {
        if let Err(err) = std::fs::write(path, report.pretty()) {
            eprintln!("cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &out_dir {
        for (path, source) in &outcome.sources {
            // Keep absolute input paths inside the output directory
            // instead of letting `join` escape back to the originals.
            let full = std::path::Path::new(dir).join(path.trim_start_matches('/'));
            if let Some(parent) = full.parent() {
                if let Err(err) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {err}", parent.display());
                    return ExitCode::from(2);
                }
            }
            if let Err(err) = std::fs::write(&full, source) {
                eprintln!("cannot write {}: {err}", full.display());
                return ExitCode::from(2);
            }
        }
    }

    let fixed = outcome.targets.iter().filter(|t| t.fixed).count();
    if json {
        print!("{}", report.pretty());
    } else {
        for target in &outcome.targets {
            let status = if target.fixed { "fixed" } else { "UNFIXED" };
            let detail = if target.fixed {
                match target.tried.iter().find(|a| a.accepted) {
                    Some(attempt) => {
                        format!("{} after {} attempt(s)", attempt.template, target.attempts)
                    }
                    None => "side effect of an earlier patch".to_string(),
                }
            } else {
                target.reason.clone()
            };
            println!(
                "{status} {} {} ({detail})",
                target.code, target.coordinator
            );
        }
        println!(
            "repair: {fixed}/{} targets fixed ({} baseline + {} validation runs)",
            outcome.targets.len(),
            outcome.baseline_runs,
            outcome.validation_runs
        );
    }
    if fixed == outcome.targets.len() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
