//! Byte-offset source spans and line/column mapping.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a new span from byte offsets.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for human-facing diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column positions for one source file.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map by scanning `source` for newlines.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push((i + 1) as u32);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte offset into a 1-based line/column position.
    ///
    /// Offsets past the end of the file map to the last line.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: (line_idx + 1) as u32,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Number of lines in the file (at least 1).
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(3, 7).len(), 4);
        assert!(Span::new(3, 3).is_empty());
        assert!(!Span::new(3, 4).is_empty());
        assert!(Span::dummy().is_empty());
    }

    #[test]
    fn line_map_basic() {
        let map = LineMap::new("ab\ncde\n\nf");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(5), LineCol { line: 2, col: 3 });
        assert_eq!(map.line_col(7), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 4, col: 1 });
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn line_map_empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_count(), 1);
    }

    #[test]
    fn line_map_offset_past_end() {
        let map = LineMap::new("xy");
        assert_eq!(map.line_col(10), LineCol { line: 1, col: 11 });
    }
}
