//! Diagnostics for lexing, parsing, and project compilation.

use crate::span::{LineMap, Span};
use std::fmt;

/// A source-level error with a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the file the error occurred in (empty if unknown).
    pub path: String,
    /// Span of the offending source text.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic without a file path (filled in by the project).
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            path: String::new(),
            span,
            message: message.into(),
        }
    }

    /// Returns a copy with `path` attached.
    pub fn with_path(mut self, path: &str) -> Self {
        self.path = path.to_string();
        self
    }

    /// Renders the diagnostic with a 1-based line:column computed via `map`.
    pub fn render(&self, map: &LineMap) -> String {
        let pos = map.line_col(self.span.start);
        if self.path.is_empty() {
            format!("{pos}: {}", self.message)
        } else {
            format!("{}:{pos}: {}", self.path, self.message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "@{}: {}", self.span, self.message)
        } else {
            write!(f, "{}@{}: {}", self.path, self.span, self.message)
        }
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_with_line_map() {
        let map = LineMap::new("one\ntwo\nthree");
        let d = Diagnostic::new(Span::new(4, 7), "bad token").with_path("f.jav");
        assert_eq!(d.render(&map), "f.jav:2:1: bad token");
    }

    #[test]
    fn display_without_path() {
        let d = Diagnostic::new(Span::new(1, 2), "oops");
        assert_eq!(d.to_string(), "@1..2: oops");
    }
}
