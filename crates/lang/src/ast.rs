//! The Javelin abstract syntax tree.
//!
//! Every call site carries a [`CallId`] and every loop (and switch) a
//! [`LoopId`]; both are unique within a file and stable for a given source
//! text, so the analysis, planner, and injection crates can name *retry
//! locations* — a (coordinator method, retried method, trigger exception)
//! triple anchored at a call site — across workflow stages.

use crate::span::Span;
use std::fmt;

/// Identifier of a call or `new` expression, unique within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId(pub u32);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a loop or switch statement, unique within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A top-level item in a source file.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `exception Name extends Parent;`
    ExceptionDecl(ExceptionDecl),
    /// `config "key" default <literal>;`
    ConfigDecl(ConfigDecl),
    /// A class declaration.
    Class(ClassDecl),
}

/// Declaration of an exception type and its parent in the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptionDecl {
    /// Exception type name.
    pub name: String,
    /// Parent exception type; defaults to `Exception` when omitted.
    pub parent: Option<String>,
    /// Source span of the declaration.
    pub span: Span,
}

/// Declaration of an application configuration key with its default value.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigDecl {
    /// Configuration key, e.g. `"dfs.mover.retry.max.attempts"`.
    pub key: String,
    /// Default value.
    pub default: Literal,
    /// Source span of the declaration.
    pub span: Span,
}

/// A class with fields and methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass, if any.
    pub parent: Option<String>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method and test declarations.
    pub methods: Vec<MethodDecl>,
    /// Source span of the whole class.
    pub span: Span,
}

/// A field declaration with an optional initializer.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Initializer expression; fields default to `null` when omitted.
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// A method or unit-test declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Declared thrown exception types (the `throws` clause).
    pub throws: Vec<String>,
    /// Method body.
    pub body: Block,
    /// Whether this was declared with `test` instead of `method`.
    pub is_test: bool,
    /// Source span of the whole method.
    pub span: Span,
}

/// A `{ ... }` sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source span including the braces.
    pub span: Span,
}

impl Block {
    /// An empty block with a dummy span, for synthesized code.
    pub fn empty() -> Self {
        Block {
            stmts: Vec::new(),
            span: Span::dummy(),
        }
    }
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable or parameter.
    Var(String, Span),
    /// A field of an object: `recv.name`.
    Field {
        /// Receiver expression.
        recv: Expr,
        /// Field name.
        name: String,
        /// Source span.
        span: Span,
    },
}

impl LValue {
    /// Source span of the target.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, span) => *span,
            LValue::Field { span, .. } => *span,
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;`
    Var {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
        /// Source span.
        span: Span,
    },
    /// `target = value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value expression.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop id, unique within the file.
        id: LoopId,
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `for (init; cond; update) { .. }` — each header part optional.
    For {
        /// Loop id, unique within the file.
        id: LoopId,
        /// Initializer (a `var` or assignment).
        init: Option<Box<Stmt>>,
        /// Condition; `true` when omitted.
        cond: Option<Expr>,
        /// Update statement (an assignment).
        update: Option<Box<Stmt>>,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `switch (scrutinee) { case LIT: { .. } ... default: { .. } }`
    Switch {
        /// Switch id (shares the loop id space; state-machine structures).
        id: LoopId,
        /// Scrutinee expression.
        scrutinee: Expr,
        /// `(literal, body)` arms; no fallthrough.
        cases: Vec<(Literal, Block)>,
        /// Optional default arm.
        default: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// `try { .. } catch (T e) { .. } finally { .. }`
    Try {
        /// Protected body.
        body: Block,
        /// Catch clauses, tried in order.
        catches: Vec<CatchClause>,
        /// Optional finally block.
        finally: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// `throw expr;`
    Throw {
        /// Exception value.
        expr: Expr,
        /// Source span.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// Optional return value.
        expr: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// `break;`
    Break {
        /// Source span.
        span: Span,
    },
    /// `continue;`
    Continue {
        /// Source span.
        span: Span,
    },
    /// `sleep(ms);` — advances the virtual clock.
    Sleep {
        /// Milliseconds to sleep.
        ms: Expr,
        /// Source span.
        span: Span,
    },
    /// `log(expr);` — appends to the trace log.
    Log {
        /// Logged value.
        expr: Expr,
        /// Source span.
        span: Span,
    },
    /// `assert(cond, msg?);` — throws `AssertionError` when false.
    Assert {
        /// Asserted condition.
        cond: Expr,
        /// Optional message.
        msg: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// A bare expression statement (usually a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// Source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Var { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Switch { span, .. }
            | Stmt::Try { span, .. }
            | Stmt::Throw { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break { span }
            | Stmt::Continue { span }
            | Stmt::Sleep { span, .. }
            | Stmt::Log { span, .. }
            | Stmt::Assert { span, .. }
            | Stmt::Expr { span, .. } => *span,
        }
    }
}

/// One `catch (Type name) { .. }` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// Caught exception type; matches subtypes too.
    pub exc_type: String,
    /// Name the exception value is bound to.
    pub binding: String,
    /// Handler body.
    pub body: Block,
    /// Source span.
    pub span: Span,
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// The null reference.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    /// Source text of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

impl UnOp {
    /// Source text of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Literal, Span),
    /// A variable or parameter reference.
    Ident(String, Span),
    /// The `this` reference.
    This(Span),
    /// Field access: `recv.name`.
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// A method call. Without a receiver this is a builtin or a call on
    /// `this`; the interpreter resolves which.
    Call {
        /// Call id, unique within the file.
        id: CallId,
        /// Receiver, if syntactically present.
        recv: Option<Box<Expr>>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// `new Class(args)` or `new ExceptionType(msg, cause?)`.
    New {
        /// Call id, unique within the file (shares the call id space).
        id: CallId,
        /// Class or exception type name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `expr instanceof Type` (classes and exception types).
    InstanceOf {
        /// Tested expression.
        expr: Box<Expr>,
        /// Type name.
        ty: String,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Literal(_, span) | Expr::Ident(_, span) | Expr::This(span) => *span,
            Expr::Field { span, .. }
            | Expr::Call { span, .. }
            | Expr::New { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::InstanceOf { span, .. } => *span,
        }
    }
}

/// Visits every statement of a block in pre-order, including nested blocks.
///
/// The callback returns `true` to descend into the statement's sub-blocks.
pub fn walk_stmts<'a>(block: &'a Block, visit: &mut dyn FnMut(&'a Stmt) -> bool) {
    for stmt in &block.stmts {
        if !visit(stmt) {
            continue;
        }
        match stmt {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                walk_stmts(then_blk, visit);
                if let Some(else_blk) = else_blk {
                    walk_stmts(else_blk, visit);
                }
            }
            Stmt::While { body, .. } => walk_stmts(body, visit),
            Stmt::For { body, .. } => walk_stmts(body, visit),
            Stmt::Switch { cases, default, .. } => {
                for (_, case_blk) in cases {
                    walk_stmts(case_blk, visit);
                }
                if let Some(default) = default {
                    walk_stmts(default, visit);
                }
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                walk_stmts(body, visit);
                for catch in catches {
                    walk_stmts(&catch.body, visit);
                }
                if let Some(finally) = finally {
                    walk_stmts(finally, visit);
                }
            }
            _ => {}
        }
    }
}

/// Visits every expression in a block, in evaluation-ish pre-order.
pub fn walk_exprs<'a>(block: &'a Block, visit: &mut dyn FnMut(&'a Expr)) {
    walk_stmts(block, &mut |stmt| {
        match stmt {
            Stmt::Var { init, .. } => walk_expr(init, visit),
            Stmt::Assign { target, value, .. } => {
                if let LValue::Field { recv, .. } = target {
                    walk_expr(recv, visit);
                }
                walk_expr(value, visit);
            }
            Stmt::If { cond, .. } => walk_expr(cond, visit),
            Stmt::While { cond, .. } => walk_expr(cond, visit),
            Stmt::For {
                init, cond, update, ..
            } => {
                if let Some(init) = init {
                    walk_stmt_exprs(init, visit);
                }
                if let Some(cond) = cond {
                    walk_expr(cond, visit);
                }
                if let Some(update) = update {
                    walk_stmt_exprs(update, visit);
                }
            }
            Stmt::Switch { scrutinee, .. } => walk_expr(scrutinee, visit),
            Stmt::Throw { expr, .. } => walk_expr(expr, visit),
            Stmt::Return { expr: Some(expr), .. } => walk_expr(expr, visit),
            Stmt::Sleep { ms, .. } => walk_expr(ms, visit),
            Stmt::Log { expr, .. } => walk_expr(expr, visit),
            Stmt::Assert { cond, msg, .. } => {
                walk_expr(cond, visit);
                if let Some(msg) = msg {
                    walk_expr(msg, visit);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, visit),
            _ => {}
        }
        true
    });
}

fn walk_stmt_exprs<'a>(stmt: &'a Stmt, visit: &mut dyn FnMut(&'a Expr)) {
    match stmt {
        Stmt::Var { init, .. } => walk_expr(init, visit),
        Stmt::Assign { target, value, .. } => {
            if let LValue::Field { recv, .. } = target {
                walk_expr(recv, visit);
            }
            walk_expr(value, visit);
        }
        Stmt::Expr { expr, .. } => walk_expr(expr, visit),
        _ => {}
    }
}

/// Visits `expr` and all sub-expressions in pre-order.
pub fn walk_expr<'a>(expr: &'a Expr, visit: &mut dyn FnMut(&'a Expr)) {
    visit(expr);
    match expr {
        Expr::Field { recv, .. } => walk_expr(recv, visit),
        Expr::Call { recv, args, .. } => {
            if let Some(recv) = recv {
                walk_expr(recv, visit);
            }
            for arg in args {
                walk_expr(arg, visit);
            }
        }
        Expr::New { args, .. } => {
            for arg in args {
                walk_expr(arg, visit);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, visit);
            walk_expr(rhs, visit);
        }
        Expr::Unary { expr, .. } => walk_expr(expr, visit),
        Expr::InstanceOf { expr, .. } => walk_expr(expr, visit),
        Expr::Literal(..) | Expr::Ident(..) | Expr::This(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(CallId(3).to_string(), "c3");
        assert_eq!(LoopId(7).to_string(), "L7");
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Int(5).to_string(), "5");
        assert_eq!(Literal::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Literal::Bool(true).to_string(), "true");
        assert_eq!(Literal::Null.to_string(), "null");
    }

    #[test]
    fn binop_symbols_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
            BinOp::And,
            BinOp::Or,
        ] {
            assert!(!op.symbol().is_empty());
        }
    }
}
