//! Global string interning for the compile-once program index.
//!
//! Every identifier that can appear on the interpreter's hot path — class
//! names, method names, field names, local variables, exception types,
//! config keys — is interned to a dense [`Symbol`] (`u32`) when a
//! [`Project`](crate::project::Project) is compiled. The interpreter then
//! compares, hashes, and copies symbols instead of `String`s, and resolves
//! them back to text only at report/judge time.
//!
//! The [`Interner`] is frozen after compilation and shared immutably across
//! campaign workers. Names that only exist at run time (e.g. an unknown
//! method name passed to `Interp::invoke`) get ids *past* the frozen range
//! from a small per-run overlay; [`NameTable`] resolves both.

use crate::project::MethodId;
use std::collections::HashMap;
use std::fmt;

/// An interned string. Dense, starting at 0, in compilation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned `Class.method` pair — the `Copy` counterpart of
/// [`MethodId`]. Call stacks, frames, and trace events carry these; they
/// are resolved back to [`MethodId`] only when a report is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodSym {
    /// Receiving (or declaring) class name.
    pub class: Symbol,
    /// Method name.
    pub name: Symbol,
}

/// A string interner: bidirectional `String` ↔ [`Symbol`] map.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.map.get(s) {
            return Symbol(id);
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), id);
        Symbol(id)
    }

    /// Looks up `s` without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied().map(Symbol)
    }

    /// Resolves a symbol back to its string.
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Resolves symbols from a frozen [`Interner`] plus a per-run overlay of
/// extra names (ids `base.len()..`). Cheap to copy; borrowed by
/// interceptor contexts so fault handlers can render names on demand.
#[derive(Debug, Clone, Copy)]
pub struct NameTable<'a> {
    base: &'a Interner,
    extra: &'a [String],
}

impl<'a> NameTable<'a> {
    /// Creates a table over a frozen interner and a run-local overlay.
    pub fn new(base: &'a Interner, extra: &'a [String]) -> Self {
        NameTable { base, extra }
    }

    /// Resolves a symbol from the base interner or the overlay.
    ///
    /// Panics if `sym` is past both the frozen range and the overlay. The
    /// report/trace edges (interceptors, fault handlers) must use
    /// [`NameTable::try_resolve`] / [`NameTable::method_display`] instead:
    /// a symbol minted in *another* interpreter's runtime overlay is
    /// legitimately absent here, and a panic at those edges would be
    /// contained by the engine into a bogus `Crashed` record.
    pub fn resolve(&self, sym: Symbol) -> &'a str {
        self.try_resolve(sym)
            .unwrap_or_else(|| panic!("symbol {sym} out of range for this name table"))
    }

    /// Resolves a symbol, returning `None` for ids past both the frozen
    /// interner and this table's overlay (e.g. a name minted at run time
    /// by a different interpreter).
    pub fn try_resolve(&self, sym: Symbol) -> Option<&'a str> {
        let idx = sym.index();
        if idx < self.base.len() {
            Some(self.base.resolve(sym))
        } else {
            self.extra.get(idx - self.base.len()).map(String::as_str)
        }
    }

    /// Renders a symbol, degrading unresolvable ids to a `<s42?>` marker
    /// instead of panicking.
    fn render(&self, sym: Symbol) -> String {
        match self.try_resolve(sym) {
            Some(name) => name.to_string(),
            None => format!("<{sym}?>"),
        }
    }

    /// Resolves a method symbol to an owned [`MethodId`]. Total: ids
    /// outside this table render as `<s42?>` markers.
    pub fn method_id(&self, m: MethodSym) -> MethodId {
        MethodId::new(self.render(m.class), self.render(m.name))
    }

    /// Renders a method symbol as `Class.method` (the [`MethodId`] display
    /// format). Total: ids outside this table render as `<s42?>` markers.
    pub fn method_display(&self, m: MethodSym) -> String {
        format!("{}.{}", self.render(m.class), self.render(m.name))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let mut interner = Interner::new();
        let a = interner.intern("alpha");
        let b = interner.intern("beta");
        assert_ne!(a, b);
        assert_eq!(interner.intern("alpha"), a);
        assert_eq!(interner.resolve(a), "alpha");
        assert_eq!(interner.resolve(b), "beta");
        assert_eq!(interner.lookup("beta"), Some(b));
        assert_eq!(interner.lookup("gamma"), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn name_table_resolves_overlay_past_base() {
        let mut interner = Interner::new();
        let a = interner.intern("A");
        let extra = vec!["runtimeName".to_string()];
        let table = NameTable::new(&interner, &extra);
        assert_eq!(table.resolve(a), "A");
        assert_eq!(table.resolve(Symbol(1)), "runtimeName");
        let m = MethodSym {
            class: a,
            name: Symbol(1),
        };
        assert_eq!(table.method_display(m), "A.runtimeName");
        assert_eq!(table.method_id(m), MethodId::new("A", "runtimeName"));
    }

    /// Regression: a symbol minted in one interpreter's runtime overlay is
    /// absent from a table built over the frozen interner alone. The old
    /// `resolve` path indexed out of bounds and panicked — which the
    /// engine's panic containment then mislabelled as a run crash. Display
    /// edges must degrade to a marker instead.
    #[test]
    fn display_edges_degrade_for_foreign_runtime_symbols() {
        let mut interner = Interner::new();
        let a = interner.intern("A");
        // Frozen table: no overlay. Symbol 7 was minted elsewhere.
        let table = NameTable::new(&interner, &[]);
        let foreign = Symbol(7);
        assert_eq!(table.try_resolve(a), Some("A"));
        assert_eq!(table.try_resolve(foreign), None);
        let m = MethodSym {
            class: a,
            name: foreign,
        };
        assert_eq!(table.method_display(m), "A.<s7?>");
        assert_eq!(table.method_id(m), MethodId::new("A", "<s7?>"));
    }
}
