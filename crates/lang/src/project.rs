//! Compiled multi-file programs: source files, symbol tables, and the
//! exception hierarchy.

use crate::ast::{walk_exprs, CallId, ClassDecl, Expr, Item, Literal, MethodDecl};
use crate::error::Diagnostic;
use crate::parser::parse_file;
use crate::span::{LineMap, Span};
use std::collections::HashMap;
use std::fmt;

/// Index of a source file within a [`Project`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A static call site: file plus call id within the file.
///
/// Retry locations are anchored at call sites; the analysis crate produces
/// them and the injection/planner crates match on them at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSite {
    /// File containing the call expression.
    pub file: FileId,
    /// Call id within the file.
    pub call: CallId,
}

impl fmt::Display for CallSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.call)
    }
}

/// A parsed source file plus its raw text (kept for the LLM analyses).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// File path (used in diagnostics and reports).
    pub path: String,
    /// Raw source text, comments included.
    pub source: String,
    /// Parsed top-level items.
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Builds a line map for rendering spans in this file.
    pub fn line_map(&self) -> LineMap {
        LineMap::new(&self.source)
    }
}

/// A fully-qualified method name, `Class.method`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId {
    /// Declaring (or receiving) class name.
    pub class: String,
    /// Method name.
    pub name: String,
}

impl MethodId {
    /// Creates a method id.
    pub fn new(class: impl Into<String>, name: impl Into<String>) -> Self {
        MethodId {
            class: class.into(),
            name: name.into(),
        }
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.name)
    }
}

/// Information about one declared class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// File the class is declared in.
    pub file: FileId,
    /// Index of the class item within the file's `items`.
    pub item_idx: usize,
    /// Superclass name, if any.
    pub parent: Option<String>,
}

/// Information about one declared exception type.
#[derive(Debug, Clone)]
pub struct ExceptionInfo {
    /// Parent exception type (`None` only for the root `Throwable`).
    pub parent: Option<String>,
    /// Whether the type is a language builtin rather than user-declared.
    pub builtin: bool,
}

/// Exception types that exist in every project.
///
/// `Throwable` is the root; `AssertionError` sits directly under it so that
/// application-level `catch (Exception e)` handlers do not swallow test
/// assertions, mirroring Java's `Error` branch.
pub const BUILTIN_EXCEPTIONS: &[(&str, Option<&str>)] = &[
    ("Throwable", None),
    ("Exception", Some("Throwable")),
    ("AssertionError", Some("Throwable")),
    ("RuntimeException", Some("Exception")),
    ("NullPointerException", Some("RuntimeException")),
    ("IllegalArgumentException", Some("RuntimeException")),
    ("IllegalStateException", Some("RuntimeException")),
    ("ArithmeticException", Some("RuntimeException")),
];

/// Symbols declared across a project: classes, exceptions, and configs.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    classes: HashMap<String, ClassInfo>,
    exceptions: HashMap<String, ExceptionInfo>,
    configs: HashMap<String, Literal>,
}

impl SymbolTable {
    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassInfo> {
        self.classes.get(name)
    }

    /// Looks up an exception type by name.
    pub fn exception(&self, name: &str) -> Option<&ExceptionInfo> {
        self.exceptions.get(name)
    }

    /// Returns the default value for a configuration key.
    pub fn config_default(&self, key: &str) -> Option<&Literal> {
        self.configs.get(key)
    }

    /// Iterates over all configuration keys with their defaults.
    pub fn configs(&self) -> impl Iterator<Item = (&String, &Literal)> {
        self.configs.iter()
    }

    /// Iterates over all declared class names.
    pub fn class_names(&self) -> impl Iterator<Item = &String> {
        self.classes.keys()
    }

    /// Iterates over all exception type names (builtins included).
    pub fn exception_names(&self) -> impl Iterator<Item = &String> {
        self.exceptions.keys()
    }

    /// Whether exception type `sub` is `sup` or a descendant of `sup`.
    ///
    /// Unknown types are not subtypes of anything.
    pub fn is_exception_subtype(&self, sub: &str, sup: &str) -> bool {
        let mut current = sub;
        loop {
            if current == sup {
                return true;
            }
            match self.exceptions.get(current).and_then(|i| i.parent.as_deref()) {
                Some(parent) => current = parent,
                None => return false,
            }
        }
    }

    /// Whether class `sub` is `sup` or a descendant of `sup`.
    pub fn is_class_subtype(&self, sub: &str, sup: &str) -> bool {
        let mut current = sub;
        loop {
            if current == sup {
                return true;
            }
            match self.classes.get(current).and_then(|i| i.parent.as_deref()) {
                Some(parent) => current = parent,
                None => return false,
            }
        }
    }

    /// All declared exception types that are subtypes of `sup`.
    pub fn exception_subtypes(&self, sup: &str) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .exceptions
            .keys()
            .filter(|name| self.is_exception_subtype(name, sup))
            .map(String::as_str)
            .collect();
        out.sort_unstable();
        out
    }
}

/// A compiled multi-file Javelin program.
#[derive(Debug, Clone)]
pub struct Project {
    /// Project (application) name, e.g. `"hdfs"`.
    pub name: String,
    /// Source files in compilation order.
    pub files: Vec<SourceFile>,
    /// Project-wide symbol table.
    pub symbols: SymbolTable,
    /// The compile-once execution index (interned names, lowered bodies,
    /// resolution tables). Built after validation; shared across workers.
    pub index: std::sync::Arc<crate::index::ProgramIndex>,
}

impl Project {
    /// Parses and links a set of `(path, source)` files into a project.
    ///
    /// All files are parsed even if earlier ones fail, so the returned error
    /// list covers the whole input.
    pub fn compile(
        name: impl Into<String>,
        sources: Vec<(impl Into<String>, impl Into<String>)>,
    ) -> Result<Project, Vec<Diagnostic>> {
        let mut files = Vec::new();
        let mut errors = Vec::new();
        for (path, source) in sources {
            let path = path.into();
            let source = source.into();
            match parse_file(&source) {
                Ok(items) => files.push(SourceFile {
                    path,
                    source,
                    items,
                }),
                Err(err) => errors.push(err.with_path(&path)),
            }
        }
        if !errors.is_empty() {
            return Err(errors);
        }
        let symbols = build_symbols(&files, &mut errors);
        let mut project = Project {
            name: name.into(),
            files,
            symbols,
            index: std::sync::Arc::new(crate::index::ProgramIndex::default()),
        };
        project.validate(&mut errors);
        if errors.is_empty() {
            // The index builder relies on validation invariants (declared
            // catch/instanceof types, unique methods), so build it last.
            project.index = std::sync::Arc::new(crate::index::ProgramIndex::build(
                &project.files,
                &project.symbols,
            ));
            Ok(project)
        } else {
            Err(errors)
        }
    }

    /// Returns the class declaration for `name`, if declared.
    pub fn class_decl(&self, name: &str) -> Option<&ClassDecl> {
        let info = self.symbols.class(name)?;
        match &self.files[info.file.0 as usize].items[info.item_idx] {
            Item::Class(class) => Some(class),
            _ => None,
        }
    }

    /// Resolves a method on `class`, walking the superclass chain.
    ///
    /// Returns the declaring class name together with the declaration.
    pub fn resolve_method(&self, class: &str, method: &str) -> Option<(&str, &MethodDecl)> {
        let mut current = class;
        loop {
            let decl = self.class_decl(current)?;
            if let Some(m) = decl.methods.iter().find(|m| m.name == method) {
                return Some((&decl.name, m));
            }
            current = decl.parent.as_deref()?;
        }
    }

    /// Iterates over `(file, class, method)` for every method in the project.
    pub fn all_methods(&self) -> impl Iterator<Item = (FileId, &ClassDecl, &MethodDecl)> {
        self.files.iter().enumerate().flat_map(|(fidx, file)| {
            file.items.iter().filter_map(move |item| match item {
                Item::Class(class) => Some((FileId(fidx as u32), class)),
                _ => None,
            })
        })
        .flat_map(|(fid, class)| class.methods.iter().map(move |m| (fid, class, m)))
    }

    /// All unit tests in the project, as `(file, MethodId)`.
    pub fn tests(&self) -> Vec<(FileId, MethodId)> {
        self.all_methods()
            .filter(|(_, _, m)| m.is_test)
            .map(|(fid, class, m)| (fid, MethodId::new(&class.name, &m.name)))
            .collect()
    }

    /// Total source size in bytes (the paper tracks per-file sizes for the
    /// LLM cost model).
    pub fn source_bytes(&self) -> usize {
        self.files.iter().map(|f| f.source.len()).sum()
    }

    /// Renders a span in file `file` as `path:line:col`.
    pub fn locate(&self, file: FileId, span: Span) -> String {
        let f = &self.files[file.0 as usize];
        let pos = f.line_map().line_col(span.start);
        format!("{}:{pos}", f.path)
    }

    fn validate(&self, errors: &mut Vec<Diagnostic>) {
        for file in &self.files {
            for item in &file.items {
                let Item::Class(class) = item else { continue };
                if let Some(parent) = &class.parent {
                    if self.symbols.class(parent).is_none() {
                        errors.push(
                            Diagnostic::new(
                                class.span,
                                format!("unknown superclass `{parent}`"),
                            )
                            .with_path(&file.path),
                        );
                    }
                }
                let mut seen = HashMap::new();
                for method in &class.methods {
                    if let Some(_prev) = seen.insert(&method.name, method.span) {
                        errors.push(
                            Diagnostic::new(
                                method.span,
                                format!(
                                    "duplicate method `{}` in class `{}`",
                                    method.name, class.name
                                ),
                            )
                            .with_path(&file.path),
                        );
                    }
                    for thrown in &method.throws {
                        if self.symbols.exception(thrown).is_none() {
                            errors.push(
                                Diagnostic::new(
                                    method.span,
                                    format!("unknown exception `{thrown}` in throws clause"),
                                )
                                .with_path(&file.path),
                            );
                        }
                    }
                    self.validate_body(file, method, errors);
                }
            }
        }
    }

    fn validate_body(&self, file: &SourceFile, method: &MethodDecl, errors: &mut Vec<Diagnostic>) {
        crate::ast::walk_stmts(&method.body, &mut |stmt| {
            if let crate::ast::Stmt::Try { catches, .. } = stmt {
                for catch in catches {
                    if self.symbols.exception(&catch.exc_type).is_none() {
                        errors.push(
                            Diagnostic::new(
                                catch.span,
                                format!("unknown exception `{}` in catch", catch.exc_type),
                            )
                            .with_path(&file.path),
                        );
                    }
                }
            }
            true
        });
        walk_exprs(&method.body, &mut |expr| {
            if let Expr::InstanceOf { ty, span, .. } = expr {
                if self.symbols.exception(ty).is_none() && self.symbols.class(ty).is_none() {
                    errors.push(
                        Diagnostic::new(*span, format!("unknown type `{ty}` in instanceof"))
                            .with_path(&file.path),
                    );
                }
            }
        });
    }
}

fn build_symbols(files: &[SourceFile], errors: &mut Vec<Diagnostic>) -> SymbolTable {
    let mut symbols = SymbolTable::default();
    for (name, parent) in BUILTIN_EXCEPTIONS {
        symbols.exceptions.insert(
            name.to_string(),
            ExceptionInfo {
                parent: parent.map(str::to_string),
                builtin: true,
            },
        );
    }
    for (fidx, file) in files.iter().enumerate() {
        for (item_idx, item) in file.items.iter().enumerate() {
            match item {
                Item::ExceptionDecl(decl) => {
                    let info = ExceptionInfo {
                        parent: Some(
                            decl.parent.clone().unwrap_or_else(|| "Exception".to_string()),
                        ),
                        builtin: false,
                    };
                    if symbols.exceptions.insert(decl.name.clone(), info).is_some() {
                        errors.push(
                            Diagnostic::new(
                                decl.span,
                                format!("duplicate exception declaration `{}`", decl.name),
                            )
                            .with_path(&file.path),
                        );
                    }
                }
                Item::ConfigDecl(decl) => {
                    if symbols
                        .configs
                        .insert(decl.key.clone(), decl.default.clone())
                        .is_some()
                    {
                        errors.push(
                            Diagnostic::new(
                                decl.span,
                                format!("duplicate config declaration `{}`", decl.key),
                            )
                            .with_path(&file.path),
                        );
                    }
                }
                Item::Class(decl) => {
                    let info = ClassInfo {
                        file: FileId(fidx as u32),
                        item_idx,
                        parent: decl.parent.clone(),
                    };
                    if symbols.classes.insert(decl.name.clone(), info).is_some() {
                        errors.push(
                            Diagnostic::new(
                                decl.span,
                                format!("duplicate class declaration `{}`", decl.name),
                            )
                            .with_path(&file.path),
                        );
                    }
                }
            }
        }
    }
    // Check exception parents after all declarations are collected.
    for (fidx, file) in files.iter().enumerate() {
        let _ = fidx;
        for item in &file.items {
            if let Item::ExceptionDecl(decl) = item {
                let parent = decl.parent.as_deref().unwrap_or("Exception");
                if !symbols.exceptions.contains_key(parent) {
                    errors.push(
                        Diagnostic::new(
                            decl.span,
                            format!("unknown parent exception `{parent}`"),
                        )
                        .with_path(&file.path),
                    );
                }
            }
        }
    }
    symbols
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(sources: &[(&str, &str)]) -> Project {
        Project::compile("test", sources.to_vec()).expect("compile should succeed")
    }

    #[test]
    fn builtin_exception_hierarchy() {
        let p = compile(&[("a.jav", "class A { }")]);
        assert!(p.symbols.is_exception_subtype("NullPointerException", "Exception"));
        assert!(p.symbols.is_exception_subtype("AssertionError", "Throwable"));
        assert!(!p.symbols.is_exception_subtype("AssertionError", "Exception"));
        assert!(p.symbols.is_exception_subtype("Exception", "Exception"));
    }

    #[test]
    fn user_exceptions_default_to_exception_parent() {
        let p = compile(&[(
            "e.jav",
            "exception IOException;\nexception ConnectException extends IOException;\nclass A { }",
        )]);
        assert!(p.symbols.is_exception_subtype("ConnectException", "IOException"));
        assert!(p.symbols.is_exception_subtype("ConnectException", "Exception"));
        assert!(!p.symbols.is_exception_subtype("IOException", "ConnectException"));
    }

    #[test]
    fn method_resolution_walks_superclass_chain() {
        let p = compile(&[(
            "a.jav",
            "class Base { method greet() { return \"hi\"; } }\n\
             class Derived extends Base { method other() { return 1; } }",
        )]);
        let (owner, m) = p.resolve_method("Derived", "greet").expect("resolved");
        assert_eq!(owner, "Base");
        assert_eq!(m.name, "greet");
        assert!(p.resolve_method("Derived", "missing").is_none());
    }

    #[test]
    fn collects_tests_across_files() {
        let p = compile(&[
            ("a.jav", "class A { test t1() { assert(true); } method m() { } }"),
            ("b.jav", "class B { test t2() { assert(true); } }"),
        ]);
        let tests = p.tests();
        assert_eq!(tests.len(), 2);
        assert_eq!(tests[0].1, MethodId::new("A", "t1"));
        assert_eq!(tests[1].1, MethodId::new("B", "t2"));
    }

    #[test]
    fn config_defaults_are_recorded() {
        let p = compile(&[(
            "c.jav",
            "config \"dfs.retry.max\" default 5;\nconfig \"dfs.retry.enabled\" default true;\nclass A { }",
        )]);
        assert_eq!(p.symbols.config_default("dfs.retry.max"), Some(&Literal::Int(5)));
        assert_eq!(
            p.symbols.config_default("dfs.retry.enabled"),
            Some(&Literal::Bool(true))
        );
        assert_eq!(p.symbols.config_default("missing"), None);
    }

    #[test]
    fn rejects_duplicate_class() {
        let err = Project::compile("t", vec![("a.jav", "class A { }\nclass A { }")]).unwrap_err();
        assert!(err[0].message.contains("duplicate class"));
    }

    #[test]
    fn rejects_unknown_superclass_and_exception() {
        let err = Project::compile(
            "t",
            vec![(
                "a.jav",
                "class A extends Missing { method m() throws NoSuchExc { } }",
            )],
        )
        .unwrap_err();
        let messages: Vec<_> = err.iter().map(|d| d.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("unknown superclass")));
        assert!(messages.iter().any(|m| m.contains("unknown exception")));
    }

    #[test]
    fn rejects_unknown_catch_type() {
        let err = Project::compile(
            "t",
            vec![("a.jav", "class A { method m() { try { this.x(); } catch (Nope e) { } } }")],
        )
        .unwrap_err();
        assert!(err[0].message.contains("unknown exception `Nope`"));
    }

    #[test]
    fn rejects_unknown_instanceof_type() {
        let err = Project::compile(
            "t",
            vec![("a.jav", "class A { method m(e) { return e instanceof Ghost; } }")],
        )
        .unwrap_err();
        assert!(err[0].message.contains("unknown type `Ghost`"));
    }

    #[test]
    fn rejects_duplicate_method() {
        let err = Project::compile(
            "t",
            vec![("a.jav", "class A { method m() { } method m() { } }")],
        )
        .unwrap_err();
        assert!(err[0].message.contains("duplicate method"));
    }

    #[test]
    fn parse_errors_carry_paths() {
        let err = Project::compile("t", vec![("bad.jav", "class {")]).unwrap_err();
        assert_eq!(err[0].path, "bad.jav");
    }

    #[test]
    fn exception_subtypes_lists_descendants() {
        let p = compile(&[(
            "e.jav",
            "exception IOException;\nexception ConnectException extends IOException;\n\
             exception SocketException extends IOException;\nclass A { }",
        )]);
        let subs = p.symbols.exception_subtypes("IOException");
        assert_eq!(subs, vec!["ConnectException", "IOException", "SocketException"]);
    }

    #[test]
    fn locate_renders_path_line_col() {
        let p = compile(&[("dir/a.jav", "class A {\n  method m() { }\n}")]);
        let Item::Class(class) = &p.files[0].items[0] else {
            panic!("class expected")
        };
        let loc = p.locate(FileId(0), class.methods[0].span);
        assert_eq!(loc, "dir/a.jav:2:3");
    }
}
