//! Token kinds produced by the Javelin lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token: a kind plus the source span it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (including any literal payload).
    pub kind: TokenKind,
    /// Where in the source the token appears.
    pub span: Span,
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// A string literal (contents, unescaped), e.g. `"hello"`.
    Str(String),
    /// An identifier, e.g. `maxRetries`.
    Ident(String),

    // Keywords.
    Class,
    Extends,
    Exception,
    Config,
    Default,
    Field,
    Method,
    Test,
    Throws,
    Var,
    If,
    Else,
    While,
    For,
    Switch,
    Case,
    Try,
    Catch,
    Finally,
    Throw,
    Return,
    Break,
    Continue,
    New,
    This,
    Null,
    True,
    False,
    Instanceof,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    EqEq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident`, if `ident` is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "class" => TokenKind::Class,
            "extends" => TokenKind::Extends,
            "exception" => TokenKind::Exception,
            "config" => TokenKind::Config,
            "default" => TokenKind::Default,
            "field" => TokenKind::Field,
            "method" => TokenKind::Method,
            "test" => TokenKind::Test,
            "throws" => TokenKind::Throws,
            "var" => TokenKind::Var,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "for" => TokenKind::For,
            "switch" => TokenKind::Switch,
            "case" => TokenKind::Case,
            "try" => TokenKind::Try,
            "catch" => TokenKind::Catch,
            "finally" => TokenKind::Finally,
            "throw" => TokenKind::Throw,
            "return" => TokenKind::Return,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "new" => TokenKind::New,
            "this" => TokenKind::This,
            "null" => TokenKind::Null,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "instanceof" => TokenKind::Instanceof,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    /// The literal symbol or keyword text for fixed tokens.
    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Class => "class",
            TokenKind::Extends => "extends",
            TokenKind::Exception => "exception",
            TokenKind::Config => "config",
            TokenKind::Default => "default",
            TokenKind::Field => "field",
            TokenKind::Method => "method",
            TokenKind::Test => "test",
            TokenKind::Throws => "throws",
            TokenKind::Var => "var",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::For => "for",
            TokenKind::Switch => "switch",
            TokenKind::Case => "case",
            TokenKind::Try => "try",
            TokenKind::Catch => "catch",
            TokenKind::Finally => "finally",
            TokenKind::Throw => "throw",
            TokenKind::Return => "return",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::New => "new",
            TokenKind::This => "this",
            TokenKind::Null => "null",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Instanceof => "instanceof",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Assign => "=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Bang => "!",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::LtEq => "<=",
            TokenKind::Gt => ">",
            TokenKind::GtEq => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Int(_) | TokenKind::Str(_) | TokenKind::Ident(_) | TokenKind::Eof => {
                unreachable!("non-fixed token has no symbol")
            }
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("class"), Some(TokenKind::Class));
        assert_eq!(TokenKind::keyword("instanceof"), Some(TokenKind::Instanceof));
        assert_eq!(TokenKind::keyword("retry"), None);
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(TokenKind::Int(7).describe(), "integer `7`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::LBrace.describe(), "`{`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
