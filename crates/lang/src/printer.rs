//! Pretty-printer for Javelin ASTs.
//!
//! The printer produces canonical source text that re-parses to the same AST
//! (modulo spans); because call ids and loop ids are assigned in source
//! order, they are also preserved. `print → parse → print` is a fixed point,
//! which the property tests rely on.

use crate::ast::*;

/// Pretty-prints a whole file.
pub fn print_items(items: &[Item]) -> String {
    let mut p = Printer::new();
    for item in items {
        p.item(item);
    }
    p.out
}

/// Pretty-prints a single class.
pub fn print_class(class: &ClassDecl) -> String {
    let mut p = Printer::new();
    p.class(class);
    p.out
}

/// Pretty-prints an expression (mainly for diagnostics and reports).
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr);
    p.out
}

/// Pretty-prints a single statement at indent zero (trailing newline
/// included, one line per statement). Patch synthesis renders repair
/// snippets through this so spliced text is canonical printer output.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, header: &str) {
        self.line(&format!("{header} {{"));
        self.indent += 1;
    }

    fn close(&mut self, suffix: &str) {
        self.indent -= 1;
        self.line(&format!("}}{suffix}"));
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::ExceptionDecl(d) => {
                let parent = d
                    .parent
                    .as_ref()
                    .map(|p| format!(" extends {p}"))
                    .unwrap_or_default();
                self.line(&format!("exception {}{parent};", d.name));
            }
            Item::ConfigDecl(d) => {
                self.line(&format!("config {:?} default {};", d.key, d.default));
            }
            Item::Class(c) => self.class(c),
        }
    }

    fn class(&mut self, class: &ClassDecl) {
        let parent = class
            .parent
            .as_ref()
            .map(|p| format!(" extends {p}"))
            .unwrap_or_default();
        self.open(&format!("class {}{parent}", class.name));
        for field in &class.fields {
            match &field.init {
                Some(init) => {
                    let mut p = Printer::new();
                    p.expr(init);
                    self.line(&format!("field {} = {};", field.name, p.out));
                }
                None => self.line(&format!("field {};", field.name)),
            }
        }
        for method in &class.methods {
            self.method(method);
        }
        self.close("");
    }

    fn method(&mut self, method: &MethodDecl) {
        let kw = if method.is_test { "test" } else { "method" };
        let params = method.params.join(", ");
        let throws = if method.throws.is_empty() {
            String::new()
        } else {
            format!(" throws {}", method.throws.join(", "))
        };
        self.open(&format!("{kw} {}({params}){throws}", method.name));
        for stmt in &method.body.stmts {
            self.stmt(stmt);
        }
        self.close("");
    }

    fn block_inline(&mut self, block: &Block, header: &str, suffix: &str) {
        self.open(header);
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
        self.close(suffix);
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Var { name, init, .. } => {
                let mut p = Printer::new();
                p.expr(init);
                self.line(&format!("var {name} = {};", p.out));
            }
            Stmt::Assign { target, value, .. } => {
                let mut p = Printer::new();
                p.lvalue(target);
                p.out.push_str(" = ");
                p.expr(value);
                let text = format!("{};", p.out);
                self.line(&text);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.block_inline(then_blk, &format!("if ({})", p.out), "");
                if let Some(else_blk) = else_blk {
                    // Undo the newline so `else` attaches visually; simplest
                    // canonical form keeps `else` on its own header line.
                    self.block_inline(else_blk, "else", "");
                }
            }
            Stmt::While { cond, body, .. } => {
                let mut p = Printer::new();
                p.expr(cond);
                self.block_inline(body, &format!("while ({})", p.out), "");
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                let mut header = String::from("for (");
                match init {
                    Some(stmt) => {
                        let mut p = Printer::new();
                        p.header_stmt(stmt);
                        header.push_str(&p.out);
                        header.push(';');
                    }
                    None => header.push(';'),
                }
                header.push(' ');
                if let Some(cond) = cond {
                    let mut p = Printer::new();
                    p.expr(cond);
                    header.push_str(&p.out);
                }
                header.push_str("; ");
                if let Some(update) = update {
                    let mut p = Printer::new();
                    p.header_stmt(update);
                    header.push_str(&p.out);
                }
                header.push(')');
                self.block_inline(body, &header, "");
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                let mut p = Printer::new();
                p.expr(scrutinee);
                self.open(&format!("switch ({})", p.out));
                for (lit, body) in cases {
                    self.block_inline(body, &format!("case {lit}:"), "");
                }
                if let Some(default) = default {
                    self.block_inline(default, "default:", "");
                }
                self.close("");
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                self.block_inline(body, "try", "");
                for catch in catches {
                    self.block_inline(
                        &catch.body,
                        &format!("catch ({} {})", catch.exc_type, catch.binding),
                        "",
                    );
                }
                if let Some(finally) = finally {
                    self.block_inline(finally, "finally", "");
                }
            }
            Stmt::Throw { expr, .. } => {
                let mut p = Printer::new();
                p.expr(expr);
                self.line(&format!("throw {};", p.out));
            }
            Stmt::Return { expr, .. } => match expr {
                Some(expr) => {
                    let mut p = Printer::new();
                    p.expr(expr);
                    self.line(&format!("return {};", p.out));
                }
                None => self.line("return;"),
            },
            Stmt::Break { .. } => self.line("break;"),
            Stmt::Continue { .. } => self.line("continue;"),
            Stmt::Sleep { ms, .. } => {
                let mut p = Printer::new();
                p.expr(ms);
                self.line(&format!("sleep({});", p.out));
            }
            Stmt::Log { expr, .. } => {
                let mut p = Printer::new();
                p.expr(expr);
                self.line(&format!("log({});", p.out));
            }
            Stmt::Assert { cond, msg, .. } => {
                let mut p = Printer::new();
                p.expr(cond);
                match msg {
                    Some(msg) => {
                        let mut m = Printer::new();
                        m.expr(msg);
                        self.line(&format!("assert({}, {});", p.out, m.out));
                    }
                    None => self.line(&format!("assert({});", p.out)),
                }
            }
            Stmt::Expr { expr, .. } => {
                let mut p = Printer::new();
                p.expr(expr);
                self.line(&format!("{};", p.out));
            }
        }
    }

    /// Prints a for-header statement (no trailing semicolon).
    fn header_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Var { name, init, .. } => {
                self.out.push_str("var ");
                self.out.push_str(name);
                self.out.push_str(" = ");
                self.expr(init);
            }
            Stmt::Assign { target, value, .. } => {
                self.lvalue(target);
                self.out.push_str(" = ");
                self.expr(value);
            }
            other => panic!("unsupported for-header statement: {other:?}"),
        }
    }

    fn lvalue(&mut self, lvalue: &LValue) {
        match lvalue {
            LValue::Var(name, _) => self.out.push_str(name),
            LValue::Field { recv, name, .. } => {
                self.expr_prec(recv, 100);
                self.out.push('.');
                self.out.push_str(name);
            }
        }
    }

    fn expr(&mut self, expr: &Expr) {
        self.expr_prec(expr, 0);
    }

    /// Prints `expr`, parenthesizing when its precedence is below `min_prec`.
    fn expr_prec(&mut self, expr: &Expr, min_prec: u8) {
        let prec = expr_precedence(expr);
        let need_parens = prec < min_prec;
        if need_parens {
            self.out.push('(');
        }
        match expr {
            Expr::Literal(lit, _) => self.out.push_str(&lit.to_string()),
            Expr::Ident(name, _) => self.out.push_str(name),
            Expr::This(_) => self.out.push_str("this"),
            Expr::Field { recv, name, .. } => {
                self.expr_prec(recv, 100);
                self.out.push('.');
                self.out.push_str(name);
            }
            Expr::Call {
                recv, method, args, ..
            } => {
                if let Some(recv) = recv {
                    self.expr_prec(recv, 100);
                    self.out.push('.');
                }
                self.out.push_str(method);
                self.args(args);
            }
            Expr::New { class, args, .. } => {
                self.out.push_str("new ");
                self.out.push_str(class);
                self.args(args);
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // Left-associative: the right operand needs strictly higher
                // precedence to avoid reassociation on re-parse.
                self.expr_prec(lhs, prec);
                self.out.push(' ');
                self.out.push_str(op.symbol());
                self.out.push(' ');
                self.expr_prec(rhs, prec + 1);
            }
            Expr::Unary { op, expr, .. } => {
                self.out.push_str(op.symbol());
                self.expr_prec(expr, 90);
            }
            Expr::InstanceOf { expr, ty, .. } => {
                self.expr_prec(expr, prec + 1);
                self.out.push_str(" instanceof ");
                self.out.push_str(ty);
            }
        }
        if need_parens {
            self.out.push(')');
        }
    }

    fn args(&mut self, args: &[Expr]) {
        self.out.push('(');
        for (i, arg) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.expr_prec(arg, 0);
        }
        self.out.push(')');
    }
}

fn expr_precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 10,
            BinOp::And => 20,
            BinOp::Eq | BinOp::NotEq => 30,
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 40,
            BinOp::Add | BinOp::Sub => 50,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 60,
        },
        Expr::InstanceOf { .. } => 40,
        Expr::Unary { .. } => 90,
        _ => 100,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn roundtrip(src: &str) {
        let items = parse_file(src).expect("initial parse");
        let printed = print_items(&items);
        let reparsed = parse_file(&printed)
            .unwrap_or_else(|e| panic!("printed source failed to parse: {e}\n{printed}"));
        let reprinted = print_items(&reparsed);
        assert_eq!(printed, reprinted, "printer not a fixed point");
    }

    #[test]
    fn roundtrips_retry_loop() {
        roundtrip(
            "exception ConnectException extends IOException;\n\
             class WebHdfs {\n\
               field maxAttempts = 5;\n\
               method run() throws IOException {\n\
                 for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
                   try { var conn = this.connect(\"url\"); return this.getResponse(conn); }\n\
                   catch (AccessControlException e) { break; }\n\
                   catch (ConnectException e) { }\n\
                   sleep(1000);\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
    }

    #[test]
    fn roundtrips_switch_and_queue() {
        roundtrip(
            "class TaskProcessor {\n\
               field taskQueue;\n\
               method run() {\n\
                 while (!this.taskQueue.isEmpty()) {\n\
                   var task = this.taskQueue.take();\n\
                   try { task.execute(); }\n\
                   catch (Exception e) { if (task.isShutdown == false) { this.taskQueue.put(task); } }\n\
                 }\n\
               }\n\
               method step(state) {\n\
                 switch (state) { case \"A\": { return 1; } default: { return 0; } }\n\
               }\n\
             }",
        );
    }

    #[test]
    fn parenthesization_preserves_structure() {
        let src = "class C { method m(a, b) { return (a + b) * 2 - -a / (b % 3); } }";
        let items = parse_file(src).unwrap();
        let printed = print_items(&items);
        let reparsed = parse_file(&printed).unwrap();
        assert_eq!(print_items(&reparsed), printed);
        assert!(printed.contains("(a + b) * 2"));
    }

    #[test]
    fn unary_on_call_prints() {
        roundtrip("class C { method m(q) { if (!q.isEmpty() && !(1 == 2)) { return 1; } return 0; } }");
    }

    #[test]
    fn instanceof_in_condition_roundtrips() {
        roundtrip(
            "class C { method m(e) { if (e instanceof A || e.getCause() instanceof B) { return true; } return false; } }",
        );
    }

    #[test]
    fn print_stmt_renders_single_statements() {
        let items = parse_file(
            "class C { method m(e) { if (x >= 3) { throw e; } sleep(50 + 50 * r); } }",
        )
        .unwrap();
        let Item::Class(class) = &items[0] else {
            panic!("expected class");
        };
        let stmts = &class.methods[0].body.stmts;
        assert_eq!(print_stmt(&stmts[0]), "if (x >= 3) {\n    throw e;\n}\n");
        assert_eq!(print_stmt(&stmts[1]), "sleep(50 + 50 * r);\n");
    }

    #[test]
    fn print_expr_is_compact() {
        let items =
            parse_file("class C { method m(a) { return a.f.g(1, \"x\").h + 2; } }").unwrap();
        let Item::Class(class) = &items[0] else {
            panic!("expected class");
        };
        let Stmt::Return { expr: Some(e), .. } = &class.methods[0].body.stmts[0] else {
            panic!("expected return");
        };
        assert_eq!(print_expr(e), "a.f.g(1, \"x\").h + 2");
    }
}
