#![forbid(unsafe_code)]
//! Javelin: a small Java-like modeling language.
//!
//! Javelin is the source substrate of the WASABI reproduction. It models the
//! subset of Java that retry logic and retry-bug detection care about:
//! classes, methods with declared `throws` clauses, try/catch/finally with an
//! exception hierarchy, loops, switches (for state machines), queues (for
//! asynchronous task re-enqueueing), `sleep`, configuration keys, and unit
//! tests with assertions.
//!
//! The crate provides:
//!
//! - [`lexer::Lexer`] and [`parser::parse_file`] — source text to AST;
//! - [`ast`] — the abstract syntax tree, with stable [`ast::CallId`]s on every
//!   call site and [`ast::LoopId`]s on every loop, used by the analysis and
//!   injection crates to name retry locations;
//! - [`printer`] — a pretty-printer whose output re-parses to the same AST;
//! - [`project::Project`] — a compiled multi-file program with a
//!   [`project::SymbolTable`] (classes, exception hierarchy, config defaults).
//!
//! # Examples
//!
//! ```
//! use wasabi_lang::project::Project;
//!
//! let src = r#"
//! exception ConnectException extends Exception;
//! class Client {
//!     method connect() throws ConnectException {
//!         return "ok";
//!     }
//!     method run() {
//!         for (var retry = 0; retry < 3; retry = retry + 1) {
//!             try {
//!                 return this.connect();
//!             } catch (ConnectException e) {
//!                 sleep(100);
//!             }
//!         }
//!         return null;
//!     }
//! }
//! "#;
//! let project = Project::compile("demo", vec![("client.jav", src)]).unwrap();
//! assert_eq!(project.files.len(), 1);
//! assert!(project.symbols.class("Client").is_some());
//! ```

pub mod ast;
pub mod error;
pub mod index;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod project;
pub mod span;
pub mod token;

pub use ast::{CallId, LoopId};
pub use error::Diagnostic;
pub use index::ProgramIndex;
pub use intern::{Interner, MethodSym, NameTable, Symbol};
pub use project::Project;
pub use span::Span;
