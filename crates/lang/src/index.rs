//! The compile-once program index: lowered bodies, resolution tables, and
//! layouts the interpreter executes against.
//!
//! A [`ProgramIndex`] is built exactly once, at the end of
//! [`Project::compile`](crate::project::Project::compile), and shared
//! immutably (`Arc`) across every campaign worker. It precomputes all the
//! work the tree-walking interpreter used to redo on every run:
//!
//! - **Interned names** ([`Symbol`]) for classes, methods, fields, locals,
//!   exception types, and config keys — the hot path compares `u32`s.
//! - **Method-resolution tables**: each class carries a flattened dispatch
//!   table with the superclass walk done at compile time.
//! - **Field layouts** ([`FieldLayout`]): object fields live in a `Vec`
//!   indexed by slot instead of a `HashMap<String, Value>`.
//! - **Local slots**: every method body is lowered to [`LStmt`]/[`LExpr`]
//!   with locals resolved to dense slots, so the environment is a
//!   `Vec<Option<Value>>`.
//! - **Exception-ancestry tables**: `is_exception_subtype` becomes a
//!   boolean matrix lookup instead of a parent-chain string walk.
//! - **Config-key ids**: declared keys get dense ids for a `Vec`-backed
//!   runtime store.
//!
//! Lowering is purely structural — statement-for-statement, with call
//! sites ([`CallSite`]) baked in — so the interpreter's observable output
//! (fault messages, traces, fuel accounting) is byte-identical to the
//! pre-index tree walker.

use crate::ast::{Block, Expr, Item, LValue, Literal, MethodDecl, Stmt, UnOp};
use crate::intern::{Interner, Symbol};
use crate::project::{CallSite, FileId, SourceFile, SymbolTable};
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::ast::BinOp;

/// Dense id of a declared class, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Dense id of a declared exception type (builtins included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExcId(pub u32);

/// A local-variable slot within one method's environment.
pub type Slot = u32;

/// Per-class field layout: field name → dense slot, plus the class names
/// the runtime needs for rendering and fault messages. Shared by every
/// instance of the class via `Arc`.
#[derive(Debug)]
pub struct FieldLayout {
    /// The class this layout belongs to.
    pub class_id: ClassId,
    /// Interned class name.
    pub class_sym: Symbol,
    /// Class name as text (for `render` and fault messages).
    pub class_name: String,
    /// `(field name, slot)`, sorted by symbol for binary search.
    slots: Vec<(Symbol, u32)>,
    len: usize,
}

impl FieldLayout {
    /// Slot of `name`, if the class (or an ancestor) declares that field.
    pub fn slot(&self, name: Symbol) -> Option<usize> {
        self.slots
            .binary_search_by_key(&name, |&(sym, _)| sym)
            .ok()
            .map(|i| self.slots[i].1 as usize)
    }

    /// `(field name, slot)` pairs, sorted by interned name.
    pub fn slots(&self) -> impl Iterator<Item = (Symbol, u32)> + '_ {
        self.slots.iter().copied()
    }

    /// Number of field slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the class has no fields.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A lowered field initializer: evaluated in superclass-chain order during
/// instantiation, writing into `slot`.
#[derive(Debug)]
pub struct FieldInit {
    /// Destination field slot.
    pub slot: u32,
    /// Initializer expression (call sites carry the declaring class's file).
    pub expr: LExpr,
}

/// One compiled (lowered) method body.
#[derive(Debug)]
pub struct CompiledMethod {
    /// Interned method name.
    pub name: Symbol,
    /// Parameter count; parameters occupy slots `0..params`.
    pub params: u32,
    /// Total local slots (parameters included).
    pub n_slots: u32,
    /// Lowered body.
    pub body: Vec<LStmt>,
    /// Whether this is a `test` method.
    pub is_test: bool,
    /// Declaring class (the class whose `methods` list this body came
    /// from; subclasses inherit it through their dispatch tables).
    pub owner: ClassId,
    /// File the declaring class lives in.
    pub file: FileId,
    /// Declared `throws` clause, lowered to dense ids, sorted and deduped.
    pub throws: Vec<ExcId>,
}

/// A compiled class: layout, initializers, and the flattened dispatch
/// table (inheritance walk done once, at build time).
#[derive(Debug)]
pub struct ClassDef {
    /// Interned class name.
    pub name: Symbol,
    /// Class name as text.
    pub name_str: String,
    /// File the class is declared in.
    pub file: FileId,
    /// Superclass, if any.
    pub parent: Option<ClassId>,
    /// Field layout shared by all instances.
    pub layout: Arc<FieldLayout>,
    /// Field initializers across the chain, base-class fields first.
    pub inits: Vec<FieldInit>,
    /// Whether an `init` constructor resolves on this class.
    pub has_init: bool,
    /// `(method name, index into ProgramIndex::methods)`, sorted by
    /// symbol; includes inherited methods.
    dispatch: Vec<(Symbol, u32)>,
}

/// A declared exception type.
#[derive(Debug)]
pub struct ExcDef {
    /// Interned type name.
    pub name: Symbol,
    /// Type name as text.
    pub name_str: String,
    /// Parent type (`None` only for the root `Throwable`).
    pub parent: Option<ExcId>,
}

/// A declared configuration key with its dense id (= index in
/// [`ProgramIndex::configs`]) and default literal.
#[derive(Debug, Clone)]
pub struct ConfigDef {
    /// The key text.
    pub key: String,
    /// Interned key.
    pub sym: Symbol,
    /// Declared default.
    pub default: Literal,
}

/// Symbols and exception ids the interpreter needs unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct WellKnown {
    /// `"<entry>"` — the synthetic entry frame.
    pub entry: Symbol,
    /// `"init"` — the constructor name.
    pub init: Symbol,
    /// `NullPointerException`.
    pub npe: ExcId,
    /// `ArithmeticException`.
    pub arithmetic: ExcId,
    /// `AssertionError`.
    pub assertion: ExcId,
}

impl Default for WellKnown {
    fn default() -> Self {
        WellKnown {
            entry: Symbol(0),
            init: Symbol(0),
            npe: ExcId(0),
            arithmetic: ExcId(0),
            assertion: ExcId(0),
        }
    }
}

/// The compile-once execution layer. Immutable after build; `Send + Sync`
/// so one `Arc<ProgramIndex>` serves every worker thread.
#[derive(Debug, Default)]
pub struct ProgramIndex {
    /// The frozen global interner.
    pub interner: Interner,
    /// Classes in declaration order (`ClassId` indexes this).
    pub classes: Vec<ClassDef>,
    /// All compiled method bodies (dispatch tables index this).
    pub methods: Vec<CompiledMethod>,
    /// Exception types, sorted by name (`ExcId` indexes this).
    pub exceptions: Vec<ExcDef>,
    /// Declared config keys, sorted by key (dense config ids index this).
    pub configs: Vec<ConfigDef>,
    class_by_sym: Vec<(Symbol, ClassId)>,
    exc_by_sym: Vec<(Symbol, ExcId)>,
    config_by_sym: Vec<(Symbol, u32)>,
    /// `exc_matrix[sub * n + sup]` ⇔ `sub` is a subtype of `sup`.
    exc_matrix: Vec<bool>,
    class_matrix: Vec<bool>,
    /// Well-known symbols and exception ids.
    pub wk: WellKnown,
}

impl ProgramIndex {
    /// The class named by `sym`, if declared.
    pub fn class_by_sym(&self, sym: Symbol) -> Option<ClassId> {
        lookup_sorted(&self.class_by_sym, sym)
    }

    /// The class named `name`, if declared.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.interner.lookup(name).and_then(|s| self.class_by_sym(s))
    }

    /// The exception type named by `sym`, if declared.
    pub fn exc_by_sym(&self, sym: Symbol) -> Option<ExcId> {
        lookup_sorted(&self.exc_by_sym, sym)
    }

    /// The exception type named `name`, if declared.
    pub fn exc_by_name(&self, name: &str) -> Option<ExcId> {
        self.interner.lookup(name).and_then(|s| self.exc_by_sym(s))
    }

    /// The dense id of config key `name`, if declared.
    pub fn config_by_name(&self, name: &str) -> Option<u32> {
        self.interner
            .lookup(name)
            .and_then(|s| lookup_sorted(&self.config_by_sym, s))
    }

    /// Whether exception `sub` is `sup` or a descendant — a table lookup.
    pub fn is_exc_subtype(&self, sub: ExcId, sup: ExcId) -> bool {
        self.exc_matrix[sub.0 as usize * self.exceptions.len() + sup.0 as usize]
    }

    /// Whether class `sub` is `sup` or a descendant — a table lookup.
    pub fn is_class_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        self.class_matrix[sub.0 as usize * self.classes.len() + sup.0 as usize]
    }

    /// Resolves `method` on `class` via the flattened dispatch table.
    pub fn resolve_dispatch(&self, class: ClassId, method: Symbol) -> Option<u32> {
        lookup_sorted(&self.classes[class.0 as usize].dispatch, method)
    }

    /// The full flattened dispatch table of `class`:
    /// `(method name, index into methods)`, sorted by symbol, inherited
    /// entries included. This is the same table the interpreter consults,
    /// exposed so static analyses resolve calls identically.
    pub fn dispatch_entries(&self, class: ClassId) -> &[(Symbol, u32)] {
        &self.classes[class.0 as usize].dispatch
    }

    /// All classes that are `class` or a subclass of it, ascending by id.
    /// Static this-call resolution uses this to over-approximate dynamic
    /// dispatch: at run time `this` may be any subtype of the declaring
    /// class.
    pub fn subtypes_of_class(&self, class: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32)
            .map(ClassId)
            .filter(move |&sub| self.is_class_subtype(sub, class))
    }

    /// Renders a method index as `DeclaringClass.method`.
    pub fn method_display(&self, midx: u32) -> String {
        let m = &self.methods[midx as usize];
        format!(
            "{}.{}",
            self.classes[m.owner.0 as usize].name_str,
            self.interner.resolve(m.name)
        )
    }

    /// Builds the index for a validated project. Must only be called after
    /// validation succeeded: lowering relies on its invariants (catch and
    /// instanceof types declared, no duplicate methods, known parents).
    pub fn build(files: &[SourceFile], symbols: &SymbolTable) -> ProgramIndex {
        Builder::run(files, symbols)
    }
}

fn lookup_sorted<T: Copy>(table: &[(Symbol, T)], sym: Symbol) -> Option<T> {
    table
        .binary_search_by_key(&sym, |&(s, _)| s)
        .ok()
        .map(|i| table[i].1)
}

// ---- Lowered IR ------------------------------------------------------------

/// A lowered statement. Mirrors [`Stmt`] one-for-one so the interpreter's
/// control flow (and fuel accounting) is unchanged.
#[derive(Debug)]
pub enum LStmt {
    /// `var name = init;` — always writes the local slot.
    Var {
        /// Destination slot.
        slot: Slot,
        /// Initializer.
        init: LExpr,
    },
    /// `name = value;` — dynamic local-or-field resolution (a slot that is
    /// set wins; else an existing `this` field; else first write creates
    /// the local).
    AssignLocal {
        /// The name's local slot.
        slot: Slot,
        /// The name, for the `this`-field fallback and messages.
        name: Symbol,
        /// Right-hand side.
        value: LExpr,
    },
    /// `recv.name = value;`
    AssignField {
        /// Receiver expression.
        recv: LExpr,
        /// Field name.
        name: Symbol,
        /// Right-hand side.
        value: LExpr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition (must evaluate to a bool).
        cond: LExpr,
        /// Then branch.
        then_blk: Vec<LStmt>,
        /// Else branch, if present.
        else_blk: Option<Vec<LStmt>>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: LExpr,
        /// Loop body.
        body: Vec<LStmt>,
    },
    /// `for (init; cond; update) { .. }`
    For {
        /// Init statement, if present.
        init: Option<Box<LStmt>>,
        /// Condition, if present.
        cond: Option<LExpr>,
        /// Update statement, if present.
        update: Option<Box<LStmt>>,
        /// Loop body.
        body: Vec<LStmt>,
    },
    /// `switch (scrutinee) { case lit: { .. } default: { .. } }`
    Switch {
        /// Scrutinee expression.
        scrutinee: LExpr,
        /// `(literal, body)` arms, in source order; no fallthrough.
        cases: Vec<(Literal, Vec<LStmt>)>,
        /// Default arm, if present.
        default: Option<Vec<LStmt>>,
    },
    /// `try { .. } catch (E e) { .. } finally { .. }`
    Try {
        /// Protected body.
        body: Vec<LStmt>,
        /// Catch clauses in source order.
        catches: Vec<LCatch>,
        /// Finally block, if present.
        finally: Option<Vec<LStmt>>,
    },
    /// `throw expr;`
    Throw {
        /// The thrown expression (must evaluate to an exception).
        expr: LExpr,
    },
    /// `return;` / `return expr;`
    Return {
        /// Returned expression, if present.
        expr: Option<LExpr>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `sleep(ms);`
    Sleep {
        /// Milliseconds (must evaluate to a non-negative int).
        ms: LExpr,
    },
    /// `log(expr);`
    Log {
        /// Logged expression.
        expr: LExpr,
    },
    /// `assert(cond);` / `assert(cond, msg);`
    Assert {
        /// Asserted condition.
        cond: LExpr,
        /// Failure message, if present.
        msg: Option<LExpr>,
    },
    /// An expression statement.
    Expr {
        /// The expression.
        expr: LExpr,
    },
}

/// A lowered catch clause. The exception type is always declared (the
/// validator guarantees it), so matching is a pure table lookup.
#[derive(Debug)]
pub struct LCatch {
    /// Caught exception type.
    pub exc: ExcId,
    /// Slot the binding is written to.
    pub binding: Slot,
    /// Handler body.
    pub body: Vec<LStmt>,
}

/// A lowered expression.
#[derive(Debug)]
pub enum LExpr {
    /// A literal.
    Literal(Literal),
    /// A name with a local slot: reads the slot if set, else falls back to
    /// a `this` field, else faults (`unknown variable`).
    Local {
        /// The name's slot.
        slot: Slot,
        /// The name, for the field fallback and messages.
        name: Symbol,
    },
    /// A name with no local slot in this method: a `this` field or a
    /// fault.
    ImplicitField {
        /// The name.
        name: Symbol,
    },
    /// `this`
    This,
    /// `recv.name`
    Field {
        /// Receiver expression.
        recv: Box<LExpr>,
        /// Field name.
        name: Symbol,
    },
    /// A receiver-less call to a reserved global builtin
    /// (`queue`/`getConfig`/...). Classified at compile time.
    GlobalCall {
        /// Builtin name.
        name: Symbol,
        /// Arguments.
        args: Vec<LExpr>,
    },
    /// A (possibly implicit-`this`) method call: the interception point.
    Call {
        /// The static call site (file baked in at lowering).
        site: CallSite,
        /// Receiver, or `None` for implicit `this`.
        recv: Option<Box<LExpr>>,
        /// Method name.
        method: Symbol,
        /// Arguments.
        args: Vec<LExpr>,
    },
    /// `new E(..)` where `E` is a declared exception type.
    NewExc {
        /// The exception type.
        exc: ExcId,
        /// Constructor arguments.
        args: Vec<LExpr>,
    },
    /// `new C(..)` where `C` is a declared class.
    NewObj {
        /// The class.
        class: ClassId,
        /// Constructor arguments.
        args: Vec<LExpr>,
    },
    /// `new X(..)` where `X` is neither: arguments still evaluate, then
    /// the run faults (`cannot instantiate unknown class`).
    NewUnknown {
        /// The undeclared name.
        class: String,
        /// Arguments (evaluated before the fault, as the tree walker did).
        args: Vec<LExpr>,
    },
    /// A binary operation (`&&`/`||` short-circuit at eval).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<LExpr>,
        /// Right operand.
        rhs: Box<LExpr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<LExpr>,
    },
    /// `expr instanceof Ty` — `Ty` resolved at compile time against both
    /// namespaces (a name may be a class *and* an exception type).
    InstanceOf {
        /// Tested expression.
        expr: Box<LExpr>,
        /// The type name (for the undeclared-exception string fallback).
        ty: Symbol,
        /// `Ty` as an exception type, if declared as one.
        exc: Option<ExcId>,
        /// `Ty` as a class, if declared as one.
        class: Option<ClassId>,
    },
}

/// Names reserved for global builtins. A receiver-less call to one of
/// these is always the builtin, never a method on `this`.
pub fn is_global_builtin(name: &str) -> bool {
    matches!(
        name,
        "queue" | "list" | "map" | "now" | "getConfig" | "setConfig" | "str" | "min" | "max"
            | "abs" | "pow"
    )
}

// ---- Builder ---------------------------------------------------------------

struct Builder<'a> {
    symbols: &'a SymbolTable,
    interner: Interner,
    exc_ids: HashMap<String, ExcId>,
    class_ids: HashMap<String, ClassId>,
}

impl<'a> Builder<'a> {
    fn run(files: &[SourceFile], symbols: &'a SymbolTable) -> ProgramIndex {
        let mut b = Builder {
            symbols,
            interner: Interner::new(),
            exc_ids: HashMap::new(),
            class_ids: HashMap::new(),
        };
        let entry = b.interner.intern("<entry>");
        let init = b.interner.intern("init");

        // Exceptions, sorted by name for deterministic dense ids.
        let mut exc_names: Vec<&String> = symbols.exception_names().collect();
        exc_names.sort_unstable();
        for (i, name) in exc_names.iter().enumerate() {
            b.exc_ids.insert((*name).clone(), ExcId(i as u32));
        }
        let exceptions: Vec<ExcDef> = exc_names
            .iter()
            .map(|name| ExcDef {
                name: b.interner.intern(name),
                name_str: (*name).clone(),
                parent: b
                    .symbols
                    .exception(name)
                    .and_then(|info| info.parent.as_deref())
                    .map(|p| b.exc_ids[p]),
            })
            .collect();
        let exc_matrix = ancestry_matrix(exceptions.len(), |i| {
            exceptions[i].parent.map(|p| p.0 as usize)
        });

        // Classes in declaration order, with their decls kept at hand.
        let mut decls = Vec::new();
        for (fidx, file) in files.iter().enumerate() {
            for item in &file.items {
                if let Item::Class(class) = item {
                    let id = ClassId(decls.len() as u32);
                    b.class_ids.insert(class.name.clone(), id);
                    decls.push((FileId(fidx as u32), class));
                }
            }
        }
        let parents: Vec<Option<ClassId>> = decls
            .iter()
            .map(|(_, class)| class.parent.as_ref().map(|p| b.class_ids[p]))
            .collect();
        let class_matrix =
            ancestry_matrix(decls.len(), |i| parents[i].map(|p| p.0 as usize));

        // Layouts, field initializers, and method bodies.
        let mut classes: Vec<ClassDef> = Vec::with_capacity(decls.len());
        let mut methods: Vec<CompiledMethod> = Vec::new();
        let mut own_methods: Vec<Vec<(Symbol, u32)>> = Vec::with_capacity(decls.len());
        for (idx, (file, class)) in decls.iter().enumerate() {
            // Superclass chain, base first.
            let mut chain = vec![idx];
            let mut cursor = parents[idx];
            while let Some(p) = cursor {
                chain.push(p.0 as usize);
                cursor = parents[p.0 as usize];
            }
            chain.reverse();

            // Field slots: first declaration along the chain wins the slot;
            // a shadowing redeclaration reuses it (matching the HashMap
            // the tree walker kept per object).
            let mut slots: Vec<(Symbol, u32)> = Vec::new();
            let mut by_name: HashMap<Symbol, u32> = HashMap::new();
            for &ci in &chain {
                for field in &decls[ci].1.fields {
                    let sym = b.interner.intern(&field.name);
                    if let std::collections::hash_map::Entry::Vacant(e) = by_name.entry(sym) {
                        e.insert(slots.len() as u32);
                        slots.push((sym, slots.len() as u32));
                    }
                }
            }
            let len = slots.len();
            slots.sort_unstable_by_key(|&(sym, _)| sym);
            let class_sym = b.interner.intern(&class.name);
            let layout = Arc::new(FieldLayout {
                class_id: ClassId(idx as u32),
                class_sym,
                class_name: class.name.clone(),
                slots,
                len,
            });

            // Initializers in chain order; call sites inside carry the
            // declaring class's file. Initializer expressions cannot touch
            // locals, so they lower with an empty scope.
            let mut inits = Vec::new();
            for &ci in &chain {
                let (decl_file, decl) = decls[ci];
                for field in &decl.fields {
                    if let Some(expr) = &field.init {
                        let sym = b.interner.intern(&field.name);
                        let slot = by_name[&sym];
                        let mut lower = Lowerer::new(&mut b, decl_file);
                        let expr = lower.expr(expr);
                        inits.push(FieldInit { slot, expr });
                    }
                }
            }

            // This class's own methods.
            let mut own: Vec<(Symbol, u32)> = Vec::new();
            for method in &class.methods {
                let midx = methods.len() as u32;
                let compiled = compile_method(&mut b, *file, ClassId(idx as u32), method);
                own.push((compiled.name, midx));
                methods.push(compiled);
            }
            own_methods.push(own);

            classes.push(ClassDef {
                name: class_sym,
                name_str: class.name.clone(),
                file: *file,
                parent: parents[idx],
                layout,
                inits,
                has_init: false, // filled in after dispatch flattening
                dispatch: Vec::new(),
            });
        }

        // Flatten dispatch: walk derived → base, first definition wins.
        for idx in 0..classes.len() {
            let mut dispatch: Vec<(Symbol, u32)> = Vec::new();
            let mut seen: HashMap<Symbol, ()> = HashMap::new();
            let mut cursor = Some(idx);
            while let Some(ci) = cursor {
                for &(name, midx) in &own_methods[ci] {
                    if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(name) {
                        e.insert(());
                        dispatch.push((name, midx));
                    }
                }
                cursor = classes[ci].parent.map(|p| p.0 as usize);
            }
            dispatch.sort_unstable_by_key(|&(sym, _)| sym);
            classes[idx].has_init = lookup_sorted(&dispatch, init).is_some();
            classes[idx].dispatch = dispatch;
        }

        // Configs, sorted by key for deterministic dense ids.
        let mut config_keys: Vec<(&String, &Literal)> = symbols.configs().collect();
        config_keys.sort_unstable_by_key(|&(k, _)| k);
        let configs: Vec<ConfigDef> = config_keys
            .into_iter()
            .map(|(key, default)| ConfigDef {
                key: key.clone(),
                sym: b.interner.intern(key),
                default: default.clone(),
            })
            .collect();

        let wk = WellKnown {
            entry,
            init,
            npe: b.exc_ids["NullPointerException"],
            arithmetic: b.exc_ids["ArithmeticException"],
            assertion: b.exc_ids["AssertionError"],
        };

        let mut class_by_sym: Vec<(Symbol, ClassId)> = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name, ClassId(i as u32)))
            .collect();
        class_by_sym.sort_unstable_by_key(|&(sym, _)| sym);
        let mut exc_by_sym: Vec<(Symbol, ExcId)> = exceptions
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name, ExcId(i as u32)))
            .collect();
        exc_by_sym.sort_unstable_by_key(|&(sym, _)| sym);
        let mut config_by_sym: Vec<(Symbol, u32)> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| (c.sym, i as u32))
            .collect();
        config_by_sym.sort_unstable_by_key(|&(sym, _)| sym);

        ProgramIndex {
            interner: b.interner,
            classes,
            methods,
            exceptions,
            configs,
            class_by_sym,
            exc_by_sym,
            config_by_sym,
            exc_matrix,
            class_matrix,
            wk,
        }
    }
}

/// Builds the `n × n` transitive-ancestry matrix for a parent function.
fn ancestry_matrix(n: usize, parent: impl Fn(usize) -> Option<usize>) -> Vec<bool> {
    let mut matrix = vec![false; n * n];
    for sub in 0..n {
        let mut cursor = Some(sub);
        while let Some(cur) = cursor {
            matrix[sub * n + cur] = true;
            cursor = parent(cur);
        }
    }
    matrix
}

fn compile_method(
    b: &mut Builder<'_>,
    file: FileId,
    owner: ClassId,
    method: &MethodDecl,
) -> CompiledMethod {
    let mut throws: Vec<ExcId> = method
        .throws
        .iter()
        .filter_map(|t| b.exc_ids.get(t).copied())
        .collect();
    throws.sort_unstable();
    throws.dedup();
    let mut lower = Lowerer::new(b, file);
    for param in &method.params {
        lower.slot_for(param);
    }
    // Pass 1: collect every name that can become a local anywhere in the
    // body (var declarations, bare-assignment targets, catch bindings).
    // Reads resolve against the full set so a read that dynamically
    // precedes the write still falls through to the `this`-field lookup at
    // run time, exactly like the HashMap environment did.
    lower.collect_locals(&method.body);
    let body = lower.block(&method.body);
    let name = lower.b.interner.intern(&method.name);
    CompiledMethod {
        name,
        params: method.params.len() as u32,
        n_slots: lower.n_slots,
        body,
        is_test: method.is_test,
        owner,
        file,
        throws,
    }
}

struct Lowerer<'b, 'a> {
    b: &'b mut Builder<'a>,
    file: FileId,
    scope: HashMap<String, Slot>,
    n_slots: u32,
}

impl<'b, 'a> Lowerer<'b, 'a> {
    fn new(b: &'b mut Builder<'a>, file: FileId) -> Self {
        Lowerer {
            b,
            file,
            scope: HashMap::new(),
            n_slots: 0,
        }
    }

    fn slot_for(&mut self, name: &str) -> Slot {
        if let Some(&slot) = self.scope.get(name) {
            return slot;
        }
        let slot = self.n_slots;
        self.n_slots += 1;
        self.scope.insert(name.to_string(), slot);
        slot
    }

    fn collect_locals(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.collect_stmt(stmt);
        }
    }

    fn collect_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Var { name, .. } => {
                self.slot_for(name);
            }
            Stmt::Assign {
                target: LValue::Var(name, _),
                ..
            } => {
                self.slot_for(name);
            }
            Stmt::Assign { .. } => {}
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                self.collect_locals(then_blk);
                if let Some(else_blk) = else_blk {
                    self.collect_locals(else_blk);
                }
            }
            Stmt::While { body, .. } => self.collect_locals(body),
            Stmt::For {
                init, update, body, ..
            } => {
                if let Some(init) = init {
                    self.collect_stmt(init);
                }
                if let Some(update) = update {
                    self.collect_stmt(update);
                }
                self.collect_locals(body);
            }
            Stmt::Switch { cases, default, .. } => {
                for (_, body) in cases {
                    self.collect_locals(body);
                }
                if let Some(default) = default {
                    self.collect_locals(default);
                }
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                self.collect_locals(body);
                for catch in catches {
                    self.slot_for(&catch.binding);
                    self.collect_locals(&catch.body);
                }
                if let Some(finally) = finally {
                    self.collect_locals(finally);
                }
            }
            _ => {}
        }
    }

    fn block(&mut self, block: &Block) -> Vec<LStmt> {
        block.stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, stmt: &Stmt) -> LStmt {
        match stmt {
            Stmt::Var { name, init, .. } => LStmt::Var {
                slot: self.scope[name],
                init: self.expr(init),
            },
            Stmt::Assign { target, value, .. } => {
                let value = self.expr(value);
                match target {
                    LValue::Var(name, _) => LStmt::AssignLocal {
                        slot: self.scope[name],
                        name: self.b.interner.intern(name),
                        value,
                    },
                    LValue::Field { recv, name, .. } => LStmt::AssignField {
                        recv: self.expr(recv),
                        name: self.b.interner.intern(name),
                        value,
                    },
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => LStmt::If {
                cond: self.expr(cond),
                then_blk: self.block(then_blk),
                else_blk: else_blk.as_ref().map(|blk| self.block(blk)),
            },
            Stmt::While { cond, body, .. } => LStmt::While {
                cond: self.expr(cond),
                body: self.block(body),
            },
            Stmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => LStmt::For {
                init: init.as_ref().map(|s| Box::new(self.stmt(s))),
                cond: cond.as_ref().map(|e| self.expr(e)),
                update: update.as_ref().map(|s| Box::new(self.stmt(s))),
                body: self.block(body),
            },
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => LStmt::Switch {
                scrutinee: self.expr(scrutinee),
                cases: cases
                    .iter()
                    .map(|(lit, body)| (lit.clone(), self.block(body)))
                    .collect(),
                default: default.as_ref().map(|blk| self.block(blk)),
            },
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => LStmt::Try {
                body: self.block(body),
                catches: catches
                    .iter()
                    .map(|catch| LCatch {
                        exc: self.b.exc_ids[&catch.exc_type],
                        binding: self.scope[&catch.binding],
                        body: self.block(&catch.body),
                    })
                    .collect(),
                finally: finally.as_ref().map(|blk| self.block(blk)),
            },
            Stmt::Throw { expr, .. } => LStmt::Throw {
                expr: self.expr(expr),
            },
            Stmt::Return { expr, .. } => LStmt::Return {
                expr: expr.as_ref().map(|e| self.expr(e)),
            },
            Stmt::Break { .. } => LStmt::Break,
            Stmt::Continue { .. } => LStmt::Continue,
            Stmt::Sleep { ms, .. } => LStmt::Sleep { ms: self.expr(ms) },
            Stmt::Log { expr, .. } => LStmt::Log {
                expr: self.expr(expr),
            },
            Stmt::Assert { cond, msg, .. } => LStmt::Assert {
                cond: self.expr(cond),
                msg: msg.as_ref().map(|e| self.expr(e)),
            },
            Stmt::Expr { expr, .. } => LStmt::Expr {
                expr: self.expr(expr),
            },
        }
    }

    fn expr(&mut self, expr: &Expr) -> LExpr {
        match expr {
            Expr::Literal(lit, _) => LExpr::Literal(lit.clone()),
            Expr::Ident(name, _) => match self.scope.get(name.as_str()) {
                Some(&slot) => LExpr::Local {
                    slot,
                    name: self.b.interner.intern(name),
                },
                None => LExpr::ImplicitField {
                    name: self.b.interner.intern(name),
                },
            },
            Expr::This(_) => LExpr::This,
            Expr::Field { recv, name, .. } => LExpr::Field {
                recv: Box::new(self.expr(recv)),
                name: self.b.interner.intern(name),
            },
            Expr::Call {
                id,
                recv,
                method,
                args,
                ..
            } => {
                let args: Vec<LExpr> = args.iter().map(|a| self.expr(a)).collect();
                if recv.is_none() && is_global_builtin(method) {
                    LExpr::GlobalCall {
                        name: self.b.interner.intern(method),
                        args,
                    }
                } else {
                    LExpr::Call {
                        site: CallSite {
                            file: self.file,
                            call: *id,
                        },
                        recv: recv.as_ref().map(|r| Box::new(self.expr(r))),
                        method: self.b.interner.intern(method),
                        args,
                    }
                }
            }
            Expr::New { class, args, .. } => {
                let args: Vec<LExpr> = args.iter().map(|a| self.expr(a)).collect();
                // Exception types take precedence over classes, matching the
                // tree walker's `symbols.exception(..)`-first resolution.
                if let Some(&exc) = self.b.exc_ids.get(class.as_str()) {
                    return LExpr::NewExc { exc, args };
                }
                match self.b.class_ids.get(class.as_str()) {
                    Some(&class) => LExpr::NewObj { class, args },
                    None => LExpr::NewUnknown {
                        class: class.clone(),
                        args,
                    },
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => LExpr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
            Expr::Unary { op, expr, .. } => LExpr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)),
            },
            Expr::InstanceOf { expr, ty, .. } => LExpr::InstanceOf {
                expr: Box::new(self.expr(expr)),
                ty: self.b.interner.intern(ty),
                exc: self.b.exc_ids.get(ty.as_str()).copied(),
                class: self.b.class_ids.get(ty.as_str()).copied(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::Project;

    fn compile(src: &str) -> Project {
        Project::compile("t", vec![("t.jav", src)]).expect("compile")
    }

    #[test]
    fn dispatch_flattens_the_inheritance_walk() {
        let p = compile(
            "class Base { method greet() { return 1; } method shared() { return 2; } }\n\
             class Derived extends Base { method shared() { return 3; } }",
        );
        let index = &p.index;
        let base = index.class_by_name("Base").expect("Base");
        let derived = index.class_by_name("Derived").expect("Derived");
        let greet = index.interner.lookup("greet").expect("greet interned");
        let shared = index.interner.lookup("shared").expect("shared interned");
        // Derived inherits greet from Base and overrides shared.
        let inherited = index.resolve_dispatch(derived, greet).expect("inherited");
        assert_eq!(inherited, index.resolve_dispatch(base, greet).unwrap());
        let overridden = index.resolve_dispatch(derived, shared).expect("own");
        assert_ne!(overridden, index.resolve_dispatch(base, shared).unwrap());
        assert!(index.resolve_dispatch(base, index.interner.lookup("missing").unwrap_or(Symbol(u32::MAX - 1))).is_none());
    }

    #[test]
    fn field_layouts_flatten_the_chain_base_first() {
        let p = compile(
            "class Base { field a = 1; field b = 2; }\n\
             class Derived extends Base { field c = 3; field b = 4; }",
        );
        let index = &p.index;
        let derived = index.class_by_name("Derived").expect("Derived");
        let layout = &index.classes[derived.0 as usize].layout;
        assert_eq!(layout.len(), 3, "shadowed field shares its slot");
        let slot = |name: &str| layout.slot(index.interner.lookup(name).unwrap()).unwrap();
        assert_eq!(slot("a"), 0);
        assert_eq!(slot("b"), 1);
        assert_eq!(slot("c"), 2);
        // Both initializers for `b` write the same slot, chain order.
        let def = &index.classes[derived.0 as usize];
        let b_inits: Vec<u32> = def
            .inits
            .iter()
            .map(|i| i.slot)
            .filter(|&s| s == 1)
            .collect();
        assert_eq!(b_inits.len(), 2);
    }

    #[test]
    fn exception_matrix_matches_symbol_table() {
        let p = compile(
            "exception IOException;\n\
             exception ConnectException extends IOException;\n\
             class A { }",
        );
        let index = &p.index;
        for sub in index.exceptions.iter() {
            for sup in index.exceptions.iter() {
                let sub_id = index.exc_by_name(&sub.name_str).unwrap();
                let sup_id = index.exc_by_name(&sup.name_str).unwrap();
                assert_eq!(
                    index.is_exc_subtype(sub_id, sup_id),
                    p.symbols.is_exception_subtype(&sub.name_str, &sup.name_str),
                    "{} <: {}",
                    sub.name_str,
                    sup.name_str
                );
            }
        }
    }

    #[test]
    fn locals_get_dense_slots_and_unscoped_reads_fall_through() {
        let p = compile(
            "class C {\n\
               field f = 7;\n\
               method m(a, b) { var x = a; x = x + b; return f; }\n\
             }",
        );
        let index = &p.index;
        let c = index.class_by_name("C").unwrap();
        let m = index
            .resolve_dispatch(c, index.interner.lookup("m").unwrap())
            .unwrap();
        let method = &index.methods[m as usize];
        assert_eq!(method.params, 2);
        assert_eq!(method.n_slots, 3, "a, b, x");
        // `return f;` must lower to the implicit-field fallback, not a slot.
        let LStmt::Return { expr: Some(LExpr::ImplicitField { .. }) } = &method.body[2] else {
            panic!("expected implicit-field read, got {:?}", method.body[2]);
        };
    }

    #[test]
    fn config_keys_get_dense_sorted_ids() {
        let p = compile(
            "config \"b.key\" default 2;\nconfig \"a.key\" default 1;\nclass A { }",
        );
        let index = &p.index;
        assert_eq!(index.configs.len(), 2);
        assert_eq!(index.configs[0].key, "a.key");
        assert_eq!(index.config_by_name("a.key"), Some(0));
        assert_eq!(index.config_by_name("b.key"), Some(1));
        assert_eq!(index.config_by_name("missing"), None);
    }
}
