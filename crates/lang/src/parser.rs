//! Recursive-descent parser for Javelin.

use crate::ast::*;
use crate::error::Diagnostic;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a whole source file into a list of top-level items.
///
/// Call ids and loop ids are assigned in source order, so they are stable for
/// a given source text.
pub fn parse_file(source: &str) -> Result<Vec<Item>, Diagnostic> {
    let tokens = Lexer::tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_call_id: 0,
        next_loop_id: 0,
    };
    parser.file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_call_id: u32,
    next_loop_id: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let tok = self.bump();
                Ok((name, tok.span))
            }
            other => Err(self.error_here(format!(
                "expected identifier, found {}",
                other.describe()
            ))),
        }
    }

    fn error_here(&self, message: String) -> Diagnostic {
        Diagnostic::new(self.peek().span, message)
    }

    fn fresh_call_id(&mut self) -> CallId {
        let id = CallId(self.next_call_id);
        self.next_call_id += 1;
        id
    }

    fn fresh_loop_id(&mut self) -> LoopId {
        let id = LoopId(self.next_loop_id);
        self.next_loop_id += 1;
        id
    }

    // ---- Items -----------------------------------------------------------

    fn file(&mut self) -> Result<Vec<Item>, Diagnostic> {
        let mut items = Vec::new();
        while !self.at(&TokenKind::Eof) {
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<Item, Diagnostic> {
        match self.peek_kind() {
            TokenKind::Exception => self.exception_decl().map(Item::ExceptionDecl),
            TokenKind::Config => self.config_decl().map(Item::ConfigDecl),
            TokenKind::Class => self.class_decl().map(Item::Class),
            other => Err(self.error_here(format!(
                "expected `class`, `exception`, or `config`, found {}",
                other.describe()
            ))),
        }
    }

    fn exception_decl(&mut self) -> Result<ExceptionDecl, Diagnostic> {
        let start = self.expect(TokenKind::Exception)?.span;
        let (name, _) = self.expect_ident()?;
        let parent = if self.eat(&TokenKind::Extends) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(ExceptionDecl {
            name,
            parent,
            span: start.to(end),
        })
    }

    fn config_decl(&mut self) -> Result<ConfigDecl, Diagnostic> {
        let start = self.expect(TokenKind::Config)?.span;
        let key = match self.peek_kind().clone() {
            TokenKind::Str(key) => {
                self.bump();
                key
            }
            other => {
                return Err(self.error_here(format!(
                    "expected string config key, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(TokenKind::Default)?;
        let default = self.literal()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(ConfigDecl {
            key,
            default,
            span: start.to(end),
        })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, Diagnostic> {
        let start = self.expect(TokenKind::Class)?.span;
        let (name, _) = self.expect_ident()?;
        let parent = if self.eat(&TokenKind::Extends) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            match self.peek_kind() {
                TokenKind::Field => fields.push(self.field_decl()?),
                TokenKind::Method => methods.push(self.method_decl(false)?),
                TokenKind::Test => methods.push(self.method_decl(true)?),
                TokenKind::RBrace => break,
                other => {
                    return Err(self.error_here(format!(
                        "expected `field`, `method`, `test`, or `}}`, found {}",
                        other.describe()
                    )))
                }
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(ClassDecl {
            name,
            parent,
            fields,
            methods,
            span: start.to(end),
        })
    }

    fn field_decl(&mut self) -> Result<FieldDecl, Diagnostic> {
        let start = self.expect(TokenKind::Field)?.span;
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(FieldDecl {
            name,
            init,
            span: start.to(end),
        })
    }

    fn method_decl(&mut self, is_test: bool) -> Result<MethodDecl, Diagnostic> {
        let start = self
            .expect(if is_test {
                TokenKind::Test
            } else {
                TokenKind::Method
            })?
            .span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                params.push(self.expect_ident()?.0);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let mut throws = Vec::new();
        if self.eat(&TokenKind::Throws) {
            loop {
                throws.push(self.expect_ident()?.0);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(MethodDecl {
            name,
            params,
            throws,
            body,
            is_test,
            span,
        })
    }

    // ---- Statements ------------------------------------------------------

    fn block(&mut self) -> Result<Block, Diagnostic> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            stmts.push(self.stmt()?);
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek_kind() {
            TokenKind::Var => self.var_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Switch => self.switch_stmt(),
            TokenKind::Try => self.try_stmt(),
            TokenKind::Throw => self.throw_stmt(),
            TokenKind::Return => self.return_stmt(),
            TokenKind::Break => {
                let span = self.bump().span.to(self.expect(TokenKind::Semi)?.span);
                Ok(Stmt::Break { span })
            }
            TokenKind::Continue => {
                let span = self.bump().span.to(self.expect(TokenKind::Semi)?.span);
                Ok(Stmt::Continue { span })
            }
            TokenKind::Ident(name)
                if matches!(name.as_str(), "sleep" | "log" | "assert")
                    && *self.peek2_kind() == TokenKind::LParen =>
            {
                self.builtin_stmt()
            }
            _ => self.expr_or_assign_stmt(),
        }
    }

    fn var_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Var)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let init = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Var {
            name,
            init,
            span: start.to(end),
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::If)?.span;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_blk = self.block()?;
        let mut span = start.to(then_blk.span);
        let else_blk = if self.eat(&TokenKind::Else) {
            // Support `else if` by wrapping the nested if in a block.
            if self.at(&TokenKind::If) {
                let nested = self.if_stmt()?;
                let nested_span = nested.span();
                span = span.to(nested_span);
                Some(Block {
                    stmts: vec![nested],
                    span: nested_span,
                })
            } else {
                let blk = self.block()?;
                span = span.to(blk.span);
                Some(blk)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::While)?.span;
        let id = self.fresh_loop_id();
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(Stmt::While {
            id,
            cond,
            body,
            span,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::For)?.span;
        let id = self.fresh_loop_id();
        self.expect(TokenKind::LParen)?;
        let init = if self.at(&TokenKind::Semi) {
            self.bump();
            None
        } else if self.at(&TokenKind::Var) {
            Some(Box::new(self.var_stmt()?))
        } else {
            Some(Box::new(self.simple_assign_stmt()?))
        };
        let cond = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let update = if self.at(&TokenKind::RParen) {
            None
        } else {
            Some(Box::new(self.assign_no_semi()?))
        };
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(Stmt::For {
            id,
            init,
            cond,
            update,
            body,
            span,
        })
    }

    /// An assignment followed by `;`, used in for-loop initializers.
    fn simple_assign_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let stmt = self.assign_no_semi()?;
        self.expect(TokenKind::Semi)?;
        Ok(stmt)
    }

    /// An assignment without the trailing `;`, used in for-loop headers.
    fn assign_no_semi(&mut self) -> Result<Stmt, Diagnostic> {
        let expr = self.expr()?;
        self.expect(TokenKind::Assign)?;
        let target = self.expr_to_lvalue(expr)?;
        let value = self.expr()?;
        let span = target.span().to(value.span());
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    fn switch_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Switch)?.span;
        let id = self.fresh_loop_id();
        self.expect(TokenKind::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            if self.eat(&TokenKind::Case) {
                let lit = self.literal()?;
                self.expect(TokenKind::Colon)?;
                let body = self.block()?;
                cases.push((lit, body));
            } else if self.eat(&TokenKind::Default) {
                self.expect(TokenKind::Colon)?;
                if default.is_some() {
                    return Err(self.error_here("duplicate `default` arm".into()));
                }
                default = Some(self.block()?);
            } else {
                break;
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(Stmt::Switch {
            id,
            scrutinee,
            cases,
            default,
            span: start.to(end),
        })
    }

    fn try_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Try)?.span;
        let body = self.block()?;
        let mut catches = Vec::new();
        let mut end = body.span;
        while self.at(&TokenKind::Catch) {
            let cstart = self.bump().span;
            self.expect(TokenKind::LParen)?;
            let (exc_type, _) = self.expect_ident()?;
            let (binding, _) = self.expect_ident()?;
            self.expect(TokenKind::RParen)?;
            let cbody = self.block()?;
            end = cbody.span;
            catches.push(CatchClause {
                exc_type,
                binding,
                span: cstart.to(cbody.span),
                body: cbody,
            });
        }
        let finally = if self.eat(&TokenKind::Finally) {
            let fblock = self.block()?;
            end = fblock.span;
            Some(fblock)
        } else {
            None
        };
        if catches.is_empty() && finally.is_none() {
            return Err(self.error_here("`try` requires at least one `catch` or `finally`".into()));
        }
        Ok(Stmt::Try {
            body,
            catches,
            finally,
            span: start.to(end),
        })
    }

    fn throw_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Throw)?.span;
        let expr = self.expr()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Throw {
            expr,
            span: start.to(end),
        })
    }

    fn return_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Return)?.span;
        let expr = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(Stmt::Return {
            expr,
            span: start.to(end),
        })
    }

    fn builtin_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let (name, start) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let stmt = match name.as_str() {
            "sleep" => {
                let ms = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Stmt::Sleep {
                    ms,
                    span: start.to(end),
                }
            }
            "log" => {
                let expr = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Stmt::Log {
                    expr,
                    span: start.to(end),
                }
            }
            "assert" => {
                let cond = self.expr()?;
                let msg = if self.eat(&TokenKind::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Stmt::Assert {
                    cond,
                    msg,
                    span: start.to(end),
                }
            }
            _ => unreachable!("builtin_stmt called on non-builtin"),
        };
        Ok(stmt)
    }

    fn expr_or_assign_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let expr = self.expr()?;
        if self.at(&TokenKind::Assign) {
            self.bump();
            let target = self.expr_to_lvalue(expr)?;
            let value = self.expr()?;
            let end = self.expect(TokenKind::Semi)?.span;
            let span = target.span().to(end);
            Ok(Stmt::Assign {
                target,
                value,
                span,
            })
        } else {
            let end = self.expect(TokenKind::Semi)?.span;
            let span = expr.span().to(end);
            Ok(Stmt::Expr { expr, span })
        }
    }

    fn expr_to_lvalue(&self, expr: Expr) -> Result<LValue, Diagnostic> {
        match expr {
            Expr::Ident(name, span) => Ok(LValue::Var(name, span)),
            Expr::Field { recv, name, span } => Ok(LValue::Field {
                recv: *recv,
                name,
                span,
            }),
            other => Err(Diagnostic::new(
                other.span(),
                "invalid assignment target (expected variable or field)",
            )),
        }
    }

    // ---- Expressions -----------------------------------------------------

    fn literal(&mut self) -> Result<Literal, Diagnostic> {
        let lit = match self.peek_kind().clone() {
            TokenKind::Int(v) => Literal::Int(v),
            TokenKind::Str(s) => Literal::Str(s),
            TokenKind::True => Literal::Bool(true),
            TokenKind::False => Literal::Bool(false),
            TokenKind::Null => Literal::Null,
            TokenKind::Minus => {
                self.bump();
                match self.peek_kind().clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        return Ok(Literal::Int(-v));
                    }
                    other => {
                        return Err(self.error_here(format!(
                            "expected integer after `-`, found {}",
                            other.describe()
                        )))
                    }
                }
            }
            other => {
                return Err(self.error_here(format!(
                    "expected literal, found {}",
                    other.describe()
                )))
            }
        };
        self.bump();
        Ok(lit)
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.equality_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.equality_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.comparison_expr()?;
        loop {
            let op = if self.eat(&TokenKind::EqEq) {
                BinOp::Eq
            } else if self.eat(&TokenKind::NotEq) {
                BinOp::NotEq
            } else {
                return Ok(lhs);
            };
            let rhs = self.comparison_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn comparison_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.additive_expr()?;
        loop {
            if self.eat(&TokenKind::Instanceof) {
                let (ty, ty_span) = self.expect_ident()?;
                let span = lhs.span().to(ty_span);
                lhs = Expr::InstanceOf {
                    expr: Box::new(lhs),
                    ty,
                    span,
                };
                continue;
            }
            let op = if self.eat(&TokenKind::Lt) {
                BinOp::Lt
            } else if self.eat(&TokenKind::LtEq) {
                BinOp::LtEq
            } else if self.eat(&TokenKind::Gt) {
                BinOp::Gt
            } else if self.eat(&TokenKind::GtEq) {
                BinOp::GtEq
            } else {
                return Ok(lhs);
            };
            let rhs = self.additive_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn additive_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        if self.at(&TokenKind::Bang) {
            let start = self.bump().span;
            let expr = self.unary_expr()?;
            let span = start.to(expr.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
                span,
            });
        }
        if self.at(&TokenKind::Minus) {
            let start = self.bump().span;
            let expr = self.unary_expr()?;
            let span = start.to(expr.span());
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut expr = self.primary_expr()?;
        while self.at(&TokenKind::Dot) {
            self.bump();
            let (name, name_span) = self.expect_ident()?;
            if self.at(&TokenKind::LParen) {
                let args = self.call_args()?;
                let span = expr.span().to(self.prev_span());
                expr = Expr::Call {
                    id: self.fresh_call_id(),
                    recv: Some(Box::new(expr)),
                    method: name,
                    args,
                    span,
                };
            } else {
                let span = expr.span().to(name_span);
                expr = Expr::Field {
                    recv: Box::new(expr),
                    name,
                    span,
                };
            }
        }
        Ok(expr)
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(v), tok.span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s), tok.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true), tok.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false), tok.span))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Literal(Literal::Null, tok.span))
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr::This(tok.span))
            }
            TokenKind::New => {
                self.bump();
                let (class, _) = self.expect_ident()?;
                let args = self.call_args()?;
                let span = tok.span.to(self.prev_span());
                Ok(Expr::New {
                    id: self.fresh_call_id(),
                    class,
                    args,
                    span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    let span = tok.span.to(self.prev_span());
                    Ok(Expr::Call {
                        id: self.fresh_call_id(),
                        recv: None,
                        method: name,
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::Ident(name, tok.span))
                }
            }
            other => Err(self.error_here(format!(
                "expected expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Vec<Item> {
        parse_file(src).expect("parse should succeed")
    }

    fn only_class(items: Vec<Item>) -> ClassDecl {
        match items.into_iter().next().expect("one item") {
            Item::Class(c) => c,
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn parses_exception_and_config_decls() {
        let items = parse_ok(
            "exception IOException;\n\
             exception ConnectException extends IOException;\n\
             config \"dfs.retry.max\" default 5;",
        );
        assert_eq!(items.len(), 3);
        match &items[1] {
            Item::ExceptionDecl(d) => {
                assert_eq!(d.name, "ConnectException");
                assert_eq!(d.parent.as_deref(), Some("IOException"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &items[2] {
            Item::ConfigDecl(d) => {
                assert_eq!(d.key, "dfs.retry.max");
                assert_eq!(d.default, Literal::Int(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_class_with_fields_methods_tests() {
        let class = only_class(parse_ok(
            "class C extends Base {\n\
               field count = 0;\n\
               field name;\n\
               method m(a, b) throws E1, E2 { return a + b; }\n\
               test tWorks() { assert(true); }\n\
             }",
        ));
        assert_eq!(class.name, "C");
        assert_eq!(class.parent.as_deref(), Some("Base"));
        assert_eq!(class.fields.len(), 2);
        assert_eq!(class.methods.len(), 2);
        assert_eq!(class.methods[0].throws, vec!["E1", "E2"]);
        assert!(!class.methods[0].is_test);
        assert!(class.methods[1].is_test);
    }

    #[test]
    fn parses_retry_loop_with_try_catch() {
        let class = only_class(parse_ok(
            "class R {\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.connect(); }\n\
                   catch (ConnectException e) { sleep(1000); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        ));
        let body = &class.methods[0].body;
        match &body.stmts[0] {
            Stmt::For { id, body, .. } => {
                assert_eq!(*id, LoopId(0));
                assert!(matches!(body.stmts[0], Stmt::Try { .. }));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn call_ids_are_sequential() {
        let class = only_class(parse_ok(
            "class C { method m() { this.a(); this.b(new T()); } }",
        ));
        let mut ids = Vec::new();
        crate::ast::walk_exprs(&class.methods[0].body, &mut |e| {
            if let Expr::Call { id, .. } = e {
                ids.push(id.0);
            }
            if let Expr::New { id, .. } = e {
                ids.push(id.0);
            }
        });
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn parses_switch_state_machine() {
        let class = only_class(parse_ok(
            "class P {\n\
               field state = \"DISPATCH\";\n\
               method execute() {\n\
                 switch (this.state) {\n\
                   case \"DISPATCH\": { this.mark(); }\n\
                   case \"FINISH\": { return true; }\n\
                   default: { log(\"?\"); }\n\
                 }\n\
                 return false;\n\
               }\n\
             }",
        ));
        match &class.methods[0].body.stmts[0] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn parses_else_if_chain() {
        let class = only_class(parse_ok(
            "class C { method m(x) { if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; } } }",
        ));
        match &class.methods[0].body.stmts[0] {
            Stmt::If { else_blk, .. } => {
                let inner = else_blk.as_ref().expect("else");
                assert!(matches!(inner.stmts[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_operators_with_precedence() {
        let class = only_class(parse_ok(
            "class C { method m(a, b) { return a + b * 2 == 10 || !(a < b) && b != null; } }",
        ));
        match &class.methods[0].body.stmts[0] {
            Stmt::Return { expr: Some(e), .. } => match e {
                Expr::Binary { op: BinOp::Or, .. } => {}
                other => panic!("expected top-level ||, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parses_instanceof_and_wrapping() {
        let class = only_class(parse_ok(
            "class C { method m(e) { if (e.getCause() instanceof AccessControlException) { throw new WrappedException(\"w\", e); } return null; } }",
        ));
        assert!(!class.methods.is_empty());
    }

    #[test]
    fn parses_field_assignment_targets() {
        let class = only_class(parse_ok(
            "class C { field f; method m(o) { this.f = 1; o.g = 2; f = 3; } }",
        ));
        let stmts = &class.methods[0].body.stmts;
        assert!(matches!(
            &stmts[0],
            Stmt::Assign {
                target: LValue::Field { .. },
                ..
            }
        ));
        assert!(matches!(
            &stmts[2],
            Stmt::Assign {
                target: LValue::Var(..),
                ..
            }
        ));
    }

    #[test]
    fn parses_try_catch_finally() {
        let class = only_class(parse_ok(
            "class C { method m() { try { this.a(); } catch (E1 e) { } catch (E2 e) { } finally { log(\"f\"); } } }",
        ));
        match &class.methods[0].body.stmts[0] {
            Stmt::Try {
                catches, finally, ..
            } => {
                assert_eq!(catches.len(), 2);
                assert!(finally.is_some());
            }
            other => panic!("expected try, got {other:?}"),
        }
    }

    #[test]
    fn rejects_try_without_handlers() {
        assert!(parse_file("class C { method m() { try { } } }").is_err());
    }

    #[test]
    fn rejects_assignment_to_call() {
        assert!(parse_file("class C { method m() { this.a() = 3; } }").is_err());
    }

    #[test]
    fn rejects_duplicate_default_arm() {
        assert!(parse_file(
            "class C { method m(x) { switch (x) { default: { } default: { } } } }"
        )
        .is_err());
    }

    #[test]
    fn parses_for_with_empty_parts() {
        let class = only_class(parse_ok("class C { method m() { for (;;) { break; } } }"));
        match &class.methods[0].body.stmts[0] {
            Stmt::For {
                init, cond, update, ..
            } => {
                assert!(init.is_none());
                assert!(cond.is_none());
                assert!(update.is_none());
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_negative_literal_in_config() {
        let items = parse_ok("config \"retry.max\" default -1;");
        match &items[0] {
            Item::ConfigDecl(d) => assert_eq!(d.default, Literal::Int(-1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sleep_log_assert_are_statements() {
        let class = only_class(parse_ok(
            "class C { test t() { sleep(10); log(\"msg\"); assert(1 == 1, \"eq\"); assert(true); } }",
        ));
        let stmts = &class.methods[0].body.stmts;
        assert!(matches!(stmts[0], Stmt::Sleep { .. }));
        assert!(matches!(stmts[1], Stmt::Log { .. }));
        assert!(matches!(stmts[2], Stmt::Assert { msg: Some(_), .. }));
        assert!(matches!(stmts[3], Stmt::Assert { msg: None, .. }));
    }

    #[test]
    fn error_mentions_expected_token() {
        let err = parse_file("class C {").unwrap_err();
        assert!(err.message.contains("expected"), "message: {}", err.message);
    }
}
