//! Hand-written lexer for Javelin.
//!
//! Comments (`// ...` and `/* ... */`) are skipped by the token stream but the
//! raw source is retained in [`crate::project::SourceFile`] so that the
//! LLM-based analyses can still see them — the paper observes that comments
//! and identifier names are the clearest evidence of retry logic.

use crate::error::Diagnostic;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Streaming lexer over a source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input, ending with an [`TokenKind::Eof`] token.
    pub fn tokenize(source: &'a str) -> Result<Vec<Token>, Diagnostic> {
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            tokens.push(tok);
            if done {
                return Ok(tokens);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Diagnostic::new(
                                Span::new(start as u32, self.pos as u32),
                                "unterminated block comment",
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Returns the next token, skipping whitespace and comments.
    pub fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let start = self.pos as u32;
        if self.pos >= self.src.len() {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(start, start),
            });
        }
        let c = self.bump();
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    TokenKind::NotEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    TokenKind::LtEq
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                if self.peek() == b'&' {
                    self.pos += 1;
                    TokenKind::AndAnd
                } else {
                    return Err(Diagnostic::new(
                        Span::new(start, self.pos as u32),
                        "expected `&&`",
                    ));
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.pos += 1;
                    TokenKind::OrOr
                } else {
                    return Err(Diagnostic::new(
                        Span::new(start, self.pos as u32),
                        "expected `||`",
                    ));
                }
            }
            b'"' => self.lex_string(start)?,
            b'0'..=b'9' => self.lex_number(start)?,
            c if c == b'_' || c == b'$' || c.is_ascii_alphabetic() => self.lex_ident(start),
            other => {
                return Err(Diagnostic::new(
                    Span::new(start, self.pos as u32),
                    format!("unexpected character `{}`", other as char),
                ));
            }
        };
        Ok(Token {
            kind,
            span: Span::new(start, self.pos as u32),
        })
    }

    fn lex_string(&mut self, start: u32) -> Result<TokenKind, Diagnostic> {
        let mut out = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(Diagnostic::new(
                    Span::new(start, self.pos as u32),
                    "unterminated string literal",
                ));
            }
            match self.bump() {
                b'"' => return Ok(TokenKind::Str(out)),
                b'\\' => {
                    let esc = self.bump();
                    match esc {
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'\\' => out.push('\\'),
                        b'"' => out.push('"'),
                        other => {
                            return Err(Diagnostic::new(
                                Span::new(start, self.pos as u32),
                                format!("unknown escape `\\{}`", other as char),
                            ));
                        }
                    }
                }
                b'\n' => {
                    return Err(Diagnostic::new(
                        Span::new(start, self.pos as u32),
                        "newline in string literal",
                    ));
                }
                other => out.push(other as char),
            }
        }
    }

    fn lex_number(&mut self, start: u32) -> Result<TokenKind, Diagnostic> {
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start as usize..self.pos])
            .expect("digits are valid UTF-8");
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| {
                Diagnostic::new(
                    Span::new(start, self.pos as u32),
                    format!("integer literal `{text}` out of range"),
                )
            })
    }

    fn lex_ident(&mut self, start: u32) -> TokenKind {
        while {
            let c = self.peek();
            c == b'_' || c == b'$' || c.is_ascii_alphanumeric()
        } {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start as usize..self.pos])
            .expect("identifier bytes are valid UTF-8");
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            kinds("( ) { } , ; : . = == != < <= > >= + - * / % ! && ||"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::Dot,
                TokenKind::Assign,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Bang,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("class retryCount while $tmp _x"),
            vec![
                TokenKind::Class,
                TokenKind::Ident("retryCount".into()),
                TokenKind::While,
                TokenKind::Ident("$tmp".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds(r#"42 "hi\n" true false null"#),
            vec![
                TokenKind::Int(42),
                TokenKind::Str("hi\n".into()),
                TokenKind::True,
                TokenKind::False,
                TokenKind::Null,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // retry here\n b /* block\ncomment */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_are_correct() {
        let toks = Lexer::tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(Lexer::tokenize("\"abc").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(Lexer::tokenize("/* abc").is_err());
    }

    #[test]
    fn rejects_newline_in_string() {
        assert!(Lexer::tokenize("\"ab\ncd\"").is_err());
    }

    #[test]
    fn rejects_single_ampersand() {
        assert!(Lexer::tokenize("a & b").is_err());
    }

    #[test]
    fn rejects_unknown_escape() {
        assert!(Lexer::tokenize(r#""\q""#).is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(Lexer::tokenize("a # b").is_err());
    }
}
