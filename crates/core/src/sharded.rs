//! Crash-tolerant multi-process sharded campaigns.
//!
//! The parent process compiles and plans exactly like a single-process
//! campaign, partitions the key-sorted run list into `N` contiguous
//! ranges, writes a [`ShardManifest`] into the shard directory, and
//! re-execs itself (`wasabi test --shard-range A:B --stream --journal
//! <dir>/shard-i.jsonl`) once per range. Each child re-derives the same
//! plan from the same sources and executes only its slice, streaming
//! records to its journal with bounded memory.
//!
//! Crashed children are restarted by [`supervise_shard`] with the
//! bounded, jittered backoff of [`SupervisorPolicy`], resuming from the
//! shard journal (journaled runs never re-execute); runs that repeatedly
//! kill their child are bisected out into `dlq.jsonl`. When every shard
//! is done, [`merge_records`] key-order-merges the journals into a report
//! byte-identical to a single-process run — and `wasabi merge <dir>`
//! ([`merge_dir`]) can do the same later, standalone.

use crate::api::{compile_app, report_json_with, AppJob};
use crate::dynamic::{prepare_campaign, DynamicOptions, DynamicResult, DynamicStats, PreparedCampaign};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;
use wasabi_engine::campaign::{CampaignStats, RunOutcome, RunRecord};
use wasabi_engine::journal::{self, DeadLetter};
use wasabi_engine::metrics::CampaignMetrics;
use wasabi_engine::observer::NullObserver;
use wasabi_engine::shard::{
    dead_letters_for, dlq_path, partition, shard_journal_path, supervise_shard, write_manifest,
    ShardExit, ShardManifest, ShardMerge, ShardRunner, SupervisorPolicy,
};
use wasabi_oracles::dedup::dedup_reports;
use wasabi_planner::plan::RunKey;

/// Options for a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Shard (child process) count.
    pub shards: usize,
    /// Directory for shard journals, the manifest, and the DLQ.
    pub dir: PathBuf,
    /// The `wasabi` binary to re-exec (the CLI passes
    /// `std::env::current_exe()`; tests pass a built binary path).
    pub exe: PathBuf,
    /// Working directory for children; source paths are resolved against
    /// it (relative paths must stay relative — the simulated LLM keys on
    /// them). `None` inherits the parent's.
    pub cwd: Option<PathBuf>,
    /// Engine workers *per child*.
    pub jobs: usize,
    /// `--max-attempts` forwarded to children (None = default policy).
    pub max_attempts: Option<u8>,
    /// Restart/backoff/bisection policy.
    pub policy: SupervisorPolicy,
    /// Chaos: pass `--chaos-exit-after` to the *first* spawn of this
    /// shard, so it dies mid-flight exactly once and recovery is
    /// deterministic (restarts never carry the flag).
    pub chaos_kill_shard: Option<usize>,
    /// Journal appends before the chaos kill fires.
    pub chaos_exit_after: u64,
    /// Suppress per-shard stderr progress.
    pub quiet: bool,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 2,
            dir: PathBuf::from("shards"),
            exe: PathBuf::new(),
            cwd: None,
            jobs: 1,
            max_attempts: None,
            policy: SupervisorPolicy::default(),
            chaos_kill_shard: None,
            chaos_exit_after: 3,
            quiet: false,
        }
    }
}

/// What a sharded campaign (or a standalone merge) produced.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The merged report document (same shape as `wasabi test --json`).
    pub report: String,
    /// Distinct bugs found.
    pub bugs: usize,
    /// Runs quarantined at the process level (no record; counted in the
    /// report's `dead_lettered` field).
    pub dead_lettered: usize,
    /// Child restarts across all shards (stderr summary only — never in
    /// the report, which must stay byte-identical to single-process).
    pub restarts: u32,
    /// Records merged from shard journals.
    pub merged_runs: usize,
}

/// Reads campaign sources relative to `cwd` (or the process cwd), keeping
/// the paths exactly as given.
fn read_sources(files: &[String], cwd: Option<&Path>) -> Result<Vec<(String, String)>, String> {
    files
        .iter()
        .map(|file| {
            let path = match cwd {
                Some(dir) => dir.join(file),
                None => PathBuf::from(file),
            };
            std::fs::read_to_string(&path)
                .map(|contents| (file.clone(), contents))
                .map_err(|err| format!("read {}: {err}", path.display()))
        })
        .collect()
}

fn compile_sources(sources: Vec<(String, String)>) -> Result<AppJob, String> {
    compile_app("cli", sources, 0).map_err(|diagnostics| {
        let mut message = String::from("compile failed:");
        for diagnostic in diagnostics {
            message.push_str(&format!("\n  {diagnostic}"));
        }
        message
    })
}

/// The production [`ShardRunner`]: spawns `wasabi test --shard-range`
/// children and reads completion back from the shard journal.
struct ProcessShardRunner<'a> {
    options: &'a ShardedOptions,
    files: &'a [String],
    /// Plan key → global run index, for mapping journaled records back to
    /// the indexes the supervisor reasons about.
    index_of: &'a BTreeMap<RunKey, usize>,
}

impl ProcessShardRunner<'_> {
    fn journal(&self, shard: usize) -> PathBuf {
        shard_journal_path(&self.options.dir, shard)
    }
}

impl ShardRunner for ProcessShardRunner<'_> {
    fn run(&mut self, shard: usize, segment: (usize, usize), restart: u32) -> ShardExit {
        let journal = self.journal(shard);
        let mut command = Command::new(&self.options.exe);
        command
            .arg("test")
            .arg("--quiet")
            .arg("--stream")
            .arg("--journal")
            .arg(&journal)
            .arg("--shard-range")
            .arg(format!("{}:{}", segment.0, segment.1))
            .arg("--jobs")
            .arg(self.options.jobs.to_string());
        if let Some(max) = self.options.max_attempts {
            command.arg("--max-attempts").arg(max.to_string());
        }
        if journal.exists() {
            command.arg("--resume").arg(&journal);
        }
        if restart == 0 && self.options.chaos_kill_shard == Some(shard) {
            command
                .arg("--chaos-exit-after")
                .arg(self.options.chaos_exit_after.to_string());
        }
        for file in self.files {
            command.arg(file);
        }
        if let Some(cwd) = &self.options.cwd {
            command.current_dir(cwd);
        }
        command.stdout(Stdio::null()).stdin(Stdio::null());
        if self.options.quiet {
            command.stderr(Stdio::null());
        }
        match command.status() {
            Ok(status) if status.code() == Some(0) || status.code() == Some(1) => ShardExit::Clean,
            Ok(status) => ShardExit::Crashed {
                status: match status.code() {
                    Some(code) => format!("exit code {code}"),
                    None => "killed by signal".to_string(),
                },
            },
            Err(err) => ShardExit::Crashed {
                status: format!("spawn failed: {err}"),
            },
        }
    }

    fn completed(&mut self, shard: usize) -> Result<Vec<usize>, String> {
        let journal = self.journal(shard);
        if !journal.exists() {
            return Ok(Vec::new());
        }
        let mut reader = journal::JournalReader::open(&journal)?;
        let mut indexes = Vec::new();
        while let Some(record) = reader.next_record()? {
            match self.index_of.get(&record.key) {
                Some(&index) => indexes.push(index),
                None => {
                    return Err(format!(
                        "shard {shard} journal holds a record outside the plan: {:?}",
                        record.key
                    ))
                }
            }
        }
        Ok(indexes)
    }

    fn sleep(&mut self, delay: Duration) {
        std::thread::sleep(delay);
    }
}

/// Runs a sharded campaign end to end: plan, partition, supervise child
/// processes, dead-letter poison runs, merge, report.
pub fn run_sharded(files: &[String], options: &ShardedOptions) -> Result<ShardedOutcome, String> {
    if options.shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let sources = read_sources(files, options.cwd.as_deref())?;
    let job = compile_sources(sources)?;
    let dynamic_options = DynamicOptions {
        jobs: options.jobs,
        capture_timing: false,
        ..DynamicOptions::default()
    };
    let prepared = prepare_campaign(
        &job.project,
        &job.identified.locations,
        &dynamic_options,
        &mut NullObserver,
    );

    std::fs::create_dir_all(&options.dir)
        .map_err(|err| format!("create shard dir {}: {err}", options.dir.display()))?;
    let ranges = partition(prepared.runs.len(), options.shards);
    write_manifest(
        &options.dir,
        &ShardManifest {
            shards: options.shards,
            total_runs: prepared.runs.len(),
            ranges: ranges.clone(),
            source_digest: job.digest,
            files: files.to_vec(),
        },
    )?;

    let keys: Vec<RunKey> = prepared.runs.iter().map(|run| run.key()).collect();
    let index_of: BTreeMap<RunKey, usize> =
        keys.iter().cloned().enumerate().map(|(i, k)| (k, i)).collect();

    // One supervisor thread per shard; children are separate processes, so
    // threads here only block on waitpid and backoff sleeps.
    let letters: Mutex<Vec<DeadLetter>> = Mutex::new(Vec::new());
    let restarts: Mutex<u32> = Mutex::new(0);
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(shard, &range)| {
                let (letters, restarts, keys, index_of) = (&letters, &restarts, &keys, &index_of);
                scope.spawn(move || -> Result<(), String> {
                    let mut runner = ProcessShardRunner {
                        options,
                        files,
                        index_of,
                    };
                    let report = supervise_shard(&options.policy, shard, range, &mut runner)?;
                    if !options.quiet && (report.restarts > 0 || !report.dead.is_empty()) {
                        eprintln!(
                            "[shard] shard {shard}: {} restart(s), {} run(s) dead-lettered",
                            report.restarts,
                            report.dead.len()
                        );
                    }
                    let shard_letters = dead_letters_for(shard, &report.dead, keys)?;
                    letters.lock().expect("letters lock").extend(shard_letters);
                    *restarts.lock().expect("restarts lock") += report.restarts;
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("supervisor thread panicked"))
            .collect()
    });
    for result in results {
        result?;
    }

    // Dead letters are written sorted by key so the DLQ file is
    // deterministic for a deterministic chaos seed.
    let mut letters = letters.into_inner().expect("letters lock");
    letters.sort_by(|a, b| a.key.cmp(&b.key));
    journal::append_dead_letters(&dlq_path(&options.dir), &letters)?;
    let restarts = restarts.into_inner().expect("restarts lock");

    let mut outcome = merge_records(&job, prepared, &options.dir, options.shards)?;
    outcome.restarts = restarts;
    Ok(outcome)
}

/// Standalone merge: `wasabi merge <dir>`. Re-reads the manifest's
/// sources (relative to `cwd`, exactly as the campaign did), recompiles,
/// verifies the source digest, re-derives the plan, and merges the shard
/// journals into the same report the sharded campaign printed.
pub fn merge_dir(dir: &Path, cwd: Option<&Path>) -> Result<ShardedOutcome, String> {
    let manifest = wasabi_engine::shard::load_manifest(dir)?;
    let sources = read_sources(&manifest.files, cwd)?;
    let job = compile_sources(sources)?;
    if job.digest != manifest.source_digest {
        return Err(format!(
            "sources changed since the campaign: digest {:016x} != manifest {:016x}",
            job.digest, manifest.source_digest
        ));
    }
    let prepared = prepare_campaign(
        &job.project,
        &job.identified.locations,
        &DynamicOptions {
            capture_timing: false,
            ..DynamicOptions::default()
        },
        &mut NullObserver,
    );
    if prepared.runs.len() != manifest.total_runs {
        return Err(format!(
            "plan disagrees with manifest: {} runs planned, manifest says {}",
            prepared.runs.len(),
            manifest.total_runs
        ));
    }
    merge_records(&job, prepared, dir, manifest.shards)
}

/// Key-order-merges the shard journals under `dir` into a report document
/// byte-identical to a single-process campaign (modulo `dead_lettered`,
/// which single-process pins to 0). Streaming: at most one record per
/// shard is resident during the walk.
fn merge_records(
    job: &AppJob,
    prepared: PreparedCampaign,
    dir: &Path,
    shards: usize,
) -> Result<ShardedOutcome, String> {
    let dead = journal::load_dead_letters(&dlq_path(dir))?;
    let dead_keys: BTreeSet<&RunKey> = dead.iter().map(|letter| &letter.key).collect();
    let paths: Vec<PathBuf> = (0..shards).map(|i| shard_journal_path(dir, i)).collect();
    let mut merge = ShardMerge::open(&paths)?;

    let mut campaign = CampaignStats::default();
    let mut stats = DynamicStats::default();
    let mut reports = Vec::new();
    let mut merged_runs = 0usize;
    for run in &prepared.runs {
        let key = run.key();
        if dead_keys.contains(&key) {
            continue;
        }
        let Some(record) = merge.take(&key)? else {
            return Err(format!(
                "gap: no shard journaled a record for {key:?} and it is not dead-lettered"
            ));
        };
        merged_runs += 1;
        absorb(&mut campaign, &mut stats, &record);
        if !matches!(record.outcome, RunOutcome::TimedOut | RunOutcome::Crashed { .. }) {
            reports.extend(record.reports);
        }
    }
    merge.finish()?;

    campaign.runs_total = merged_runs;
    stats.runs_executed = merged_runs;
    let bugs = dedup_reports(reports.clone());
    let tested_structures: BTreeSet<String> = prepared
        .runs
        .iter()
        .map(|run| run.spec.location.structure_key())
        .collect();
    let bugs_count = bugs.len();
    let retry = DynamicOptions::default().retry;
    let result = DynamicResult {
        restoration: prepared.restoration,
        profile: prepared.profile,
        plan: prepared.test_plan,
        runs_planned: prepared.runs.len(),
        runs_naive: prepared.runs_naive,
        reports,
        bugs,
        stats,
        tested_structures,
        campaign,
        campaign_metrics: CampaignMetrics::from_records(&[], &retry),
        adaptive: None,
    };
    let report = report_json_with(&job.identified, &result, dead.len());
    Ok(ShardedOutcome {
        report,
        bugs: bugs_count,
        dead_lettered: dead.len(),
        restarts: 0,
        merged_runs,
    })
}

/// The merge-side equivalent of the engine's per-record stat fold, over
/// the fields the report and CLI summary read.
fn absorb(campaign: &mut CampaignStats, stats: &mut DynamicStats, record: &RunRecord) {
    match &record.outcome {
        RunOutcome::TimedOut => {
            campaign.timed_out += 1;
            stats.timed_out += 1;
        }
        RunOutcome::Crashed { .. } => campaign.crashed += 1,
        RunOutcome::Completed(outcome) => {
            campaign.completed += 1;
            if !outcome.is_pass() {
                campaign.failed += 1;
                stats.crashed += 1;
            }
        }
    }
    campaign.retried += usize::from(record.attempts.saturating_sub(1));
    campaign.quarantined += usize::from(record.quarantined);
    campaign.rethrow_filtered += usize::from(record.rethrow_filtered);
    campaign.not_a_trigger += usize::from(record.not_a_trigger);
    campaign.reports += record.reports.len();
    campaign.injections += u64::from(record.injections);
    campaign.virtual_ms += record.virtual_ms;
    campaign.steps += record.steps;
    stats.rethrow_filtered += usize::from(record.rethrow_filtered);
    stats.not_a_trigger += usize::from(record.not_a_trigger);
    stats.virtual_ms += record.virtual_ms;
}
