//! Ground-truth scoring: turns tool reports into the paper's tables.
//!
//! The paper's authors hand-audited every report; here the synthetic corpus
//! carries labels, so scoring is mechanical. Each report is matched to the
//! structure (or trap file) it points at and classified as a true or false
//! positive; false positives are further bucketed into the §4.3 taxonomy.

use crate::dynamic::{run_dynamic_with_observer, DynamicOptions, DynamicResult};
use crate::identify::{identify, Identified};
use std::collections::{BTreeMap, BTreeSet};
use wasabi_analysis::ifratio::{if_ratio_reports, IfOptions, IfReport};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_corpus::synth::{compile_app, GeneratedApp};
use wasabi_corpus::truth::{SeededBug, Trap};
use wasabi_llm::detector::LlmWhenKind;
use wasabi_llm::model::Usage;
use wasabi_llm::simulated::SimulatedLlm;
use wasabi_oracles::judge::BugKind;

/// A reported/true-positive pair (a cell of Tables 3–4, with the FP count
/// shown as a subscript in the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
}

impl Cell {
    /// Total reports in this cell.
    pub fn reported(&self) -> usize {
        self.tp + self.fp
    }
}

/// Everything measured for one application.
#[derive(Debug, Clone, Default)]
pub struct AppEvaluation {
    /// App short code.
    pub app: String,

    // ---- Identification (Figure 4 / Table 5) ----------------------------
    /// Ground-truth structures generated.
    pub structures_total: usize,
    /// Ground-truth loops generated.
    pub loops_total: usize,
    /// Structures identified by either technique.
    pub identified_any: usize,
    /// Structures identified by the control-flow query.
    pub identified_codeql: usize,
    /// Structures identified by the LLM.
    pub identified_llm: usize,
    /// Loops identified by the control-flow query.
    pub loops_codeql: usize,
    /// Loops identified by the LLM.
    pub loops_llm: usize,
    /// Control-flow identifications not backed by a real structure.
    pub ident_fp_codeql: usize,
    /// LLM-flagged files not backed by a real structure.
    pub ident_fp_llm: usize,
    /// Structures covered by the injection plan (Table 5 "tested").
    pub tested: usize,

    // ---- Dynamic workflow (Table 3) --------------------------------------
    /// Missing-cap bugs via repurposed unit testing.
    pub dyn_cap: Cell,
    /// Missing-delay bugs via repurposed unit testing.
    pub dyn_delay: Cell,
    /// HOW bugs via repurposed unit testing.
    pub dyn_how: Cell,

    // ---- LLM static checking (Table 4) -----------------------------------
    /// Missing-cap findings from the LLM detector.
    pub llm_cap: Cell,
    /// Missing-delay findings from the LLM detector.
    pub llm_delay: Cell,

    // ---- IF analysis (§4.1) ----------------------------------------------
    /// True IF-outlier exception reports.
    pub if_tp: usize,
    /// False IF reports.
    pub if_fp: usize,
    /// Outlier loop instances across true reports.
    pub if_outlier_instances: usize,
    /// `(exception, r, n)` for every IF report.
    pub if_ratios: Vec<(String, usize, usize)>,

    // ---- Test suite (Table 6) ---------------------------------------------
    /// Unit tests in the generated suite.
    pub tests_total: usize,
    /// Tests covering at least one retry location.
    pub tests_cover_retry: usize,
    /// Injected runs without planning.
    pub runs_naive: usize,
    /// Injected runs with planning.
    pub runs_planned: usize,

    // ---- Cost (§4.3) -------------------------------------------------------
    /// LLM API usage for this app.
    pub llm_usage: Usage,
    /// Virtual milliseconds spent in injected runs.
    pub injected_virtual_ms: u64,

    // ---- Figure 3 / §4.4 ----------------------------------------------------
    /// True bugs found dynamically, as `structure-id:kind` identities.
    pub dynamic_true_bugs: BTreeSet<String>,
    /// True bugs found statically (LLM WHEN + IF), same identity space.
    pub static_true_bugs: BTreeSet<String>,
    /// False-positive taxonomy counts.
    pub fp_taxonomy: BTreeMap<String, usize>,
    /// Injected runs filtered as same-exception rethrows.
    pub rethrow_filtered: usize,
    /// Injected runs that crashed.
    pub crashed_runs: usize,
}

fn bug_for_kind(kind: BugKind) -> SeededBug {
    match kind {
        BugKind::MissingCap => SeededBug::MissingCap,
        BugKind::MissingDelay => SeededBug::MissingDelay,
        BugKind::DifferentException => SeededBug::How,
    }
}

/// Runs the whole WASABI pipeline on a generated app and scores it.
pub fn evaluate_app(app: &GeneratedApp, options: &DynamicOptions) -> AppEvaluation {
    evaluate_app_with_observer(app, options, &mut wasabi_engine::NullObserver)
}

/// [`evaluate_app`] with campaign progress/metrics streamed into
/// `observer` (the repro binary's `--trace-out` recorder rides here).
pub fn evaluate_app_with_observer(
    app: &GeneratedApp,
    options: &DynamicOptions,
    observer: &mut dyn wasabi_engine::EngineObserver,
) -> AppEvaluation {
    let project = compile_app(app);
    let mut llm = SimulatedLlm::with_seed(app.spec.seed);
    let identified = identify(&project, &mut llm);
    let dynamic = run_dynamic_with_observer(&project, &identified.locations, options, observer);
    let index = ProjectIndex::build(&project);
    let if_reports = if_ratio_reports(&index, &IfOptions::default());
    score(app, &project, &identified, &dynamic, &if_reports)
}

/// Scores already-computed results against the app's ground truth.
pub fn score(
    app: &GeneratedApp,
    project: &wasabi_lang::project::Project,
    identified: &Identified,
    dynamic: &DynamicResult,
    if_reports: &[IfReport],
) -> AppEvaluation {
    let truth = &app.truth;
    let mut eval = AppEvaluation {
        app: app.spec.short.to_string(),
        structures_total: truth.structures.len(),
        loops_total: truth
            .structures
            .iter()
            .filter(|s| s.kind.is_loop())
            .count(),
        tests_total: project.tests().len(),
        tests_cover_retry: dynamic.profile.tests_covering_retry(),
        runs_naive: dynamic.runs_naive,
        runs_planned: dynamic.runs_planned,
        llm_usage: identified.llm_sweep.usage,
        injected_virtual_ms: dynamic.stats.virtual_ms,
        rethrow_filtered: dynamic.stats.rethrow_filtered,
        crashed_runs: dynamic.stats.crashed,
        ..AppEvaluation::default()
    };
    let mut taxonomy = |key: &str| {
        *eval.fp_taxonomy.entry(key.to_string()).or_insert(0) += 1;
    };

    // ---- Identification ----------------------------------------------------
    let codeql_coordinators: BTreeSet<String> = identified
        .codeql_loops
        .iter()
        .map(|l| l.coordinator.to_string())
        .collect();
    let llm_coordinators: BTreeSet<String> = identified
        .llm_coordinators
        .iter()
        .map(|(_, m)| m.to_string())
        .collect();
    let llm_files: BTreeSet<&str> = identified
        .llm_sweep
        .retry_files
        .iter()
        .filter(|r| !r.poll_excluded)
        .map(|r| r.path.as_str())
        .collect();
    for structure in &truth.structures {
        let coordinator = structure.coordinator.to_string();
        let by_codeql = codeql_coordinators.contains(&coordinator);
        let by_llm = llm_coordinators.contains(&coordinator)
            || llm_files.contains(structure.file_path.as_str());
        if by_codeql {
            eval.identified_codeql += 1;
            if structure.kind.is_loop() {
                eval.loops_codeql += 1;
            }
        }
        if by_llm {
            eval.identified_llm += 1;
            if structure.kind.is_loop() {
                eval.loops_llm += 1;
            }
        }
        if by_codeql || by_llm {
            eval.identified_any += 1;
        }
    }
    // Identification false positives: flagged things with no structure.
    let structure_coordinators: BTreeSet<String> = truth
        .structures
        .iter()
        .map(|s| s.coordinator.to_string())
        .collect();
    let structure_files: BTreeSet<&str> = truth
        .structures
        .iter()
        .map(|s| s.file_path.as_str())
        .collect();
    eval.ident_fp_codeql = identified
        .codeql_loops
        .iter()
        .filter(|l| !structure_coordinators.contains(&l.coordinator.to_string()))
        .count();
    eval.ident_fp_llm = identified
        .llm_sweep
        .retry_files
        .iter()
        .filter(|r| !r.poll_excluded && !structure_files.contains(r.path.as_str()))
        .count();

    // ---- Tested structures (Table 5) ---------------------------------------
    let planned_sites: BTreeSet<_> = dynamic.plan.entries.iter().map(|e| e.site).collect();
    let mut tested_ids = BTreeSet::new();
    for location in &identified.locations {
        if planned_sites.contains(&location.site) {
            if let Some(structure) = truth.by_coordinator(&location.coordinator) {
                tested_ids.insert(structure.id.clone());
            }
        }
    }
    eval.tested = tested_ids.len();

    // ---- Dynamic bugs (Table 3) ---------------------------------------------
    for bug in &dynamic.bugs {
        let representative = bug.representative();
        let structure = truth.by_coordinator(&representative.location.coordinator);
        let is_tp = structure
            .map(|s| s.has_bug(bug_for_kind(bug.kind)))
            .unwrap_or(false);
        let cell = match bug.kind {
            BugKind::MissingCap => &mut eval.dyn_cap,
            BugKind::MissingDelay => &mut eval.dyn_delay,
            BugKind::DifferentException => &mut eval.dyn_how,
        };
        if is_tp {
            cell.tp += 1;
            let structure = structure.expect("tp implies structure");
            eval.dynamic_true_bugs
                .insert(format!("{}:{:?}", structure.id, bug_for_kind(bug.kind)));
        } else {
            cell.fp += 1;
            match structure {
                Some(s) if s.has_trap(Trap::HarnessSwallow) => taxonomy("dyn-cap-harness-swallow"),
                Some(s) if s.has_trap(Trap::ReplicaSwitch) => taxonomy("dyn-delay-not-needed"),
                Some(s) if s.has_trap(Trap::WrapRethrow) => taxonomy("dyn-how-wrapped-exception"),
                _ => taxonomy("dyn-other"),
            }
        }
    }

    // ---- LLM WHEN findings (Table 4) ----------------------------------------
    for finding in &identified.llm_sweep.findings {
        let structures = truth.by_file(&finding.path);
        let bug = match finding.kind {
            LlmWhenKind::MissingCap => SeededBug::MissingCap,
            LlmWhenKind::MissingDelay => SeededBug::MissingDelay,
        };
        let matched = structures
            .iter()
            .find(|s| s.coordinator.name == finding.method || structures.len() == 1);
        let is_tp = matched.map(|s| s.has_bug(bug)).unwrap_or(false);
        let cell = match finding.kind {
            LlmWhenKind::MissingCap => &mut eval.llm_cap,
            LlmWhenKind::MissingDelay => &mut eval.llm_delay,
        };
        if is_tp {
            cell.tp += 1;
            let structure = matched.expect("tp implies structure");
            eval.static_true_bugs
                .insert(format!("{}:{:?}", structure.id, bug));
        } else {
            cell.fp += 1;
            match matched {
                None => taxonomy("llm-non-retry-file"),
                Some(s)
                    if s.has_trap(Trap::HelperSleepElsewhere)
                        || s.has_trap(Trap::HelperCapElsewhere) =>
                {
                    taxonomy("llm-single-file-helper")
                }
                Some(_) => taxonomy("llm-miscomprehension"),
            }
        }
    }

    // ---- IF reports (§4.1) -----------------------------------------------------
    for report in if_reports {
        eval.if_ratios
            .push((report.exception.clone(), report.r, report.n));
        let seed = truth
            .if_seeds
            .iter()
            .find(|s| s.exception == report.exception);
        match seed {
            Some(seed) if seed.genuine => {
                eval.if_tp += 1;
                eval.if_outlier_instances += report.outliers.len();
                // One bug identity per outlier instance: the paper counts 8
                // true IF cases across 5 exception groups.
                for (i, _) in report.outliers.iter().enumerate() {
                    eval.static_true_bugs
                        .insert(format!("if:{}:{}:{i}", eval.app, report.exception));
                }
            }
            Some(_) => {
                eval.if_fp += 1;
                taxonomy("if-boolean-flag-control-flow");
            }
            None => {
                eval.if_fp += 1;
                taxonomy("if-unseeded-outlier");
            }
        }
    }

    eval
}

/// Cross-app aggregation for the headline numbers (§4.1 / Figure 3).
#[derive(Debug, Clone, Default)]
pub struct Aggregate {
    /// Per-app evaluations in spec order.
    pub apps: Vec<AppEvaluation>,
}

impl Aggregate {
    /// Sum a cell selector across apps.
    pub fn cell_sum(&self, select: impl Fn(&AppEvaluation) -> Cell) -> Cell {
        let mut out = Cell::default();
        for app in &self.apps {
            let cell = select(app);
            out.tp += cell.tp;
            out.fp += cell.fp;
        }
        out
    }

    /// Distinct true bugs found dynamically.
    pub fn dynamic_bugs(&self) -> usize {
        self.apps.iter().map(|a| a.dynamic_true_bugs.len()).sum()
    }

    /// Distinct true bugs found statically (LLM WHEN + IF).
    pub fn static_bugs(&self) -> usize {
        self.apps.iter().map(|a| a.static_true_bugs.len()).sum()
    }

    /// Bugs found by both workflows (the Figure 3 intersection).
    pub fn overlap(&self) -> usize {
        self.apps
            .iter()
            .map(|a| a.dynamic_true_bugs.intersection(&a.static_true_bugs).count())
            .sum()
    }

    /// Total distinct true bugs (the Figure 3 union).
    pub fn total_bugs(&self) -> usize {
        self.dynamic_bugs() + self.static_bugs() - self.overlap()
    }
}
