//! The `wasabi lint` workflow: interprocedural static diagnostics plus
//! Figure-4-style overlap accounting between the query-based checkers and
//! the LLM static sweep.
//!
//! The paper's Figure 4 compares what CodeQL-style queries and the
//! LLM-based checker each find, and what both find. Here the query side is
//! [`lint_project`]'s WHEN diagnostics (`W001` missing cap, `W002` missing
//! delay) and the LLM side is the sweep's WHEN findings; a finding is
//! *shared* when both techniques flag the same `(file, method, kind)`.
//!
//! On top of the counts, [`cross_check`] runs the two techniques as
//! mutually-checking detectors (the CERBERUS arbitration idea: when two
//! imperfect detectors agree, confidence rises; when they disagree, that
//! is exactly where scrutiny should go). Every finding becomes a
//! [`CrossCheckCell`] in one of three [`Tier`]s, the matrix renders
//! deterministically, and [`CrossCheck::disagreement_methods`] feeds the
//! adaptive planner so disagreement-tier methods get probe priority.

use std::collections::BTreeSet;
use wasabi_analysis::checkers::{lint_project, LintOptions, LintResult};
use wasabi_lang::project::Project;
use wasabi_llm::detector::{sweep_project, LlmSweep, LlmWhenKind};
use wasabi_llm::model::LanguageModel;

/// Overlap counts between the static checkers and the LLM sweep, for WHEN
/// findings only (the codes both techniques can express).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhenOverlap {
    /// WHEN findings only the static checkers report.
    pub static_only: usize,
    /// WHEN findings only the LLM sweep reports.
    pub llm_only: usize,
    /// WHEN findings both techniques report.
    pub both: usize,
}

impl WhenOverlap {
    /// Total distinct WHEN findings across both techniques.
    pub fn total(&self) -> usize {
        self.static_only + self.llm_only + self.both
    }
}

/// Everything `wasabi lint` computes for one project.
#[derive(Debug)]
pub struct LintReport {
    /// The static lint result (sorted diagnostics + per-loop facts).
    pub lint: LintResult,
    /// The LLM sweep the overlap was computed against.
    pub sweep: LlmSweep,
    /// CodeQL-vs-LLM WHEN overlap.
    pub overlap: WhenOverlap,
}

/// The diagnostic code an LLM WHEN finding corresponds to.
fn code_of(kind: LlmWhenKind) -> &'static str {
    match kind {
        LlmWhenKind::MissingCap => "W001",
        LlmWhenKind::MissingDelay => "W002",
    }
}

/// Confidence tier of one cross-checked finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Both detectors flagged the same `(file, method, code)`.
    BothAgree,
    /// Only the static checkers flagged it. WHEN codes here mean the LLM
    /// sweep missed it; codes the sweep cannot express (`W003`–`W006`,
    /// `A001`, `I001`) are inherently static-only.
    StaticOnly,
    /// Only the LLM sweep flagged it.
    LlmOnly,
}

impl Tier {
    /// The stable label used in text and JSON renderings.
    pub fn label(self) -> &'static str {
        match self {
            Tier::BothAgree => "both-agree",
            Tier::StaticOnly => "static-only",
            Tier::LlmOnly => "llm-only",
        }
    }
}

/// One `(code, file, method)` finding with its arbitration tier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrossCheckCell {
    /// Source file path (project-relative, as diagnostics report it).
    pub file: String,
    /// Coordinator method name (class-stripped — the granularity the LLM
    /// sweep reports at).
    pub method: String,
    /// Diagnostic code (`W001`, ..., `I001`).
    pub code: String,
    /// Which detector(s) flagged it.
    pub tier: Tier,
}

/// The deterministic agreement matrix between the static checkers and the
/// LLM sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossCheck {
    /// All cells, sorted by `(file, method, code, tier)` — byte-identical
    /// across `--jobs` values (both inputs are already deterministic).
    pub cells: Vec<CrossCheckCell>,
    /// Findings both detectors agree on.
    pub both: usize,
    /// Findings only the static checkers report.
    pub static_only: usize,
    /// Findings only the LLM sweep reports.
    pub llm_only: usize,
}

impl CrossCheck {
    /// Total distinct findings across both detectors.
    pub fn total(&self) -> usize {
        self.both + self.static_only + self.llm_only
    }

    /// Coordinator method names in a disagreement tier (exactly one
    /// detector spoke). The adaptive planner boosts probe priority for
    /// retry sites anchored in these methods.
    pub fn disagreement_methods(&self) -> BTreeSet<String> {
        self.cells
            .iter()
            .filter(|cell| cell.tier != Tier::BothAgree)
            .map(|cell| cell.method.clone())
            .collect()
    }

    /// Renders the matrix as stable text: one header, one row per cell,
    /// one totals line.
    pub fn render_text(&self) -> String {
        let mut out = String::from("cross-check agreement matrix:\n");
        for cell in &self.cells {
            out.push_str(&format!(
                "  {:<12} {:<5} {}  {}\n",
                cell.tier.label(),
                cell.code,
                cell.file,
                cell.method
            ));
        }
        out.push_str(&format!(
            "tiers: {} both-agree, {} static-only, {} llm-only\n",
            self.both, self.static_only, self.llm_only
        ));
        out
    }
}

/// Arbitrates the static diagnostics against the LLM sweep findings.
///
/// WHEN diagnostics (`W001`/`W002`) are matched against LLM findings on
/// `(file, method, code)`; every other static code is static-only by
/// construction (the sweep has no question for it); unmatched LLM
/// findings are llm-only. Duplicate diagnostics in one method (two loops,
/// same code) collapse into one cell — the matrix is about *which
/// detector spoke where*, not occurrence counts.
pub fn cross_check(lint: &LintResult, sweep: &LlmSweep) -> CrossCheck {
    let llm_found: BTreeSet<(String, String, &'static str)> = sweep
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.method.clone(), code_of(f.kind)))
        .collect();

    let mut cells: BTreeSet<CrossCheckCell> = BTreeSet::new();
    let mut matched: BTreeSet<(String, String, &'static str)> = BTreeSet::new();
    for d in &lint.diagnostics {
        let method = d
            .coordinator
            .rsplit('.')
            .next()
            .unwrap_or(&d.coordinator)
            .to_string();
        let when_key = (d.file.clone(), method.clone(), d.code);
        let tier = if (d.code == "W001" || d.code == "W002") && llm_found.contains(&when_key) {
            matched.insert(when_key);
            Tier::BothAgree
        } else {
            Tier::StaticOnly
        };
        cells.insert(CrossCheckCell {
            file: d.file.clone(),
            method,
            code: d.code.to_string(),
            tier,
        });
    }
    for (file, method, code) in &llm_found {
        if !matched.contains(&(file.clone(), method.clone(), *code)) {
            cells.insert(CrossCheckCell {
                file: file.clone(),
                method: method.clone(),
                code: (*code).to_string(),
                tier: Tier::LlmOnly,
            });
        }
    }

    let mut check = CrossCheck {
        cells: cells.into_iter().collect(),
        ..CrossCheck::default()
    };
    for cell in &check.cells {
        match cell.tier {
            Tier::BothAgree => check.both += 1,
            Tier::StaticOnly => check.static_only += 1,
            Tier::LlmOnly => check.llm_only += 1,
        }
    }
    check
}

/// Runs the static checkers and the LLM sweep and accounts their overlap.
pub fn lint_with_overlap(
    project: &Project,
    llm: &mut dyn LanguageModel,
    options: &LintOptions,
) -> LintReport {
    let lint = lint_project(project, options);
    let sweep = sweep_project(project, llm);

    let static_found: BTreeSet<(String, String, &'static str)> = lint
        .diagnostics
        .iter()
        .filter(|d| d.code == "W001" || d.code == "W002")
        .map(|d| {
            let method = d
                .coordinator
                .rsplit('.')
                .next()
                .unwrap_or(&d.coordinator)
                .to_string();
            (d.file.clone(), method, d.code)
        })
        .collect();
    let llm_found: BTreeSet<(String, String, &'static str)> = sweep
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.method.clone(), code_of(f.kind)))
        .collect();

    let both = static_found.intersection(&llm_found).count();
    let overlap = WhenOverlap {
        static_only: static_found.len() - both,
        llm_only: llm_found.len() - both,
        both,
    };
    LintReport {
        lint,
        sweep,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_llm::simulated::SimulatedLlm;

    #[test]
    fn overlap_counts_are_consistent() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) { log(\"retry\"); }\n\
                 }\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let mut llm = SimulatedLlm::with_seed(11);
        let report = lint_with_overlap(&project, &mut llm, &LintOptions::default());
        // The static side always sees the uncapped, undelayed loop.
        let static_when = report
            .lint
            .diagnostics
            .iter()
            .filter(|d| d.code == "W001" || d.code == "W002")
            .count();
        assert_eq!(static_when, 2);
        assert_eq!(
            report.overlap.static_only + report.overlap.both,
            static_when,
            "every static WHEN finding is either shared or static-only"
        );
        assert_eq!(
            report.overlap.llm_only + report.overlap.both,
            report.sweep.findings.len(),
            "every LLM finding is either shared or LLM-only"
        );
    }

    #[test]
    fn overlap_is_deterministic_for_a_fixed_seed() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let one = lint_with_overlap(
            &project,
            &mut SimulatedLlm::with_seed(7),
            &LintOptions::default(),
        );
        let two = lint_with_overlap(
            &project,
            &mut SimulatedLlm::with_seed(7),
            &LintOptions::default(),
        );
        assert_eq!(one.overlap, two.overlap);
        assert_eq!(one.lint.diagnostics, two.lint.diagnostics);
    }

    #[test]
    fn cross_check_tiers_cover_every_finding_exactly_once() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) { log(\"retry\"); }\n\
                 }\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let mut llm = SimulatedLlm::with_seed(0);
        let report = lint_with_overlap(&project, &mut llm, &LintOptions::default());
        let check = cross_check(&report.lint, &report.sweep);

        assert_eq!(check.total(), check.cells.len());
        assert_eq!(
            check.both, report.overlap.both,
            "WHEN agreement matches the overlap accounting"
        );
        // The uncapped, undelayed loop yields static W001 + W002 cells.
        assert!(check
            .cells
            .iter()
            .any(|c| c.code == "W001" && c.method == "run"));
        assert!(check
            .cells
            .iter()
            .any(|c| c.code == "W002" && c.method == "run"));
        // Cells are sorted, so the render is canonical.
        let mut sorted = check.cells.clone();
        sorted.sort();
        assert_eq!(check.cells, sorted);
    }

    #[test]
    fn cross_check_matrix_and_hints_are_deterministic() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let renders: Vec<String> = (0..2)
            .map(|_| {
                let report = lint_with_overlap(
                    &project,
                    &mut SimulatedLlm::with_seed(0),
                    &LintOptions::default(),
                );
                cross_check(&report.lint, &report.sweep).render_text()
            })
            .collect();
        assert_eq!(renders[0], renders[1]);
        assert!(renders[0].starts_with("cross-check agreement matrix:\n"));
        assert!(renders[0].contains("tiers: "));
    }

    #[test]
    fn non_when_codes_are_always_static_only() {
        // A bounded-by-one loop produces W006 (and the missing-delay
        // W002); W006 must never land in a both-agree tier because the
        // sweep has no question that could express it.
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 1; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let report = lint_with_overlap(
            &project,
            &mut SimulatedLlm::with_seed(0),
            &LintOptions::default(),
        );
        let check = cross_check(&report.lint, &report.sweep);
        let w006: Vec<_> = check.cells.iter().filter(|c| c.code == "W006").collect();
        assert!(!w006.is_empty(), "bound of one should produce W006");
        assert!(w006.iter().all(|c| c.tier == Tier::StaticOnly));
        // And every disagreement cell's method shows up in the hint set.
        let hints = check.disagreement_methods();
        assert!(hints.contains("run"));
    }
}
