//! The `wasabi lint` workflow: interprocedural static diagnostics plus
//! Figure-4-style overlap accounting between the query-based checkers and
//! the LLM static sweep.
//!
//! The paper's Figure 4 compares what CodeQL-style queries and the
//! LLM-based checker each find, and what both find. Here the query side is
//! [`lint_project`]'s WHEN diagnostics (`W001` missing cap, `W002` missing
//! delay) and the LLM side is the sweep's WHEN findings; a finding is
//! *shared* when both techniques flag the same `(file, method, kind)`.

use std::collections::BTreeSet;
use wasabi_analysis::checkers::{lint_project, LintOptions, LintResult};
use wasabi_lang::project::Project;
use wasabi_llm::detector::{sweep_project, LlmSweep, LlmWhenKind};
use wasabi_llm::model::LanguageModel;

/// Overlap counts between the static checkers and the LLM sweep, for WHEN
/// findings only (the codes both techniques can express).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhenOverlap {
    /// WHEN findings only the static checkers report.
    pub static_only: usize,
    /// WHEN findings only the LLM sweep reports.
    pub llm_only: usize,
    /// WHEN findings both techniques report.
    pub both: usize,
}

impl WhenOverlap {
    /// Total distinct WHEN findings across both techniques.
    pub fn total(&self) -> usize {
        self.static_only + self.llm_only + self.both
    }
}

/// Everything `wasabi lint` computes for one project.
#[derive(Debug)]
pub struct LintReport {
    /// The static lint result (sorted diagnostics + per-loop facts).
    pub lint: LintResult,
    /// The LLM sweep the overlap was computed against.
    pub sweep: LlmSweep,
    /// CodeQL-vs-LLM WHEN overlap.
    pub overlap: WhenOverlap,
}

/// The diagnostic code an LLM WHEN finding corresponds to.
fn code_of(kind: LlmWhenKind) -> &'static str {
    match kind {
        LlmWhenKind::MissingCap => "W001",
        LlmWhenKind::MissingDelay => "W002",
    }
}

/// Runs the static checkers and the LLM sweep and accounts their overlap.
pub fn lint_with_overlap(
    project: &Project,
    llm: &mut dyn LanguageModel,
    options: &LintOptions,
) -> LintReport {
    let lint = lint_project(project, options);
    let sweep = sweep_project(project, llm);

    let static_found: BTreeSet<(String, String, &'static str)> = lint
        .diagnostics
        .iter()
        .filter(|d| d.code == "W001" || d.code == "W002")
        .map(|d| {
            let method = d
                .coordinator
                .rsplit('.')
                .next()
                .unwrap_or(&d.coordinator)
                .to_string();
            (d.file.clone(), method, d.code)
        })
        .collect();
    let llm_found: BTreeSet<(String, String, &'static str)> = sweep
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.method.clone(), code_of(f.kind)))
        .collect();

    let both = static_found.intersection(&llm_found).count();
    let overlap = WhenOverlap {
        static_only: static_found.len() - both,
        llm_only: llm_found.len() - both,
        both,
    };
    LintReport {
        lint,
        sweep,
        overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_llm::simulated::SimulatedLlm;

    #[test]
    fn overlap_counts_are_consistent() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) { log(\"retry\"); }\n\
                 }\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let mut llm = SimulatedLlm::with_seed(11);
        let report = lint_with_overlap(&project, &mut llm, &LintOptions::default());
        // The static side always sees the uncapped, undelayed loop.
        let static_when = report
            .lint
            .diagnostics
            .iter()
            .filter(|d| d.code == "W001" || d.code == "W002")
            .count();
        assert_eq!(static_when, 2);
        assert_eq!(
            report.overlap.static_only + report.overlap.both,
            static_when,
            "every static WHEN finding is either shared or static-only"
        );
        assert_eq!(
            report.overlap.llm_only + report.overlap.both,
            report.sweep.findings.len(),
            "every LLM finding is either shared or LLM-only"
        );
    }

    #[test]
    fn overlap_is_deterministic_for_a_fixed_seed() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("t.jav", src)]).unwrap();
        let one = lint_with_overlap(
            &project,
            &mut SimulatedLlm::with_seed(7),
            &LintOptions::default(),
        );
        let two = lint_with_overlap(
            &project,
            &mut SimulatedLlm::with_seed(7),
            &LintOptions::default(),
        );
        assert_eq!(one.overlap, two.overlap);
        assert_eq!(one.lint.diagnostics, two.lint.diagnostics);
    }
}
