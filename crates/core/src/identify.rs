//! Retry-location identification: the union of the control-flow query and
//! the LLM technique (§3.1.1).

use wasabi_analysis::loops::{
    all_retry_locations, LoopQueryOptions, Mechanism, RetryLocation, RetryLoop,
};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_lang::ast::Item;
use wasabi_lang::project::{FileId, MethodId, Project};
use wasabi_llm::detector::{sweep_project, LlmSweep};
use wasabi_llm::model::LanguageModel;
use std::collections::BTreeMap;

/// Everything the identification stage produces.
#[derive(Debug, Clone)]
pub struct Identified {
    /// Retry loops found by the control-flow + keyword query.
    pub codeql_loops: Vec<RetryLoop>,
    /// The LLM sweep (file reports, WHEN findings, usage).
    pub llm_sweep: LlmSweep,
    /// LLM-flagged coordinator methods resolved to classes.
    pub llm_coordinators: Vec<(FileId, MethodId)>,
    /// The union of retry locations from both techniques, deduplicated by
    /// (site, exception); loop-backed locations win ties.
    pub locations: Vec<RetryLocation>,
}

/// Runs both identification techniques and merges their locations.
pub fn identify(project: &Project, llm: &mut dyn LanguageModel) -> Identified {
    let index = ProjectIndex::build(project);

    // Technique 1: control-flow analysis + naming conventions.
    let with_locations = all_retry_locations(&index, &LoopQueryOptions::default());
    let codeql_loops: Vec<RetryLoop> = with_locations.iter().map(|(l, _)| l.clone()).collect();
    let mut merged: BTreeMap<(wasabi_lang::project::CallSite, String), RetryLocation> =
        BTreeMap::new();
    for (_, locations) in &with_locations {
        for location in locations {
            merged.insert((location.site, location.exception.clone()), location.clone());
        }
    }

    // Technique 2: LLM identification, then a follow-up query for callees
    // and their exceptions.
    let llm_sweep = sweep_project(project, llm);
    let mut llm_coordinators = Vec::new();
    for report in &llm_sweep.retry_files {
        if report.poll_excluded {
            continue;
        }
        for method_name in &report.retry_methods {
            if method_name.starts_with('<') {
                continue;
            }
            // Resolve the named method within the flagged file.
            let file = &project.files[report.file.0 as usize];
            for item in &file.items {
                let Item::Class(class) = item else { continue };
                let Some(decl) = class.methods.iter().find(|m| m.name == *method_name) else {
                    continue;
                };
                llm_coordinators.push((
                    report.file,
                    MethodId::new(&class.name, method_name),
                ));
                for (site, callee, throws) in index.invoked_with_throws(&class.name, decl) {
                    for exception in throws {
                        merged
                            .entry((site, exception.clone()))
                            .or_insert_with(|| RetryLocation {
                                site,
                                coordinator: MethodId::new(&class.name, method_name),
                                retried: callee.clone(),
                                exception,
                                mechanism: Mechanism::LlmFlagged,
                            });
                    }
                }
            }
        }
    }

    Identified {
        codeql_loops,
        llm_sweep,
        llm_coordinators,
        locations: merged.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_llm::simulated::SimulatedLlm;

    #[test]
    fn merges_loop_and_llm_locations() {
        // One keyword loop (both techniques) and one queue (LLM only).
        let loop_src = "exception ConnectException;\n\
             class Client {\n\
               method connect() throws ConnectException { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.connect(); } catch (ConnectException e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let queue_src = "exception TaskException;\n\
             class Item { method executeItem() throws TaskException { return 1; } }\n\
             class Proc {\n\
               field q;\n\
               method init() { this.q = queue(); }\n\
               method drain() {\n\
                 while (!this.q.isEmpty()) {\n\
                   var item = this.q.take();\n\
                   try { item.executeItem(); } catch (TaskException e) { this.q.put(item); }\n\
                 }\n\
                 return \"done\";\n\
               }\n\
             }";
        let project = Project::compile(
            "t",
            vec![("client.jav", loop_src), ("proc.jav", queue_src)],
        )
        .unwrap();
        let mut llm = SimulatedLlm::with_seed(11);
        let identified = identify(&project, &mut llm);
        assert_eq!(identified.codeql_loops.len(), 1);
        let mechs: Vec<Mechanism> = identified.locations.iter().map(|l| l.mechanism).collect();
        assert!(mechs.contains(&Mechanism::LlmFlagged), "queue location found");
        assert!(
            mechs.iter().any(|m| matches!(m, Mechanism::Loop(_))),
            "loop location found"
        );
        let coords: Vec<String> = identified
            .llm_coordinators
            .iter()
            .map(|(_, m)| m.to_string())
            .collect();
        assert!(coords.contains(&"Proc.drain".to_string()), "{coords:?}");
    }

    #[test]
    fn loop_locations_win_dedup_ties() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 // retry op a few times\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(5); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let project = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let mut llm = SimulatedLlm::with_seed(11);
        let identified = identify(&project, &mut llm);
        // The same (site, exception) pair is found by both techniques but
        // appears once, with the loop mechanism.
        assert_eq!(identified.locations.len(), 1);
        assert!(matches!(identified.locations[0].mechanism, Mechanism::Loop(_)));
    }
}
