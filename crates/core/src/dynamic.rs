//! The dynamic testing workflow (§3.1, Figure 1): config restoration →
//! coverage profiling → planning → fault injection → oracles → dedup.
//!
//! Campaign execution (step 4) is delegated to `wasabi-engine`: serial
//! execution is simply `jobs = 1` through the engine's worker pool, and
//! any other `jobs` value produces byte-identical reports thanks to the
//! engine's key-ordered merge.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::Duration;
use wasabi_analysis::loops::RetryLocation;
use wasabi_engine::campaign::{
    run_campaign, CampaignOptions, CampaignResult, CampaignStats, ChaosConfig, RetryPolicy,
    RunOutcome, RunRecord,
};
use wasabi_engine::metrics::CampaignMetrics;
use wasabi_engine::observer::{outcome_kind, EngineEvent, EngineObserver, NullObserver};
use wasabi_lang::project::Project;
use wasabi_oracles::dedup::{dedup_reports, DistinctBug};
use wasabi_oracles::judge::{OracleConfig, OracleReport};
use wasabi_planner::adaptive::{self, ProbeSignal};
use wasabi_planner::configfix::{restore_retry_configs, ConfigRestoration};
use wasabi_planner::coverage::{profile_coverage_jobs, CoverageProfile};
use wasabi_planner::plan::{expand_plan, naive_run_count, plan, InjectionRun, RunKey, TestPlan};
use wasabi_planner::profile_cache::{self, ProfileCacheOptions};
use wasabi_vm::runner::RunOptions;
use wasabi_vm::trace::TestOutcome;

/// Options for the dynamic workflow.
#[derive(Debug, Clone)]
pub struct DynamicOptions {
    /// Injection budgets; the paper uses K = 1 and K = 100.
    pub ks: Vec<u32>,
    /// Per-test run options (limits; pinned configs are filled in by the
    /// restoration pass).
    pub run_options: RunOptions,
    /// Oracle thresholds.
    pub oracle: OracleConfig,
    /// Campaign worker count; 1 (the default) runs serially.
    pub jobs: usize,
    /// Optional wall-clock budget per injected run, in milliseconds. Runs
    /// exceeding it are cancelled and counted in
    /// [`DynamicStats::timed_out`].
    pub run_budget_ms: Option<u64>,
    /// Retry policy for transient run failures (crashes, timeouts); see
    /// [`RetryPolicy`]. The default retries twice with jittered backoff.
    pub retry: RetryPolicy,
    /// Journal completed runs to this path for checkpoint/resume.
    pub journal: Option<PathBuf>,
    /// Records recovered from a previous journal (`--resume`); their keys
    /// are skipped and the old records merged back in key order.
    pub resume_records: Vec<RunRecord>,
    /// Chaos self-test configuration: seeded, deterministic fault
    /// injection into the engine itself (panics/delays in a fraction of
    /// runs). Used by the CI chaos smoke; `None` in normal operation.
    pub chaos: Option<ChaosConfig>,
    /// Capture per-run host timings (see
    /// [`CampaignOptions::capture_timing`]). On by default; callers that
    /// do not record traces turn it off to keep the hot loop clock-free.
    pub capture_timing: bool,
    /// Bounded-memory streaming (see [`CampaignOptions::stream`]):
    /// finished records spill to the journal and drop from RAM, and the
    /// report phase re-reads the journal instead of a record vector.
    /// Requires `journal` to actually bound memory; reports stay
    /// byte-identical (the re-read is keyed and merged in key order).
    pub stream: bool,
    /// Execute only the runs whose *sorted-key index* falls in
    /// `[start, end)` of the full plan — a shard child's slice. The plan
    /// itself is derived identically in every process (same sources, same
    /// expansion, same sort), so `--shard-range` alone pins the slice.
    pub shard_range: Option<(usize, usize)>,
    /// Coverage-guided adaptive execution (`--adaptive`): keep the fixed
    /// grid's `{test, site, exception}` pairing but run it in two waves —
    /// a max-K probe per group, then the remaining K values only where
    /// the probe was inconclusive and not already explained by an
    /// equivalence class seen earlier in key order (see
    /// [`wasabi_planner::adaptive`]). Mutually exclusive with
    /// `shard_range` (shard slices index the *fixed* grid; the CLI
    /// refuses the combination and this module ignores `adaptive` when a
    /// shard range is set).
    pub adaptive: bool,
    /// Coordinator method names the static↔LLM cross-check put in a
    /// disagreement tier (`wasabi lint --cross-check`). Retry sites
    /// anchored in these methods get a large probe-priority boost in the
    /// adaptive campaign (see
    /// [`wasabi_planner::adaptive::boost_disagreement_sites`]). Pure
    /// scheduling, never report-bearing; ignored without `adaptive`.
    pub disagreement_hints: BTreeSet<String>,
    /// Persist the coverage profile keyed by source digest
    /// (`--profile-cache`); repeat campaigns over unchanged sources skip
    /// the profiling pass. See [`wasabi_planner::profile_cache`].
    pub profile_cache: Option<ProfileCacheOptions>,
}

impl Default for DynamicOptions {
    fn default() -> Self {
        DynamicOptions {
            ks: vec![1, 100],
            run_options: RunOptions::default(),
            oracle: OracleConfig::default(),
            jobs: 1,
            run_budget_ms: None,
            retry: RetryPolicy::default(),
            journal: None,
            resume_records: Vec::new(),
            chaos: None,
            capture_timing: true,
            stream: false,
            shard_range: None,
            adaptive: false,
            disagreement_hints: BTreeSet::new(),
            profile_cache: None,
        }
    }
}

/// How the adaptive planner spent (and saved) its run budget; `None` in
/// [`DynamicResult::adaptive`] when the campaign ran the fixed grid.
/// Never report-bearing: the JSON report's `runs_planned` is the executed
/// count, and everything else here goes to stderr/bench output only.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveSummary {
    /// Wave-1 runs (one max-K probe per `{test, site, exception}` group).
    pub probe_runs: usize,
    /// Wave-2 candidates before selection (the fixed grid minus probes).
    pub widen_candidates: usize,
    /// Wave-2 runs actually executed.
    pub widen_executed: usize,
    /// Candidates skipped because their probe was conclusive.
    pub skipped_conclusive: usize,
    /// Candidates skipped as duplicates of an already-probed
    /// `(structure, fingerprint)` equivalence class.
    pub skipped_dedup: usize,
    /// Distinct inconclusive equivalence classes observed.
    pub classes: usize,
}

impl AdaptiveSummary {
    /// Total runs the adaptive campaign executed (the report's
    /// `runs_planned` when adaptive is on).
    pub fn executed(&self) -> usize {
        self.probe_runs + self.widen_executed
    }
}

/// Aggregate statistics over all injected runs (feeds §4.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicStats {
    /// Total injected test runs executed.
    pub runs_executed: usize,
    /// Runs that crashed by re-throwing the injected exception (filtered by
    /// the different-exception oracle as correct give-up behaviour).
    pub rethrow_filtered: usize,
    /// Runs where the injected exception escaped untouched (the location
    /// was not actually a retry trigger — analysis inaccuracy, §3.1.1).
    pub not_a_trigger: usize,
    /// Runs whose test finished with a non-pass outcome (assertion
    /// failure, escaped exception, exhausted limits). Engine-level panics
    /// are counted separately in [`CampaignStats::crashed`].
    pub crashed: usize,
    /// Runs cancelled by the per-run wall-clock budget.
    pub timed_out: usize,
    /// Total virtual milliseconds across injected runs.
    pub virtual_ms: u64,
}

/// The result of the dynamic workflow on one project.
#[derive(Debug)]
pub struct DynamicResult {
    /// Config keys pinned back to defaults.
    pub restoration: ConfigRestoration,
    /// The coverage profile from the profiling pass.
    pub profile: CoverageProfile,
    /// The injection plan.
    pub plan: TestPlan,
    /// Number of injected runs with planning.
    pub runs_planned: usize,
    /// Number of runs a naive (unplanned) campaign would need.
    pub runs_naive: usize,
    /// Raw oracle reports from all runs.
    pub reports: Vec<OracleReport>,
    /// Distinct bugs after deduplication.
    pub bugs: Vec<DistinctBug>,
    /// Run statistics.
    pub stats: DynamicStats,
    /// Structure keys (see [`RetryLocation::structure_key`]) covered by the
    /// plan — the Table 5 "tested" measure.
    pub tested_structures: BTreeSet<String>,
    /// The engine's campaign statistics (includes per-worker utilization).
    pub campaign: CampaignStats,
    /// The engine's per-run distributions (deterministic histograms plus
    /// host timings; see [`CampaignMetrics`]).
    pub campaign_metrics: CampaignMetrics,
    /// Adaptive-planner accounting, when [`DynamicOptions::adaptive`] was
    /// in effect.
    pub adaptive: Option<AdaptiveSummary>,
}

/// Runs the full dynamic workflow without progress reporting.
pub fn run_dynamic(
    project: &Project,
    locations: &[RetryLocation],
    options: &DynamicOptions,
) -> DynamicResult {
    run_dynamic_with_observer(project, locations, options, &mut NullObserver)
}

/// The front half of the pipeline — restore, profile, plan — shared by a
/// normal campaign, a shard parent (which partitions the sorted runs and
/// never executes them itself), and `wasabi merge` (which re-derives the
/// expected key sequence from the same sources).
pub struct PreparedCampaign {
    /// Config keys pinned back to defaults.
    pub restoration: ConfigRestoration,
    /// Run options with the pinned configs applied.
    pub run_options: RunOptions,
    /// The coverage profile.
    pub profile: CoverageProfile,
    /// The `{test, location}` plan.
    pub test_plan: TestPlan,
    /// The expanded runs, **sorted by key** — index `i` here is the run
    /// index shard ranges speak about.
    pub runs: Vec<wasabi_planner::plan::InjectionRun>,
    /// What a naive (unplanned) campaign would cost.
    pub runs_naive: usize,
}

/// Restores configs, profiles coverage, and expands the key-sorted plan,
/// bracketing each step with phase events.
pub fn prepare_campaign(
    project: &Project,
    locations: &[RetryLocation],
    options: &DynamicOptions,
    observer: &mut dyn EngineObserver,
) -> PreparedCampaign {
    let phase = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseStarted { name });
        name
    };
    let close = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseFinished { name });
    };

    // 1. Restore default retry configurations (§3.1.4).
    let name = phase("restore", observer);
    let restoration = restore_retry_configs(project);
    let mut run_options = options.run_options.clone();
    run_options.pinned_configs = restoration.pinned.clone();
    close(name, observer);

    // 2. Profile which test covers which retry location. Baseline runs
    //    are independent, so the profile parallelizes across the same
    //    worker count as the campaign (byte-identical merge; see
    //    `profile_coverage_jobs`).
    //    When a profile cache is configured, a fresh (non-bypassed,
    //    non-stale) entry for this digest + location fingerprint skips
    //    the pass entirely; a miss re-profiles and writes back.
    let name = phase("profile", observer);
    let profile = match &options.profile_cache {
        Some(cache) => {
            let fp = profile_cache::locations_fingerprint(locations);
            match profile_cache::load(cache, fp) {
                Some(profile) => profile,
                None => {
                    let profile =
                        profile_coverage_jobs(project, locations, &run_options, options.jobs);
                    if let Err(err) = profile_cache::store(cache, fp, &profile) {
                        // Degrade, don't die: the profile is correct, only
                        // the next campaign's warm start is lost.
                        eprintln!("[core] profile cache write failed: {err}");
                    }
                    profile
                }
            }
        }
        None => profile_coverage_jobs(project, locations, &run_options, options.jobs),
    };
    close(name, observer);

    // 3. Plan one {test, location} pair per coverable location, and pin
    //    the key order here — shard ranges and the merge walk this exact
    //    sequence (the engine re-sorts identically anyway).
    let name = phase("plan", observer);
    let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
    let test_plan = plan(&profile, &all_sites);
    let mut runs = expand_plan(&test_plan, locations, &options.ks);
    runs.sort_by_key(|run| run.key());
    let runs_naive = naive_run_count(&profile, locations, &options.ks);
    close(name, observer);

    PreparedCampaign {
        restoration,
        run_options,
        profile,
        test_plan,
        runs,
        runs_naive,
    }
}

/// Runs the full dynamic workflow, streaming campaign progress into
/// `observer` (e.g. [`wasabi_engine::StderrProgress`]).
pub fn run_dynamic_with_observer(
    project: &Project,
    locations: &[RetryLocation],
    options: &DynamicOptions,
    observer: &mut dyn EngineObserver,
) -> DynamicResult {
    // Each pipeline step is bracketed by phase events so a metrics
    // observer (`--trace-out`, `wasabi bench`) can attribute wall time to
    // phases; the phase sum tiles the whole pipeline.
    let phase = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseStarted { name });
        name
    };
    let close = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseFinished { name });
    };

    let prepared = prepare_campaign(project, locations, options, observer);
    let PreparedCampaign {
        restoration,
        run_options,
        profile,
        test_plan,
        mut runs,
        runs_naive,
    } = prepared;

    // A shard child executes only its slice of the sorted plan; everyone
    // derives the identical full plan first, so `[start, end)` means the
    // same runs in every process.
    if let Some((start, end)) = options.shard_range {
        let end = end.min(runs.len());
        let start = start.min(end);
        runs = runs[start..end].to_vec();
    }

    // 4. Hand the campaign to the engine: workers, isolation, budget, and
    //    the deterministic key-ordered merge all live there.
    let campaign_options = CampaignOptions {
        jobs: options.jobs,
        run_options,
        oracle: options.oracle,
        run_budget: options.run_budget_ms.map(Duration::from_millis),
        retry: options.retry.clone(),
        journal: options.journal.clone(),
        resume: options.resume_records.clone(),
        chaos: options.chaos.clone(),
        capture_timing: options.capture_timing,
        stream: options.stream,
        ..CampaignOptions::default()
    };
    let name = phase("run", observer);
    let (campaign, adaptive_summary) = if options.adaptive && options.shard_range.is_none() {
        let (campaign, summary) = run_adaptive_campaign(
            project,
            &runs,
            locations,
            &options.ks,
            &campaign_options,
            &options.resume_records,
            &options.disagreement_hints,
            observer,
        );
        (campaign, Some(summary))
    } else {
        (
            run_campaign(project, &runs, &campaign_options, observer),
            None,
        )
    };
    close(name, observer);

    let name = phase("report", observer);
    let tested_structures: BTreeSet<String> = runs
        .iter()
        .map(|run| run.spec.location.structure_key())
        .collect();
    let stats = DynamicStats {
        runs_executed: campaign.stats.runs_total,
        rethrow_filtered: campaign.stats.rethrow_filtered,
        not_a_trigger: campaign.stats.not_a_trigger,
        crashed: campaign.stats.failed,
        timed_out: campaign.stats.timed_out,
        virtual_ms: campaign.stats.virtual_ms,
    };
    // Collect oracle reports. A streaming campaign spilled its records to
    // the journal, so the report phase re-reads it one record at a time —
    // keyed and flattened in key order, which is exactly the order the
    // in-memory path sees, so reports (and therefore dedup and the JSON
    // document) stay byte-identical.
    let mut reports = Vec::new();
    if options.stream {
        let mut by_key: std::collections::BTreeMap<_, Vec<OracleReport>> =
            std::collections::BTreeMap::new();
        let mut insert = |record: &RunRecord| {
            if matches!(
                record.outcome,
                RunOutcome::TimedOut | RunOutcome::Crashed { .. }
            ) {
                return;
            }
            by_key
                .entry(record.key.clone())
                .or_insert_with(|| record.reports.clone());
        };
        // First-wins across the same sources the engine merged: resumed
        // records, spill-failure leftovers, then the journal itself.
        for record in &options.resume_records {
            insert(record);
        }
        for record in &campaign.records {
            insert(record);
        }
        if let Some(path) = &options.journal {
            let stream_journal = wasabi_engine::journal::JournalReader::open(path)
                .and_then(|mut reader| {
                    while let Some(record) = reader.next_record()? {
                        insert(&record);
                    }
                    Ok(())
                });
            if let Err(err) = stream_journal {
                // Degrade, don't die: the campaign completed; worst case
                // the report undercounts bugs from unreadable records.
                eprintln!("[core] streaming report phase: {err}");
            }
        }
        reports = by_key.into_values().flatten().collect();
    } else {
        for record in &campaign.records {
            if matches!(
                record.outcome,
                RunOutcome::TimedOut | RunOutcome::Crashed { .. }
            ) {
                continue;
            }
            reports.extend(record.reports.iter().cloned());
        }
    }

    let bugs = dedup_reports(reports.clone());
    close(name, observer);
    DynamicResult {
        restoration,
        profile,
        // Adaptive mode reports the runs it *executed* (probe + selected
        // widen), which is what the fixed-vs-adaptive budget comparison
        // measures; the fixed grid reports its (possibly sharded) length.
        runs_planned: adaptive_summary.map_or(runs.len(), |s| s.executed()),
        runs_naive,
        plan: test_plan,
        reports,
        bugs,
        stats,
        tested_structures,
        campaign: campaign.stats,
        campaign_metrics: campaign.metrics,
        adaptive: adaptive_summary,
    }
}

/// Converts a completed engine record into the planner's probe signal —
/// the feedback that drives widen-wave selection.
fn probe_signal(record: &RunRecord) -> ProbeSignal {
    let crash_detail = match &record.outcome {
        RunOutcome::Completed(TestOutcome::ExceptionEscaped { exc }) => exc.crash_key(),
        RunOutcome::Completed(TestOutcome::AssertionFailed { message })
        | RunOutcome::Completed(TestOutcome::VmFault { message }) => message.clone(),
        RunOutcome::Crashed { message } => message.clone(),
        _ => String::new(),
    };
    ProbeSignal {
        outcome_kind: outcome_kind(&record.outcome).to_string(),
        crash_detail,
        rethrow_filtered: record.rethrow_filtered,
        not_a_trigger: record.not_a_trigger,
        quarantined: record.quarantined,
        injections: record.injections,
        reports: record
            .reports
            .iter()
            .map(|r| (r.kind.to_string(), r.dedup_key.clone()))
            .collect(),
    }
}

/// Per-wave observer shim: collects `RunRecorded` feedback into the
/// signal registry (re-merged by key — arrival order is
/// scheduling-dependent) and swallows each wave's `Finished` event so the
/// caller can emit a single merged one.
struct AdaptiveWaveObserver<'a> {
    inner: &'a mut dyn EngineObserver,
    signals: &'a mut BTreeMap<RunKey, ProbeSignal>,
}

impl EngineObserver for AdaptiveWaveObserver<'_> {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        match event {
            EngineEvent::RunRecorded { record, .. } => {
                self.signals
                    .insert(record.key.clone(), probe_signal(record));
                self.inner.on_event(event);
            }
            EngineEvent::Finished { .. } => {}
            _ => self.inner.on_event(event),
        }
    }
}

/// Elementwise merge of two waves' campaign statistics into one
/// campaign's worth: counters add, worker utilization adds slot-wise,
/// peaks take the max.
fn merge_stats(first: CampaignStats, second: &CampaignStats) -> CampaignStats {
    let mut stats = first;
    stats.runs_total += second.runs_total;
    stats.completed += second.completed;
    stats.timed_out += second.timed_out;
    stats.failed += second.failed;
    stats.crashed += second.crashed;
    stats.retried += second.retried;
    stats.quarantined += second.quarantined;
    stats.rethrow_filtered += second.rethrow_filtered;
    stats.not_a_trigger += second.not_a_trigger;
    stats.reports += second.reports;
    stats.injections += second.injections;
    stats.virtual_ms += second.virtual_ms;
    stats.steps += second.steps;
    stats.jobs = stats.jobs.max(second.jobs);
    if stats.worker_runs.len() < second.worker_runs.len() {
        stats.worker_runs.resize(second.worker_runs.len(), 0);
    }
    for (slot, runs) in second.worker_runs.iter().enumerate() {
        stats.worker_runs[slot] += runs;
    }
    stats.supervisor_runs += second.supervisor_runs;
    stats.workers_lost += second.workers_lost;
    stats.resumed += second.resumed;
    stats.wall_ms += second.wall_ms;
    stats.peak_resident_records = stats.peak_resident_records.max(second.peak_resident_records);
    stats
}

/// Executes the adaptive two-wave campaign (see
/// [`wasabi_planner::adaptive`] for the selection semantics) and merges
/// the waves into one campaign result: records re-sorted by key, stats
/// added elementwise, metrics histogram-merged, and exactly one
/// `Finished` event emitted with the merged aggregates.
///
/// Resume records are split by K: probe-wave records (`k == probe_k`)
/// prefill wave 1 *and* feed the signal registry directly — prefilled
/// records never re-execute, so no `RunRecorded` event ever fires for
/// them — while the rest prefill wave 2 (keys outside the selected widen
/// set are ignored by the engine, exactly like any other stale resume
/// key). Since resumed records are byte-identical to the executed runs
/// they replace, the widen selection — and therefore the report — is
/// byte-identical across a resume split.
#[allow(clippy::too_many_arguments)]
fn run_adaptive_campaign(
    project: &Project,
    runs: &[InjectionRun],
    locations: &[RetryLocation],
    ks: &[u32],
    base: &CampaignOptions,
    resume: &[RunRecord],
    hints: &BTreeSet<String>,
    observer: &mut dyn EngineObserver,
) -> (CampaignResult, AdaptiveSummary) {
    let kmax = adaptive::probe_k(ks);
    let plan = adaptive::split_waves(runs.to_vec(), kmax);
    let mut sites = adaptive::site_priorities(locations);
    adaptive::boost_disagreement_sites(&mut sites, locations, hints);
    let structures = adaptive::site_structures(locations);

    let mut signals: BTreeMap<RunKey, ProbeSignal> = BTreeMap::new();
    let mut probe_resume = Vec::new();
    let mut widen_resume = Vec::new();
    for record in resume {
        if record.key.k == kmax {
            signals.insert(record.key.clone(), probe_signal(record));
            probe_resume.push(record.clone());
        } else {
            widen_resume.push(record.clone());
        }
    }

    // Wave 1: probe every group at max K, hot sites (most catch-paths)
    // first. Both waves share the journal path (`Journal::open` appends),
    // so checkpoint/resume and the streaming report phase see one
    // campaign.
    let mut probe_options = base.clone();
    probe_options.resume = probe_resume;
    probe_options.schedule_priority = Some(adaptive::run_priorities(&plan.probe, &sites));
    let probe_runs = plan.probe.len();
    let wave1 = {
        let mut wave = AdaptiveWaveObserver {
            inner: observer,
            signals: &mut signals,
        };
        run_campaign(project, &plan.probe, &probe_options, &mut wave)
    };

    // Wave 2: the surviving widen candidates.
    let widen_candidates = plan.widen.len();
    let selection = adaptive::select_widen_runs(plan.widen, kmax, &signals, &structures);
    let mut widen_options = base.clone();
    widen_options.resume = widen_resume;
    widen_options.schedule_priority = Some(adaptive::run_priorities(&selection.runs, &sites));
    let wave2 = {
        let mut wave = AdaptiveWaveObserver {
            inner: observer,
            signals: &mut signals,
        };
        run_campaign(project, &selection.runs, &widen_options, &mut wave)
    };

    let mut records = wave1.records;
    records.extend(wave2.records);
    records.sort_by(|a, b| a.key.cmp(&b.key));
    let stats = merge_stats(wave1.stats, &wave2.stats);
    let mut metrics = wave1.metrics;
    metrics.merge_campaign(&wave2.metrics);
    observer.on_event(&EngineEvent::Finished {
        stats: &stats,
        metrics: &metrics,
    });

    let summary = AdaptiveSummary {
        probe_runs,
        widen_candidates,
        widen_executed: selection.runs.len(),
        skipped_conclusive: selection.skipped_conclusive,
        skipped_dedup: selection.skipped_dedup,
        classes: selection.classes,
    };
    (
        CampaignResult {
            records,
            stats,
            metrics,
        },
        summary,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::identify;
    use wasabi_llm::simulated::SimulatedLlm;
    use wasabi_oracles::judge::BugKind;

    fn project() -> Project {
        let src = "exception ConnectException;\nexception SocketException;\n\
             class Flaky {\n\
               method op() throws ConnectException { return \"ok\"; }\n\
               // Uncapped, undelayed retry: both WHEN bugs.\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
                 }\n\
               }\n\
               test tFlaky() { assert(this.run() == \"ok\"); }\n\
             }\n\
             class Solid {\n\
               field maxAttempts = 4;\n\
               method fetch() throws SocketException { return \"ok\"; }\n\
               method run() {\n\
                 for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
                   try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
                 }\n\
                 throw new SocketException(\"giving up\");\n\
               }\n\
               test tSolid() { assert(this.run() == \"ok\"); }\n\
             }";
        Project::compile("t", vec![("t.jav", src)]).unwrap()
    }

    #[test]
    fn end_to_end_dynamic_workflow_finds_when_bugs() {
        let p = project();
        let mut llm = SimulatedLlm::with_seed(5);
        let identified = identify(&p, &mut llm);
        assert!(identified.locations.len() >= 2);
        let result = run_dynamic(&p, &identified.locations, &DynamicOptions::default());
        assert!(result.runs_planned >= 4, "2 locations × 2 K values");
        let kinds: Vec<BugKind> = result.bugs.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BugKind::MissingCap), "kinds: {kinds:?}");
        assert!(kinds.contains(&BugKind::MissingDelay));
        // The Solid structure is clean: its give-up rethrow is filtered.
        assert!(result.stats.rethrow_filtered >= 1);
        assert_eq!(result.tested_structures.len(), 2);
        // No bug attributed to the clean structure.
        for bug in &result.bugs {
            assert_eq!(
                bug.representative().location.coordinator.class,
                "Flaky",
                "only the flaky structure is buggy"
            );
        }
    }

    #[test]
    fn adaptive_matches_fixed_grid_recall_with_fewer_runs() {
        let p = project();
        let mut llm = SimulatedLlm::with_seed(5);
        let identified = identify(&p, &mut llm);
        let fixed = run_dynamic(&p, &identified.locations, &DynamicOptions::default());
        let adaptive = run_dynamic(
            &p,
            &identified.locations,
            &DynamicOptions {
                adaptive: true,
                ..DynamicOptions::default()
            },
        );
        let bug_keys = |r: &DynamicResult| -> BTreeSet<(BugKind, String)> {
            r.bugs.iter().map(|b| (b.kind, b.key.clone())).collect()
        };
        assert_eq!(
            bug_keys(&fixed),
            bug_keys(&adaptive),
            "adaptive must keep fixed-grid recall"
        );
        assert!(
            adaptive.runs_planned < fixed.runs_planned,
            "adaptive {} vs fixed {}",
            adaptive.runs_planned,
            fixed.runs_planned
        );
        let summary = adaptive.adaptive.expect("adaptive accounting");
        assert_eq!(summary.executed(), adaptive.runs_planned);
        assert_eq!(summary.probe_runs + summary.widen_candidates, fixed.runs_planned);
        // Both seeded structures resolve at the probe: the buggy one
        // passes (capped by K) with WHEN reports, the clean one gives up
        // correctly (rethrow-filtered).
        assert_eq!(summary.skipped_conclusive, summary.widen_candidates);
    }

    #[test]
    fn planning_beats_naive_when_tests_overlap() {
        // Many tests covering the same structure.
        let mut src = String::from(
            "exception E;\n\
             class R {\n\
               method op() throws E { return \"ok\"; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(5); }\n\
                 }\n\
                 throw new E(\"giving up\");\n\
               }\n",
        );
        for i in 0..20 {
            src.push_str(&format!(
                "  test t{i:02}() {{ assert(this.run() == \"ok\"); }}\n"
            ));
        }
        src.push_str("}\n");
        let p = Project::compile("t", vec![("r.jav", src)]).unwrap();
        let mut llm = SimulatedLlm::with_seed(5);
        let identified = identify(&p, &mut llm);
        let result = run_dynamic(&p, &identified.locations, &DynamicOptions::default());
        assert!(result.runs_naive >= 10 * result.runs_planned);
        assert!(result.bugs.is_empty(), "clean structure");
    }
}
