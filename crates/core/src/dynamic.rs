//! The dynamic testing workflow (§3.1, Figure 1): config restoration →
//! coverage profiling → planning → fault injection → oracles → dedup.
//!
//! Campaign execution (step 4) is delegated to `wasabi-engine`: serial
//! execution is simply `jobs = 1` through the engine's worker pool, and
//! any other `jobs` value produces byte-identical reports thanks to the
//! engine's key-ordered merge.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;
use wasabi_analysis::loops::RetryLocation;
use wasabi_engine::campaign::{
    run_campaign, CampaignOptions, CampaignStats, ChaosConfig, RetryPolicy, RunOutcome, RunRecord,
};
use wasabi_engine::metrics::CampaignMetrics;
use wasabi_engine::observer::{EngineEvent, EngineObserver, NullObserver};
use wasabi_lang::project::Project;
use wasabi_oracles::dedup::{dedup_reports, DistinctBug};
use wasabi_oracles::judge::{OracleConfig, OracleReport};
use wasabi_planner::configfix::{restore_retry_configs, ConfigRestoration};
use wasabi_planner::coverage::{profile_coverage_jobs, CoverageProfile};
use wasabi_planner::plan::{expand_plan, naive_run_count, plan, TestPlan};
use wasabi_vm::runner::RunOptions;

/// Options for the dynamic workflow.
#[derive(Debug, Clone)]
pub struct DynamicOptions {
    /// Injection budgets; the paper uses K = 1 and K = 100.
    pub ks: Vec<u32>,
    /// Per-test run options (limits; pinned configs are filled in by the
    /// restoration pass).
    pub run_options: RunOptions,
    /// Oracle thresholds.
    pub oracle: OracleConfig,
    /// Campaign worker count; 1 (the default) runs serially.
    pub jobs: usize,
    /// Optional wall-clock budget per injected run, in milliseconds. Runs
    /// exceeding it are cancelled and counted in
    /// [`DynamicStats::timed_out`].
    pub run_budget_ms: Option<u64>,
    /// Retry policy for transient run failures (crashes, timeouts); see
    /// [`RetryPolicy`]. The default retries twice with jittered backoff.
    pub retry: RetryPolicy,
    /// Journal completed runs to this path for checkpoint/resume.
    pub journal: Option<PathBuf>,
    /// Records recovered from a previous journal (`--resume`); their keys
    /// are skipped and the old records merged back in key order.
    pub resume_records: Vec<RunRecord>,
    /// Chaos self-test configuration: seeded, deterministic fault
    /// injection into the engine itself (panics/delays in a fraction of
    /// runs). Used by the CI chaos smoke; `None` in normal operation.
    pub chaos: Option<ChaosConfig>,
    /// Capture per-run host timings (see
    /// [`CampaignOptions::capture_timing`]). On by default; callers that
    /// do not record traces turn it off to keep the hot loop clock-free.
    pub capture_timing: bool,
    /// Bounded-memory streaming (see [`CampaignOptions::stream`]):
    /// finished records spill to the journal and drop from RAM, and the
    /// report phase re-reads the journal instead of a record vector.
    /// Requires `journal` to actually bound memory; reports stay
    /// byte-identical (the re-read is keyed and merged in key order).
    pub stream: bool,
    /// Execute only the runs whose *sorted-key index* falls in
    /// `[start, end)` of the full plan — a shard child's slice. The plan
    /// itself is derived identically in every process (same sources, same
    /// expansion, same sort), so `--shard-range` alone pins the slice.
    pub shard_range: Option<(usize, usize)>,
}

impl Default for DynamicOptions {
    fn default() -> Self {
        DynamicOptions {
            ks: vec![1, 100],
            run_options: RunOptions::default(),
            oracle: OracleConfig::default(),
            jobs: 1,
            run_budget_ms: None,
            retry: RetryPolicy::default(),
            journal: None,
            resume_records: Vec::new(),
            chaos: None,
            capture_timing: true,
            stream: false,
            shard_range: None,
        }
    }
}

/// Aggregate statistics over all injected runs (feeds §4.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicStats {
    /// Total injected test runs executed.
    pub runs_executed: usize,
    /// Runs that crashed by re-throwing the injected exception (filtered by
    /// the different-exception oracle as correct give-up behaviour).
    pub rethrow_filtered: usize,
    /// Runs where the injected exception escaped untouched (the location
    /// was not actually a retry trigger — analysis inaccuracy, §3.1.1).
    pub not_a_trigger: usize,
    /// Runs whose test finished with a non-pass outcome (assertion
    /// failure, escaped exception, exhausted limits). Engine-level panics
    /// are counted separately in [`CampaignStats::crashed`].
    pub crashed: usize,
    /// Runs cancelled by the per-run wall-clock budget.
    pub timed_out: usize,
    /// Total virtual milliseconds across injected runs.
    pub virtual_ms: u64,
}

/// The result of the dynamic workflow on one project.
#[derive(Debug)]
pub struct DynamicResult {
    /// Config keys pinned back to defaults.
    pub restoration: ConfigRestoration,
    /// The coverage profile from the profiling pass.
    pub profile: CoverageProfile,
    /// The injection plan.
    pub plan: TestPlan,
    /// Number of injected runs with planning.
    pub runs_planned: usize,
    /// Number of runs a naive (unplanned) campaign would need.
    pub runs_naive: usize,
    /// Raw oracle reports from all runs.
    pub reports: Vec<OracleReport>,
    /// Distinct bugs after deduplication.
    pub bugs: Vec<DistinctBug>,
    /// Run statistics.
    pub stats: DynamicStats,
    /// Structure keys (see [`RetryLocation::structure_key`]) covered by the
    /// plan — the Table 5 "tested" measure.
    pub tested_structures: BTreeSet<String>,
    /// The engine's campaign statistics (includes per-worker utilization).
    pub campaign: CampaignStats,
    /// The engine's per-run distributions (deterministic histograms plus
    /// host timings; see [`CampaignMetrics`]).
    pub campaign_metrics: CampaignMetrics,
}

/// Runs the full dynamic workflow without progress reporting.
pub fn run_dynamic(
    project: &Project,
    locations: &[RetryLocation],
    options: &DynamicOptions,
) -> DynamicResult {
    run_dynamic_with_observer(project, locations, options, &mut NullObserver)
}

/// The front half of the pipeline — restore, profile, plan — shared by a
/// normal campaign, a shard parent (which partitions the sorted runs and
/// never executes them itself), and `wasabi merge` (which re-derives the
/// expected key sequence from the same sources).
pub struct PreparedCampaign {
    /// Config keys pinned back to defaults.
    pub restoration: ConfigRestoration,
    /// Run options with the pinned configs applied.
    pub run_options: RunOptions,
    /// The coverage profile.
    pub profile: CoverageProfile,
    /// The `{test, location}` plan.
    pub test_plan: TestPlan,
    /// The expanded runs, **sorted by key** — index `i` here is the run
    /// index shard ranges speak about.
    pub runs: Vec<wasabi_planner::plan::InjectionRun>,
    /// What a naive (unplanned) campaign would cost.
    pub runs_naive: usize,
}

/// Restores configs, profiles coverage, and expands the key-sorted plan,
/// bracketing each step with phase events.
pub fn prepare_campaign(
    project: &Project,
    locations: &[RetryLocation],
    options: &DynamicOptions,
    observer: &mut dyn EngineObserver,
) -> PreparedCampaign {
    let phase = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseStarted { name });
        name
    };
    let close = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseFinished { name });
    };

    // 1. Restore default retry configurations (§3.1.4).
    let name = phase("restore", observer);
    let restoration = restore_retry_configs(project);
    let mut run_options = options.run_options.clone();
    run_options.pinned_configs = restoration.pinned.clone();
    close(name, observer);

    // 2. Profile which test covers which retry location. Baseline runs
    //    are independent, so the profile parallelizes across the same
    //    worker count as the campaign (byte-identical merge; see
    //    `profile_coverage_jobs`).
    let name = phase("profile", observer);
    let profile = profile_coverage_jobs(project, locations, &run_options, options.jobs);
    close(name, observer);

    // 3. Plan one {test, location} pair per coverable location, and pin
    //    the key order here — shard ranges and the merge walk this exact
    //    sequence (the engine re-sorts identically anyway).
    let name = phase("plan", observer);
    let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
    let test_plan = plan(&profile, &all_sites);
    let mut runs = expand_plan(&test_plan, locations, &options.ks);
    runs.sort_by(|a, b| a.key().cmp(&b.key()));
    let runs_naive = naive_run_count(&profile, locations, &options.ks);
    close(name, observer);

    PreparedCampaign {
        restoration,
        run_options,
        profile,
        test_plan,
        runs,
        runs_naive,
    }
}

/// Runs the full dynamic workflow, streaming campaign progress into
/// `observer` (e.g. [`wasabi_engine::StderrProgress`]).
pub fn run_dynamic_with_observer(
    project: &Project,
    locations: &[RetryLocation],
    options: &DynamicOptions,
    observer: &mut dyn EngineObserver,
) -> DynamicResult {
    // Each pipeline step is bracketed by phase events so a metrics
    // observer (`--trace-out`, `wasabi bench`) can attribute wall time to
    // phases; the phase sum tiles the whole pipeline.
    let phase = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseStarted { name });
        name
    };
    let close = |name: &'static str, observer: &mut dyn EngineObserver| {
        observer.on_event(&EngineEvent::PhaseFinished { name });
    };

    let prepared = prepare_campaign(project, locations, options, observer);
    let PreparedCampaign {
        restoration,
        run_options,
        profile,
        test_plan,
        mut runs,
        runs_naive,
    } = prepared;

    // A shard child executes only its slice of the sorted plan; everyone
    // derives the identical full plan first, so `[start, end)` means the
    // same runs in every process.
    if let Some((start, end)) = options.shard_range {
        let end = end.min(runs.len());
        let start = start.min(end);
        runs = runs[start..end].to_vec();
    }

    // 4. Hand the campaign to the engine: workers, isolation, budget, and
    //    the deterministic key-ordered merge all live there.
    let campaign_options = CampaignOptions {
        jobs: options.jobs,
        run_options,
        oracle: options.oracle,
        run_budget: options.run_budget_ms.map(Duration::from_millis),
        retry: options.retry.clone(),
        journal: options.journal.clone(),
        resume: options.resume_records.clone(),
        chaos: options.chaos.clone(),
        capture_timing: options.capture_timing,
        stream: options.stream,
        ..CampaignOptions::default()
    };
    let name = phase("run", observer);
    let campaign = run_campaign(project, &runs, &campaign_options, observer);
    close(name, observer);

    let name = phase("report", observer);
    let tested_structures: BTreeSet<String> = runs
        .iter()
        .map(|run| run.spec.location.structure_key())
        .collect();
    let stats = DynamicStats {
        runs_executed: campaign.stats.runs_total,
        rethrow_filtered: campaign.stats.rethrow_filtered,
        not_a_trigger: campaign.stats.not_a_trigger,
        crashed: campaign.stats.failed,
        timed_out: campaign.stats.timed_out,
        virtual_ms: campaign.stats.virtual_ms,
    };
    // Collect oracle reports. A streaming campaign spilled its records to
    // the journal, so the report phase re-reads it one record at a time —
    // keyed and flattened in key order, which is exactly the order the
    // in-memory path sees, so reports (and therefore dedup and the JSON
    // document) stay byte-identical.
    let mut reports = Vec::new();
    if options.stream {
        let mut by_key: std::collections::BTreeMap<_, Vec<OracleReport>> =
            std::collections::BTreeMap::new();
        let mut insert = |record: &RunRecord| {
            if matches!(
                record.outcome,
                RunOutcome::TimedOut | RunOutcome::Crashed { .. }
            ) {
                return;
            }
            by_key
                .entry(record.key.clone())
                .or_insert_with(|| record.reports.clone());
        };
        // First-wins across the same sources the engine merged: resumed
        // records, spill-failure leftovers, then the journal itself.
        for record in &options.resume_records {
            insert(record);
        }
        for record in &campaign.records {
            insert(record);
        }
        if let Some(path) = &options.journal {
            let stream_journal = wasabi_engine::journal::JournalReader::open(path)
                .and_then(|mut reader| {
                    while let Some(record) = reader.next_record()? {
                        insert(&record);
                    }
                    Ok(())
                });
            if let Err(err) = stream_journal {
                // Degrade, don't die: the campaign completed; worst case
                // the report undercounts bugs from unreadable records.
                eprintln!("[core] streaming report phase: {err}");
            }
        }
        reports = by_key.into_values().flatten().collect();
    } else {
        for record in &campaign.records {
            if matches!(
                record.outcome,
                RunOutcome::TimedOut | RunOutcome::Crashed { .. }
            ) {
                continue;
            }
            reports.extend(record.reports.iter().cloned());
        }
    }

    let bugs = dedup_reports(reports.clone());
    close(name, observer);
    DynamicResult {
        restoration,
        profile,
        runs_planned: runs.len(),
        runs_naive,
        plan: test_plan,
        reports,
        bugs,
        stats,
        tested_structures,
        campaign: campaign.stats,
        campaign_metrics: campaign.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::identify;
    use wasabi_llm::simulated::SimulatedLlm;
    use wasabi_oracles::judge::BugKind;

    fn project() -> Project {
        let src = "exception ConnectException;\nexception SocketException;\n\
             class Flaky {\n\
               method op() throws ConnectException { return \"ok\"; }\n\
               // Uncapped, undelayed retry: both WHEN bugs.\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
                 }\n\
               }\n\
               test tFlaky() { assert(this.run() == \"ok\"); }\n\
             }\n\
             class Solid {\n\
               field maxAttempts = 4;\n\
               method fetch() throws SocketException { return \"ok\"; }\n\
               method run() {\n\
                 for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
                   try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
                 }\n\
                 throw new SocketException(\"giving up\");\n\
               }\n\
               test tSolid() { assert(this.run() == \"ok\"); }\n\
             }";
        Project::compile("t", vec![("t.jav", src)]).unwrap()
    }

    #[test]
    fn end_to_end_dynamic_workflow_finds_when_bugs() {
        let p = project();
        let mut llm = SimulatedLlm::with_seed(5);
        let identified = identify(&p, &mut llm);
        assert!(identified.locations.len() >= 2);
        let result = run_dynamic(&p, &identified.locations, &DynamicOptions::default());
        assert!(result.runs_planned >= 4, "2 locations × 2 K values");
        let kinds: Vec<BugKind> = result.bugs.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BugKind::MissingCap), "kinds: {kinds:?}");
        assert!(kinds.contains(&BugKind::MissingDelay));
        // The Solid structure is clean: its give-up rethrow is filtered.
        assert!(result.stats.rethrow_filtered >= 1);
        assert_eq!(result.tested_structures.len(), 2);
        // No bug attributed to the clean structure.
        for bug in &result.bugs {
            assert_eq!(
                bug.representative().location.coordinator.class,
                "Flaky",
                "only the flaky structure is buggy"
            );
        }
    }

    #[test]
    fn planning_beats_naive_when_tests_overlap() {
        // Many tests covering the same structure.
        let mut src = String::from(
            "exception E;\n\
             class R {\n\
               method op() throws E { return \"ok\"; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(5); }\n\
                 }\n\
                 throw new E(\"giving up\");\n\
               }\n",
        );
        for i in 0..20 {
            src.push_str(&format!(
                "  test t{i:02}() {{ assert(this.run() == \"ok\"); }}\n"
            ));
        }
        src.push_str("}\n");
        let p = Project::compile("t", vec![("r.jav", src)]).unwrap();
        let mut llm = SimulatedLlm::with_seed(5);
        let identified = identify(&p, &mut llm);
        let result = run_dynamic(&p, &identified.locations, &DynamicOptions::default());
        assert!(result.runs_naive >= 10 * result.runs_planned);
        assert!(result.bugs.is_empty(), "clean structure");
    }
}
