#![forbid(unsafe_code)]
//! The WASABI orchestrator: identification, the dynamic testing workflow,
//! static checking, and ground-truth scoring.
//!
//! - [`identify`] merges retry locations from the control-flow query and the
//!   LLM technique (§3.1.1);
//! - [`dynamic`] runs the repurposed-unit-testing workflow end to end
//!   (Figure 1): config restoration, coverage profiling, planning, fault
//!   injection, oracles, and deduplication;
//! - the static workflow is the LLM sweep (carried in the identification
//!   result) plus `wasabi_analysis::ifratio`;
//! - [`score`] turns all reports into the paper's tables using the corpus
//!   ground truth.
//!
//! # Examples
//!
//! ```
//! use wasabi_core::dynamic::{run_dynamic, DynamicOptions};
//! use wasabi_core::identify::identify;
//! use wasabi_lang::project::Project;
//! use wasabi_llm::simulated::SimulatedLlm;
//!
//! let src = r#"
//! exception E;
//! class C {
//!     method op() throws E { return "ok"; }
//!     method run() {
//!         while (true) {
//!             try { return this.op(); } catch (E e) { log("retrying"); }
//!         }
//!     }
//!     test tRun() { assert(this.run() == "ok"); }
//! }
//! "#;
//! let project = Project::compile("demo", vec![("c.jav", src)]).unwrap();
//! let mut llm = SimulatedLlm::with_seed(1);
//! let identified = identify(&project, &mut llm);
//! let result = run_dynamic(&project, &identified.locations, &DynamicOptions::default());
//! assert_eq!(result.bugs.len(), 2, "missing cap + missing delay");
//! ```

pub mod api;
pub mod dynamic;
pub mod identify;
pub mod lint;
pub mod score;
pub mod sharded;

pub use api::{compile_app, report_json, run_app_job, source_digest, AppJob};
pub use dynamic::{run_dynamic, AdaptiveSummary, DynamicOptions, DynamicResult};
pub use wasabi_planner::profile_cache::ProfileCacheOptions;
pub use identify::{identify, Identified};
pub use lint::{cross_check, lint_with_overlap, CrossCheck, CrossCheckCell, LintReport, Tier, WhenOverlap};
pub use score::{evaluate_app, Aggregate, AppEvaluation, Cell};
