//! The compile-once / run-many campaign API.
//!
//! `wasabi test` and the serve daemon must produce byte-identical reports
//! for the same app, so the pipeline they share lives here rather than in
//! the CLI binary:
//!
//! - [`compile_app`] is the *cacheable* unit: source → compiled
//!   [`Project`] (interned symbols, `Arc<ProgramIndex>`) → [`identify`]
//!   pass. Everything downstream is a pure function of its output plus
//!   run options, which is what lets the daemon key an LRU cache on
//!   [`source_digest`] and skip compilation for repeat submissions.
//! - [`run_app_job`] runs the dynamic workflow on a compiled job. The
//!   engine's determinism contract makes the result independent of the
//!   worker count, so cached and fresh submissions judge identically.
//! - [`report_json`] renders the report document `wasabi test --json`
//!   prints — only record-derived fields, byte-identical across `--jobs`
//!   values, resume, and batch vs. daemon execution.

use crate::dynamic::{run_dynamic_with_observer, DynamicOptions, DynamicResult};
use crate::identify::{identify, Identified};
use wasabi_engine::journal;
use wasabi_engine::observer::EngineObserver;
use wasabi_lang::error::Diagnostic;
use wasabi_lang::project::Project;
use wasabi_llm::simulated::SimulatedLlm;
use wasabi_util::rng::fnv1a64;
use wasabi_util::Json;

/// A compiled, identified app: the unit the serve daemon caches and the
/// batch CLI runs once. Owns its data (the project holds interned symbols
/// behind an `Arc`), so it is `Send + Sync` and shareable across runner
/// threads.
#[derive(Debug)]
pub struct AppJob {
    /// Project name (the CLI compiles everything as `"cli"`; the digest
    /// includes it, so differently named submissions never collide).
    pub name: String,
    /// [`source_digest`] of the inputs — the cache key.
    pub digest: u64,
    /// The compiled project.
    pub project: Project,
    /// The identification pass (retry locations, LLM sweep).
    pub identified: Identified,
}

/// FNV-1a digest over `(name, path, contents)*` — the serve cache key.
/// Paths are part of the digest because the simulated LLM draws its error
/// modes from file paths, so the same bytes under different paths can
/// identify (and therefore report) differently.
pub fn source_digest(name: &str, sources: &[(String, String)]) -> u64 {
    let mut chunks: Vec<&[u8]> = Vec::with_capacity(2 + sources.len() * 4);
    chunks.push(name.as_bytes());
    chunks.push(b"\0");
    for (path, contents) in sources {
        chunks.push(path.as_bytes());
        chunks.push(b"\0");
        chunks.push(contents.as_bytes());
        chunks.push(b"\0");
    }
    fnv1a64(chunks)
}

/// Compiles `sources` and runs the identification pass — the expensive,
/// cacheable front half of the pipeline. `llm_seed` seeds the simulated
/// LLM (the CLI uses 0).
pub fn compile_app(
    name: &str,
    sources: Vec<(String, String)>,
    llm_seed: u64,
) -> Result<AppJob, Vec<Diagnostic>> {
    let digest = source_digest(name, &sources);
    let project = Project::compile(name, sources)?;
    let mut llm = SimulatedLlm::with_seed(llm_seed);
    let identified = identify(&project, &mut llm);
    Ok(AppJob {
        name: name.to_string(),
        digest,
        project,
        identified,
    })
}

/// Runs the dynamic workflow on a compiled job, streaming progress into
/// `observer`.
pub fn run_app_job(
    job: &AppJob,
    options: &DynamicOptions,
    observer: &mut dyn EngineObserver,
) -> DynamicResult {
    run_dynamic_with_observer(&job.project, &job.identified.locations, options, observer)
}

/// The `wasabi test --json` report document. Only record-derived fields
/// appear here (never scheduling- or session-dependent ones like
/// wall-clock or per-worker counts): this document must be byte-identical
/// across `--jobs` values, across an uninterrupted run vs. a `--resume`
/// of it, and across batch vs. daemon execution.
pub fn report_json(identified: &Identified, result: &DynamicResult) -> String {
    report_json_with(identified, result, 0)
}

/// [`report_json`] with an explicit `dead_lettered` count — runs a shard
/// supervisor quarantined at the *process* level (they repeatedly killed
/// their shard child and produced no record). Single-process campaigns
/// can never dead-letter, so `report_json` pins the field to 0; the field
/// is always present so sharded and single-process reports stay
/// byte-identical whenever nothing was lost.
pub fn report_json_with(
    identified: &Identified,
    result: &DynamicResult,
    dead_lettered: usize,
) -> String {
    let value = Json::obj([
        ("schema_version", Json::from(journal::SCHEMA_VERSION)),
        ("locations", Json::from(identified.locations.len())),
        (
            "covering_tests",
            Json::from(result.profile.tests_covering_retry()),
        ),
        ("runs_planned", Json::from(result.runs_planned)),
        ("runs_naive", Json::from(result.runs_naive)),
        ("timed_out", Json::from(result.campaign.timed_out)),
        ("crashed", Json::from(result.campaign.crashed)),
        ("quarantined", Json::from(result.campaign.quarantined)),
        ("dead_lettered", Json::from(dead_lettered)),
        (
            "pinned_configs",
            Json::arr(result.restoration.pinned.iter().map(|k| Json::from(k.as_str()))),
        ),
        (
            "bugs",
            Json::arr(result.bugs.iter().map(|b| {
                Json::obj([
                    ("kind", Json::from(b.kind.to_string())),
                    (
                        "coordinator",
                        Json::from(b.representative().location.coordinator.to_string()),
                    ),
                    (
                        "exception",
                        Json::from(b.representative().location.exception.as_str()),
                    ),
                    ("detail", Json::from(b.representative().detail.as_str())),
                    ("reports", Json::from(b.reports.len())),
                ])
            })),
        ),
    ]);
    value.pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_engine::observer::NullObserver;

    const SOURCE: &str = "\
exception E;\n\
class C {\n\
  method op() throws E { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (E e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tRun() { assert(this.run() == \"ok\"); }\n\
}\n";

    fn sources() -> Vec<(String, String)> {
        vec![("c.jav".to_string(), SOURCE.to_string())]
    }

    #[test]
    fn digest_depends_on_name_path_and_contents() {
        let base = source_digest("cli", &sources());
        assert_eq!(base, source_digest("cli", &sources()), "digest is stable");
        assert_ne!(base, source_digest("other", &sources()));
        let mut renamed = sources();
        renamed[0].0 = "d.jav".to_string();
        assert_ne!(base, source_digest("cli", &renamed));
        let mut edited = sources();
        edited[0].1.push(' ');
        assert_ne!(base, source_digest("cli", &edited));
    }

    #[test]
    fn compiled_job_reports_identically_to_a_recompile() {
        let job = compile_app("cli", sources(), 0).expect("compile");
        let first = {
            let result = run_app_job(&job, &DynamicOptions::default(), &mut NullObserver);
            report_json(&job.identified, &result)
        };
        // A cache hit replays the same AppJob; a fresh compile of the same
        // sources must agree byte-for-byte.
        let again = compile_app("cli", sources(), 0).expect("compile");
        assert_eq!(job.digest, again.digest);
        let second = {
            let result = run_app_job(&again, &DynamicOptions::default(), &mut NullObserver);
            report_json(&again.identified, &result)
        };
        assert_eq!(first, second, "report must be a pure function of sources");
        assert!(first.contains("\"bugs\""));
    }

    #[test]
    fn disabling_timing_capture_never_changes_the_report() {
        let job = compile_app("cli", sources(), 0).expect("compile");
        let timed = {
            let options = DynamicOptions::default();
            assert!(options.capture_timing, "timing capture is on by default");
            let result = run_app_job(&job, &options, &mut NullObserver);
            report_json(&job.identified, &result)
        };
        let untimed = {
            let options = DynamicOptions {
                capture_timing: false,
                ..DynamicOptions::default()
            };
            let result = run_app_job(&job, &options, &mut NullObserver);
            report_json(&job.identified, &result)
        };
        assert_eq!(timed, untimed, "timing is never report-bearing");
    }

    #[test]
    fn compile_errors_surface_as_diagnostics() {
        let bad = vec![("b.jav".to_string(), "class {".to_string())];
        assert!(compile_app("cli", bad, 0).is_err());
    }
}
