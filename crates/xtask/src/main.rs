//! Workspace automation: `cargo tier1` and `cargo xtask <task>`.
//!
//! Cargo aliases cannot chain commands, so the `tier1` alias in
//! `.cargo/config.toml` runs this binary, which shells out to cargo for
//! each stage. Tasks:
//!
//! - `tier1` — the tier-1 verification gate: `cargo build --release`
//!   followed by `cargo test -q --workspace`, then the resilience smoke.
//!   Fails fast on the first failing stage.
//! - `ci`    — tier1 plus `cargo build --all-features` and the
//!   all-features test suite (every feature is offline-safe in this
//!   workspace, so both extra stages must pass too).
//! - `smoke` — the resilience smoke on its own: a chaos campaign
//!   (10% injected run panics, `--jobs 4`) whose `--json` report must be
//!   byte-identical to the serial run's, and a kill-and-resume round-trip
//!   (journal a campaign, cut the journal mid-line as a killed process
//!   would leave it, resume) whose report must be byte-identical to the
//!   uninterrupted baseline.
//! - `bench` — full engine-throughput benchmark over the repro corpus
//!   (`wasabi bench`, serial and `--jobs 4`); composes `BENCH_PR6.json`
//!   at the repo root from the recorded baseline
//!   (`scripts/bench_baseline.json`, written once with
//!   `bench --record-baseline`) and the current measurement.
//! - `bench --smoke` — reduced variant for the CI gate: verifies the
//!   seed-corpus report digest (`scripts/seed_report_digest.txt`,
//!   recorded with `digest --record`) and runs a one-iteration mini
//!   bench. Wired into `tier1` and `ci`.
//! - `digest` — recompute the seed-corpus `wasabi test --json` report
//!   digest and compare against the recorded one (`--record` rewrites
//!   the file). Guards against execution-layer changes altering any
//!   observable report byte.
//! - `serve-smoke` — the campaign-as-a-service gate: start a `wasabi
//!   serve` daemon on a loopback port, submit the seed app twice, and
//!   require (a) both submissions return byte-identical reports, (b) the
//!   second is a ProgramIndex cache hit, and (c) the report digest equals
//!   the batch digest pinned in `scripts/seed_report_digest.txt`.
//! - `lint` — the static-analysis gate: regenerate the pinned corpus apps
//!   (with the amplification seeds), check `wasabi lint` output is
//!   byte-identical between `--jobs 1` and `--jobs 4`, and fail on any
//!   diagnostic not in the checked-in baseline
//!   (`scripts/lint_baseline.txt`, rewritten with `lint --record`).
//!   Wired into `ci`.
//! - `chaos-shard-smoke` — the crash-tolerance gate: run the seed app as
//!   a 4-shard multi-process campaign with one shard chaos-killed
//!   mid-flight; the supervisor must recover it and the merged report
//!   must equal the uninterrupted single-process report byte-for-byte
//!   (digest-pinned), `wasabi merge` over the shard directory must
//!   reproduce it offline, and a same-seed rerun must be byte-identical.
//! - `adaptive-gate` — the adaptive-planner gate: over all eight corpus
//!   apps, `wasabi test --adaptive` must report the exact fixed-grid bug
//!   set (100% recall, identical order and identity) while executing at
//!   least 40% fewer runs in aggregate; then a paper-scale bench pair
//!   (`--profile-cache` cold, then warm) must show the warm cache cutting
//!   total wall time by at least 30%. Writes `BENCH_PR8.json` with the
//!   per-app fixed-vs-adaptive run counts and the cold/warm walls.
//! - `repair-gate` — the auto-repair gate: over all eight corpus apps
//!   (small scale, amplification seeds included), `wasabi repair` must
//!   fix at least 80% of the fixable seeded W001/W002/A001 bugs within
//!   the default 3 attempts, fix at least one bug in every class that
//!   seeds any, and emit byte-identical reports for `--jobs 1` and
//!   `--jobs 4`. Writes `BENCH_PR9.json` with the per-app and per-class
//!   fix rates and the attempts-vs-fix-rate curve.
//! - `lint-gate` — the retry-policy abstract-interpretation gate: over
//!   all eight corpus apps (small scale, amplification AND policy seeds
//!   included), `wasabi lint --json --cross-check` must be
//!   byte-identical between `--jobs 1` and `--jobs 4`, and the
//!   W004/W005/W006 findings must score at least 0.9 precision and
//!   recall per code against the `policy_truth.json` sidecars. Writes
//!   `BENCH_PR10.json` with per-app static-sweep wall times and the
//!   per-code score table.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{exit, Command};

fn main() {
    let task = env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: cargo xtask <tier1|ci|smoke|bench|digest|lint|serve-smoke|chaos-shard-smoke|adaptive-gate|repair-gate|lint-gate>");
        exit(2);
    });
    let flags: Vec<String> = env::args().skip(2).collect();
    match task.as_str() {
        "tier1" => {
            run_stage("build --release", &["build", "--release"]);
            run_stage("test -q --workspace", &["test", "-q", "--workspace"]);
            smoke();
            bench_smoke();
            eprintln!("tier1: OK");
        }
        "ci" => {
            run_stage("build --release", &["build", "--release"]);
            run_stage("test -q --workspace", &["test", "-q", "--workspace"]);
            run_stage("build --all-features", &["build", "--all-features"]);
            run_stage(
                "test -q --workspace --all-features",
                &["test", "-q", "--workspace", "--all-features"],
            );
            smoke();
            bench_smoke();
            lint_gate(false);
            eprintln!("ci: OK");
        }
        "smoke" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            smoke();
        }
        "bench" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            if flags.iter().any(|f| f == "--smoke") {
                bench_smoke();
            } else {
                bench_full(flags.iter().any(|f| f == "--record-baseline"));
            }
        }
        "digest" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            digest(flags.iter().any(|f| f == "--record"));
        }
        "lint" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            lint_gate(flags.iter().any(|f| f == "--record"));
        }
        "serve-smoke" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            serve_smoke();
        }
        "chaos-shard-smoke" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            chaos_shard_smoke();
        }
        "adaptive-gate" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            adaptive_gate();
        }
        "repair-gate" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            repair_gate();
        }
        "lint-gate" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            policy_lint_gate();
        }
        other => {
            eprintln!(
                "unknown task `{other}`; expected tier1, ci, smoke, bench, digest, lint, serve-smoke, chaos-shard-smoke, adaptive-gate, repair-gate, or lint-gate"
            );
            exit(2);
        }
    }
}

fn run_stage(label: &str, args: &[&str]) {
    eprintln!("==> cargo {label}");
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(args)
        .status()
        .unwrap_or_else(|e| {
            eprintln!("failed to spawn cargo: {e}");
            exit(1);
        });
    if !status.success() {
        eprintln!("stage `cargo {label}` failed");
        exit(status.code().unwrap_or(1));
    }
}

/// The resilience smoke. Assumes `target/release/wasabi` is built (the
/// callers run `cargo build --release` first).
fn smoke() {
    eprintln!("==> smoke: chaos campaign + kill-and-resume round-trip");
    let wasabi = Path::new("target/release/wasabi");
    if !wasabi.exists() {
        eprintln!("smoke: {} not built", wasabi.display());
        exit(1);
    }
    let work = env::temp_dir().join(format!("wasabi-smoke-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work).unwrap_or_else(|e| fail(&format!("create {}: {e}", work.display())));

    // A real corpus app as the smoke workload.
    let app_dir = work.join("app");
    let status = Command::new(wasabi)
        .args(["corpus", "HD"])
        .arg(&app_dir)
        .status()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
    if !status.success() {
        fail("wasabi corpus failed");
    }
    let mut files = Vec::new();
    collect_jav(&app_dir, &mut files);
    files.sort();
    if files.is_empty() {
        fail("corpus produced no .jav files");
    }

    // Chaos smoke: 10% injected run panics must not break the engine's
    // determinism contract — the JSON report is byte-identical across
    // worker counts.
    let chaos = |jobs: &str| {
        run_wasabi_test(
            wasabi,
            &["--quiet", "--json", "--chaos-panic", "0.1", "--jobs", jobs],
            &files,
        )
    };
    let serial = chaos("1");
    let parallel = chaos("4");
    if serial != parallel {
        fail("chaos smoke: report differs between --jobs 1 and --jobs 4");
    }
    eprintln!("    chaos report identical across jobs=1/4 ({} bytes)", serial.len());

    // Kill-and-resume: journal a full campaign, then cut the journal the
    // way a killed process leaves it (half the lines, last one torn
    // mid-write) and resume from the cut. The resumed report must be
    // byte-identical to the uninterrupted baseline.
    let full_journal = work.join("full.jsonl");
    let baseline = run_wasabi_test(
        wasabi,
        &["--quiet", "--json", "--jobs", "2", "--journal", full_journal.to_str().unwrap()],
        &files,
    );
    if baseline.is_empty() {
        fail("kill-and-resume: baseline report is empty");
    }
    let text = fs::read_to_string(&full_journal)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", full_journal.display())));
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    if lines.len() < 4 {
        fail("kill-and-resume: journal too small to cut");
    }
    let mut cut: String = lines[..lines.len() / 2].concat();
    cut.truncate(cut.len().saturating_sub(5)); // tear the last line
    let cut_journal = work.join("cut.jsonl");
    fs::write(&cut_journal, &cut)
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", cut_journal.display())));
    let resumed = run_wasabi_test(
        wasabi,
        &["--quiet", "--json", "--jobs", "4", "--resume", cut_journal.to_str().unwrap()],
        &files,
    );
    if resumed != baseline {
        fail("kill-and-resume: resumed report differs from the uninterrupted baseline");
    }
    eprintln!("    resumed report identical to baseline ({} bytes)", baseline.len());

    // Trace smoke: record a journaled campaign with `--trace-out`, then
    // let `wasabi stats` validate the trace — schema parse, every run
    // span closed, and attempt/injection counts matching the journal.
    let trace = work.join("trace.jsonl");
    let trace_journal = work.join("trace-journal.jsonl");
    let _ = run_wasabi_test(
        wasabi,
        &[
            "--quiet",
            "--json",
            "--jobs",
            "2",
            "--journal",
            trace_journal.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ],
        &files,
    );
    let stats = Command::new(wasabi)
        .arg("stats")
        .arg(&trace)
        .args(["--journal", trace_journal.to_str().unwrap()])
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi stats: {e}")));
    if !stats.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&stats.stderr));
        fail("trace smoke: `wasabi stats` validation failed");
    }
    let table = String::from_utf8_lossy(&stats.stdout);
    for needed in ["phase", "run", "total", "runs:"] {
        if !table.contains(needed) {
            fail(&format!("trace smoke: stats table is missing `{needed}`"));
        }
    }
    eprintln!("    trace validated against journal ({} trace bytes)", fs::metadata(&trace).map(|m| m.len()).unwrap_or(0));

    let _ = fs::remove_dir_all(&work);
    eprintln!("smoke: OK");
}

const BASELINE_PATH: &str = "scripts/bench_baseline.json";
const DIGEST_PATH: &str = "scripts/seed_report_digest.txt";
const LINT_BASELINE_PATH: &str = "scripts/lint_baseline.txt";
const BENCH_OUT: &str = "BENCH_PR6.json";
const ADAPTIVE_BENCH_OUT: &str = "BENCH_PR8.json";
const REPAIR_BENCH_OUT: &str = "BENCH_PR9.json";
const POLICY_BENCH_OUT: &str = "BENCH_PR10.json";
/// Aggregate and per-class fix-rate floor (percent) for the repair gate.
const REPAIR_RATE_FLOOR: u64 = 80;
/// Apps whose `wasabi test --json` reports are digest-pinned.
const DIGEST_APPS: &[&str] = &["HD", "MA"];
/// Apps the adaptive gate sweeps (the full evaluated corpus).
const ADAPTIVE_APPS: &[&str] = &["HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL"];
/// Apps the lint gate sweeps (generated with the amplification seeds).
const LINT_APPS: &[&str] = &["HD", "MA"];

/// The static-analysis gate: `wasabi lint` over the pinned corpus apps
/// (amplification seeds included) must be byte-identical between
/// `--jobs 1` and `--jobs 4`, and — unless `record` — every diagnostic
/// must be fingerprinted in the checked-in baseline.
fn lint_gate(record: bool) {
    eprintln!("==> lint gate: corpus sweep vs {LINT_BASELINE_PATH}");
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let baseline_abs = Path::new(LINT_BASELINE_PATH)
        .parent()
        .and_then(|dir| dir.canonicalize().ok())
        .map(|dir| dir.join("lint_baseline.txt"))
        .unwrap_or_else(|| fail("scripts/ directory missing"));
    let work = env::temp_dir().join(format!("wasabi-lint-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    let mut baseline_out = String::new();
    for app in LINT_APPS {
        let app_dir = work.join(app);
        let status = Command::new(&wasabi)
            .args(["corpus", app, "--amp"])
            .arg(&app_dir)
            .status()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
        if !status.success() {
            fail(&format!("wasabi corpus {app} --amp failed"));
        }
        let mut files = Vec::new();
        collect_jav(&app_dir, &mut files);
        files.sort();
        // Diagnostics anchor on the paths the CLI is given: pass them
        // relative to the work dir so the baseline fingerprints are
        // independent of the temp-dir location.
        let rel: Vec<PathBuf> = files
            .iter()
            .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
            .collect();

        // Determinism: serial and 4-worker runs render identically.
        let serial = run_wasabi_lint_in(&wasabi, &work, &["--jobs", "1"], &rel);
        let parallel = run_wasabi_lint_in(&wasabi, &work, &["--jobs", "4"], &rel);
        if serial.1 != parallel.1 {
            fail(&format!("lint gate: {app} output differs between --jobs 1 and --jobs 4"));
        }
        eprintln!("    {app}: output identical across jobs=1/4 ({} bytes)", serial.1.len());

        if record {
            let app_baseline = work.join(format!("{app}-baseline.txt"));
            let _ = run_wasabi_lint_in(
                &wasabi,
                &work,
                &["--write-baseline", app_baseline.to_str().unwrap()],
                &rel,
            );
            baseline_out.push_str(
                &fs::read_to_string(&app_baseline)
                    .unwrap_or_else(|e| fail(&format!("read {}: {e}", app_baseline.display()))),
            );
        } else {
            let (code, stdout) = run_wasabi_lint_in(
                &wasabi,
                &work,
                &["--baseline", baseline_abs.to_str().unwrap()],
                &rel,
            );
            if code != 0 {
                eprintln!("{stdout}");
                fail(&format!(
                    "lint gate: {app} has diagnostics not in {LINT_BASELINE_PATH} \
                     (rewrite it with `cargo xtask lint --record` if they are intended)"
                ));
            }
            eprintln!("    {app}: no diagnostics outside the baseline");
        }
    }
    let _ = fs::remove_dir_all(&work);
    if record {
        fs::write(LINT_BASELINE_PATH, &baseline_out)
            .unwrap_or_else(|e| fail(&format!("write {LINT_BASELINE_PATH}: {e}")));
        eprintln!(
            "lint gate: recorded {} fingerprints to {LINT_BASELINE_PATH}",
            baseline_out.lines().count()
        );
        return;
    }
    eprintln!("lint gate: OK");
}

/// Runs `wasabi lint <flags> <files>` in `cwd` and returns (exit code,
/// stdout). Exit code 1 (diagnostics found) is an expected outcome — only
/// codes ≥ 2 abort.
fn run_wasabi_lint_in(wasabi: &Path, cwd: &Path, flags: &[&str], files: &[PathBuf]) -> (i32, String) {
    let output = Command::new(wasabi)
        .current_dir(cwd)
        .arg("lint")
        .args(flags)
        .args(files)
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi lint: {e}")));
    let code = output.status.code().unwrap_or(-1);
    if code != 0 && code != 1 {
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        fail(&format!("wasabi lint exited with code {code}"));
    }
    (code, String::from_utf8_lossy(&output.stdout).into_owned())
}

/// Full benchmark: measure serial and 4-worker throughput over the whole
/// repro corpus, then compose `BENCH_PR3.json` from the recorded baseline
/// and the current numbers. With `record`, (re)writes the baseline file
/// instead.
fn bench_full(record: bool) {
    let wasabi = release_wasabi();
    eprintln!("==> bench: full corpus, serial");
    let serial = run_wasabi(
        &wasabi,
        &["bench", "--jobs", "1", "--iters", "3", "--scale", "paper"],
    );
    eprintln!("==> bench: full corpus, --jobs 4");
    let parallel = run_wasabi(
        &wasabi,
        &["bench", "--jobs", "4", "--iters", "3", "--scale", "paper"],
    );
    let measurement = format!(
        "{{\n  \"serial\": {},\n  \"parallel\": {}\n}}",
        indent_json(&serial, 2),
        indent_json(&parallel, 2)
    );
    if record {
        fs::write(BASELINE_PATH, &measurement)
            .unwrap_or_else(|e| fail(&format!("write {BASELINE_PATH}: {e}")));
        eprintln!("bench: baseline recorded to {BASELINE_PATH}");
        return;
    }
    let baseline = fs::read_to_string(BASELINE_PATH).unwrap_or_else(|_| {
        fail(&format!(
            "{BASELINE_PATH} missing — record one with `cargo xtask bench --record-baseline`"
        ))
    });
    let speedup = |section: &str| -> f64 {
        let base = extract_runs_per_sec(extract_section(&baseline, section));
        let curr = extract_runs_per_sec(extract_section(&measurement, section));
        curr / base
    };
    let (serial_speedup, parallel_speedup) = (speedup("serial"), speedup("parallel"));
    let static_sweep = bench_static_sweep();
    let doc = format!(
        "{{\n  \"harness\": \"wasabi bench (full dynamic workflow over all 8 corpus apps, \
         scale paper, best of 3 iterations)\",\n  \"baseline\": {},\n  \"current\": {},\n  \
         \"speedup\": {{\n    \"serial_runs_per_sec\": {serial_speedup:.2},\n    \
         \"parallel_runs_per_sec\": {parallel_speedup:.2}\n  }},\n  \"static_sweep\": {}\n}}\n",
        indent_json(baseline.trim(), 2),
        indent_json(measurement.trim(), 2),
        indent_json(&static_sweep, 2)
    );
    fs::write(BENCH_OUT, doc).unwrap_or_else(|e| fail(&format!("write {BENCH_OUT}: {e}")));
    eprintln!(
        "bench: wrote {BENCH_OUT} (speedup: {serial_speedup:.2}x serial, \
         {parallel_speedup:.2}x parallel)"
    );
}

/// Times the interprocedural lint (`wasabi lint --jobs 1`) over each
/// pinned corpus app (amplification seeds included) and returns a JSON
/// fragment with per-app wall time and diagnostic counts.
fn bench_static_sweep() -> String {
    eprintln!("==> bench: static lint sweep");
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let work = env::temp_dir().join(format!("wasabi-lintbench-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    let mut rows = Vec::new();
    for app in LINT_APPS {
        let app_dir = work.join(app);
        let status = Command::new(&wasabi)
            .args(["corpus", app, "--amp"])
            .arg(&app_dir)
            .status()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
        if !status.success() {
            fail(&format!("wasabi corpus {app} --amp failed"));
        }
        let mut files = Vec::new();
        collect_jav(&app_dir, &mut files);
        files.sort();
        let rel: Vec<PathBuf> = files
            .iter()
            .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
            .collect();
        let start = std::time::Instant::now();
        let (_, stdout) = run_wasabi_lint_in(&wasabi, &work, &["--jobs", "1"], &rel);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let diagnostics = stdout.lines().filter(|l| l.contains(": warning[")).count();
        eprintln!("    {app}: {} files, {diagnostics} diagnostics, {wall_ms:.1} ms", rel.len());
        rows.push(format!(
            "    \"{app}\": {{ \"files\": {}, \"diagnostics\": {diagnostics}, \
             \"wall_ms\": {wall_ms:.1} }}",
            rel.len()
        ));
    }
    let _ = fs::remove_dir_all(&work);
    format!("{{\n{}\n  }}", rows.join(",\n"))
}

/// The CI bench smoke: the seed-corpus report digest must match the
/// recorded one (interning/indexing must never change observable output),
/// and a one-iteration mini bench must run cleanly.
fn bench_smoke() {
    eprintln!("==> bench smoke: seed-corpus report digest + mini bench");
    digest(false);
    let wasabi = release_wasabi();
    let out = run_wasabi(&wasabi, &["bench", "--apps", "HD", "--iters", "1", "--jobs", "2"]);
    if !out.contains("\"runs_per_sec\"") {
        fail("bench smoke: mini bench produced no runs_per_sec");
    }
    // The per-phase breakdown must tile the measured wall time: the sum
    // of phase wall times within 10% of the total.
    let totals = extract_section(&out, "totals");
    let wall_ms = extract_number(totals, "\"wall_ms\":");
    let phase_ms = sum_phase_ms(totals);
    if phase_ms < wall_ms * 0.9 || phase_ms > wall_ms * 1.1 {
        fail(&format!(
            "bench smoke: phase sum {phase_ms:.1} ms not within 10% of wall {wall_ms:.1} ms"
        ));
    }
    eprintln!("    per-phase breakdown tiles wall time ({phase_ms:.1} of {wall_ms:.1} ms)");
    eprintln!("bench smoke: OK");
}

/// Recomputes the `wasabi test --quiet --json --jobs 2` report digest for
/// each pinned corpus app and compares it to (or, with `record`, rewrites)
/// `scripts/seed_report_digest.txt`.
fn digest(record: bool) {
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let work = env::temp_dir().join(format!("wasabi-digest-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    let mut lines = String::new();
    for app in DIGEST_APPS {
        let app_dir = work.join(app);
        let status = Command::new(&wasabi)
            .args(["corpus", app])
            .arg(&app_dir)
            .status()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
        if !status.success() {
            fail(&format!("wasabi corpus {app} failed"));
        }
        let mut files = Vec::new();
        collect_jav(&app_dir, &mut files);
        files.sort();
        // The simulated LLM draws its error modes from (seed, file path,
        // question), so the paths the runner sees are part of the digest
        // input: pass them relative to the work dir to keep the report
        // independent of the temp-dir location and of this process's pid.
        let rel: Vec<PathBuf> = files
            .iter()
            .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
            .collect();
        let report = run_wasabi_test_in(&wasabi, &work, &["--quiet", "--json", "--jobs", "2"], &rel);
        if report.is_empty() {
            fail(&format!("digest: empty report for {app}"));
        }
        lines.push_str(&format!("{app} {:016x}\n", fnv1a64(report.as_bytes())));
    }
    let _ = fs::remove_dir_all(&work);
    if record {
        fs::write(DIGEST_PATH, &lines)
            .unwrap_or_else(|e| fail(&format!("write {DIGEST_PATH}: {e}")));
        eprintln!("digest: recorded to {DIGEST_PATH}:\n{lines}");
        return;
    }
    let recorded = fs::read_to_string(DIGEST_PATH).unwrap_or_else(|_| {
        fail(&format!(
            "{DIGEST_PATH} missing — record one with `cargo xtask digest --record`"
        ))
    });
    if recorded != lines {
        eprintln!("recorded:\n{recorded}\ncomputed:\n{lines}");
        fail("digest: seed-corpus report digest changed — execution output is no longer byte-identical");
    }
    eprintln!("    seed-corpus report digest unchanged ({} apps)", DIGEST_APPS.len());
}

/// The crash-tolerance gate: the seed app as a 4-shard multi-process
/// campaign with shard 1 chaos-killed mid-flight must merge to the exact
/// bytes of the uninterrupted single-process report (whose digest is
/// pinned in `scripts/seed_report_digest.txt`), `wasabi merge` must
/// reproduce those bytes offline from the shard directory, and a rerun
/// with the same chaos seed must be byte-identical.
fn chaos_shard_smoke() {
    eprintln!("==> chaos shard smoke: 4-shard campaign, one shard killed, vs pinned digest");
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let work = env::temp_dir().join(format!("wasabi-chaos-shard-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work).unwrap_or_else(|e| fail(&format!("create {}: {e}", work.display())));

    let app_dir = work.join("HD");
    let status = Command::new(&wasabi)
        .args(["corpus", "HD"])
        .arg(&app_dir)
        .status()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
    if !status.success() {
        fail("wasabi corpus HD failed");
    }
    let mut files = Vec::new();
    collect_jav(&app_dir, &mut files);
    files.sort();
    // Relative paths, same working directory for every invocation: the
    // simulated LLM keys on the paths, and the digest is pinned on them.
    let rel: Vec<PathBuf> = files
        .iter()
        .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
        .collect();

    let single = run_wasabi_test_in(&wasabi, &work, &["--quiet", "--json", "--jobs", "2"], &rel);
    if single.is_empty() {
        fail("chaos shard smoke: empty single-process report");
    }
    let recorded = fs::read_to_string(DIGEST_PATH)
        .unwrap_or_else(|_| fail(&format!("{DIGEST_PATH} missing")));
    let pinned = recorded
        .lines()
        .find_map(|line| line.strip_prefix("HD "))
        .unwrap_or_else(|| fail(&format!("no HD line in {DIGEST_PATH}")));
    let computed = format!("{:016x}", fnv1a64(single.as_bytes()));
    if computed != pinned {
        fail(&format!(
            "chaos shard smoke: single-process digest {computed} != pinned {pinned}"
        ));
    }

    let shard_flags = |dir: &str| {
        vec![
            "--quiet".to_string(),
            "--json".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
            "--shards".to_string(),
            "4".to_string(),
            "--shard-dir".to_string(),
            dir.to_string(),
            "--chaos-kill-shard".to_string(),
            "1".to_string(),
        ]
    };
    let first_flags = shard_flags("shards-0");
    let first_refs: Vec<&str> = first_flags.iter().map(String::as_str).collect();
    let sharded = run_wasabi_test_in(&wasabi, &work, &first_refs, &rel);
    if sharded != single {
        fail("chaos shard smoke: recovered sharded report differs from single-process bytes");
    }
    eprintln!("    shard 1 killed and recovered; merged report matches pinned digest");

    // The shard directory is durable: an offline merge reproduces the bytes.
    let merge = Command::new(&wasabi)
        .current_dir(&work)
        .args(["merge", "--json", "shards-0"])
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi merge: {e}")));
    let code = merge.status.code().unwrap_or(-1);
    if code != 0 && code != 1 {
        eprintln!("{}", String::from_utf8_lossy(&merge.stderr));
        fail(&format!("wasabi merge exited with code {code}"));
    }
    if String::from_utf8_lossy(&merge.stdout) != single {
        fail("chaos shard smoke: offline `wasabi merge` report differs");
    }
    eprintln!("    offline merge of the shard directory reproduces the report");

    let rerun_flags = shard_flags("shards-1");
    let rerun_refs: Vec<&str> = rerun_flags.iter().map(String::as_str).collect();
    let rerun = run_wasabi_test_in(&wasabi, &work, &rerun_refs, &rel);
    if rerun != sharded {
        fail("chaos shard smoke: same-seed rerun is not byte-identical");
    }
    eprintln!("    same-chaos-seed rerun byte-identical");

    let _ = fs::remove_dir_all(&work);
    eprintln!("chaos shard smoke: OK");
}

/// The campaign-as-a-service gate: a real daemon on a loopback port must
/// serve the seed app byte-identically to batch mode (digest-pinned),
/// and a repeat submission must hit the compiled-app cache.
fn serve_smoke() {
    use std::io::BufRead;

    eprintln!("==> serve smoke: daemon round-trip vs {DIGEST_PATH}");
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let work = env::temp_dir().join(format!("wasabi-serve-smoke-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);

    let app = "HD";
    let app_dir = work.join(app);
    let status = Command::new(&wasabi)
        .args(["corpus", app])
        .arg(&app_dir)
        .status()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
    if !status.success() {
        fail(&format!("wasabi corpus {app} failed"));
    }
    let mut files = Vec::new();
    collect_jav(&app_dir, &mut files);
    files.sort();
    // Relative paths from the work dir, exactly as `digest` runs batch
    // mode: the simulated LLM keys on the paths the runner sees, so this
    // is what makes the daemon and batch digests comparable.
    let rel: Vec<PathBuf> = files
        .iter()
        .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
        .collect();

    let mut daemon = Command::new(&wasabi)
        .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "2", "--quiet"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi serve: {e}")));
    let mut banner = String::new();
    std::io::BufReader::new(daemon.stdout.take().expect("piped stdout"))
        .read_line(&mut banner)
        .unwrap_or_else(|e| fail(&format!("read serve banner: {e}")));
    let addr = banner
        .split("\"addr\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| fail(&format!("serve banner carried no addr: {banner}")))
        .to_string();
    eprintln!("    daemon on {addr}");

    let submit = |extra: &[&str], files: &[PathBuf]| -> (i32, String) {
        let output = Command::new(&wasabi)
            .current_dir(&work)
            .args(["submit", "--addr", &addr, "--quiet"])
            .args(extra)
            .args(files)
            .output()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi submit: {e}")));
        let code = output.status.code().unwrap_or(-1);
        (code, String::from_utf8_lossy(&output.stdout).into_owned())
    };

    // Exit 1 (bugs found) is the expected outcome for the seed app.
    let (first_code, first) = submit(&[], &rel);
    if first_code != 0 && first_code != 1 {
        fail(&format!("first submit exited with code {first_code}"));
    }
    let (second_code, second) = submit(&[], &rel);
    if second_code != first_code {
        fail(&format!("repeat submit exit code drifted: {first_code} -> {second_code}"));
    }
    if first != second {
        fail("serve smoke: repeat submission report differs from the first");
    }

    // The daemon's report must equal batch mode's, byte for byte: its
    // digest is pinned in the same file `cargo xtask digest` verifies.
    let recorded = fs::read_to_string(DIGEST_PATH)
        .unwrap_or_else(|_| fail(&format!("{DIGEST_PATH} missing — run `cargo xtask digest --record`")));
    let pinned = recorded
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{app} ")))
        .unwrap_or_else(|| fail(&format!("{DIGEST_PATH} has no {app} line")));
    let computed = format!("{:016x}", fnv1a64(first.as_bytes()));
    if computed != pinned {
        fail(&format!(
            "serve smoke: daemon report digest {computed} != batch digest {pinned}"
        ));
    }
    eprintln!("    daemon report matches batch digest ({computed})");

    let (stats_code, stats) = submit(&["--stats"], &[]);
    if stats_code != 0 {
        fail(&format!("submit --stats exited with code {stats_code}"));
    }
    let cache_hits = extract_number(&stats, "\"cache_hits\":");
    if cache_hits < 1.0 {
        fail(&format!("serve smoke: expected a cache hit, stats were {stats}"));
    }
    eprintln!("    repeat submission was a cache hit ({cache_hits} hit(s))");

    let (shutdown_code, _) = submit(&["--shutdown"], &[]);
    if shutdown_code != 0 {
        fail(&format!("submit --shutdown exited with code {shutdown_code}"));
    }
    let status = daemon
        .wait()
        .unwrap_or_else(|e| fail(&format!("wait for daemon exit: {e}")));
    if !status.success() {
        fail(&format!("daemon exited with {status}"));
    }
    let _ = fs::remove_dir_all(&work);
    eprintln!("serve smoke: OK");
}

/// The adaptive-planner gate (two halves):
///
/// 1. **Recall at reduced budget** — for every corpus app, the
///    `--adaptive` report's bug list must be *identical* to the fixed
///    grid's (same bugs, same order, same details; only the grouped
///    per-bug `reports` counts may shrink, since a deduped widen run
///    would merely have re-witnessed a bug the probe already proved),
///    and the aggregate executed-run count must drop by ≥ 40%.
/// 2. **Profile-cache payoff** — a paper-scale `wasabi bench` with a
///    fresh `--profile-cache` run twice: the warm (cache-hit) wall must
///    be ≤ 70% of the cold wall.
///
/// Writes `BENCH_PR8.json` with the per-app run counts and both walls.
fn adaptive_gate() {
    eprintln!("==> adaptive gate: fixed-grid recall at a reduced run budget");
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let work = env::temp_dir().join(format!("wasabi-adaptive-gate-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);

    // The bug list from `"bugs":` onward, minus the grouped-report
    // counts (the only field fingerprint dedup may legitimately shrink).
    let bug_list = |report: &str| -> String {
        let start = report
            .find("\"bugs\":")
            .unwrap_or_else(|| fail("adaptive gate: report has no bugs array"));
        report[start..]
            .lines()
            .filter(|line| !line.contains("\"reports\""))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let mut app_docs = Vec::new();
    let (mut fixed_total, mut adaptive_total) = (0u64, 0u64);
    for app in ADAPTIVE_APPS {
        let app_dir = work.join(app);
        let status = Command::new(&wasabi)
            .args(["corpus", app])
            .arg(&app_dir)
            .status()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
        if !status.success() {
            fail(&format!("wasabi corpus {app} failed"));
        }
        let mut files = Vec::new();
        collect_jav(&app_dir, &mut files);
        files.sort();
        // Relative paths, as in `digest`: the simulated LLM keys on the
        // paths the CLI sees, so both runs must see the same ones.
        let rel: Vec<PathBuf> = files
            .iter()
            .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
            .collect();
        let fixed = run_wasabi_test_in(&wasabi, &work, &["--quiet", "--json", "--jobs", "2"], &rel);
        let adaptive = run_wasabi_test_in(
            &wasabi,
            &work,
            &["--quiet", "--json", "--jobs", "2", "--adaptive"],
            &rel,
        );
        if bug_list(&fixed) != bug_list(&adaptive) {
            eprintln!("fixed bugs:\n{}\nadaptive bugs:\n{}", bug_list(&fixed), bug_list(&adaptive));
            fail(&format!("adaptive gate: {app} adaptive bug set differs from the fixed grid"));
        }
        let fixed_runs = extract_number(&fixed, "\"runs_planned\":") as u64;
        let adaptive_runs = extract_number(&adaptive, "\"runs_planned\":") as u64;
        if adaptive_runs > fixed_runs {
            fail(&format!(
                "adaptive gate: {app} executed more runs than the fixed grid \
                 ({adaptive_runs} vs {fixed_runs})"
            ));
        }
        let bugs = bug_list(&fixed).matches("\"kind\":").count();
        let cut = 100.0 * (1.0 - adaptive_runs as f64 / fixed_runs.max(1) as f64);
        eprintln!(
            "    {app}: {bugs} bugs at {adaptive_runs}/{fixed_runs} runs ({cut:.1}% fewer)"
        );
        fixed_total += fixed_runs;
        adaptive_total += adaptive_runs;
        app_docs.push(format!(
            "{{\"app\": \"{app}\", \"bugs\": {bugs}, \"fixed_runs\": {fixed_runs}, \
             \"adaptive_runs\": {adaptive_runs}, \"reduction_pct\": {cut:.1}}}"
        ));
    }
    let reduction = 1.0 - adaptive_total as f64 / fixed_total.max(1) as f64;
    if reduction < 0.40 {
        fail(&format!(
            "adaptive gate: aggregate run reduction {:.1}% is below the 40% floor \
             ({adaptive_total}/{fixed_total} runs)",
            100.0 * reduction
        ));
    }
    eprintln!(
        "    aggregate: {adaptive_total}/{fixed_total} runs ({:.1}% fewer) at 100% recall",
        100.0 * reduction
    );

    eprintln!("==> adaptive gate: profile-cache cold vs warm (paper scale)");
    let cache = work.join("profile-cache");
    let cache_arg = cache.to_string_lossy().into_owned();
    let bench_args =
        ["bench", "--jobs", "2", "--iters", "1", "--scale", "paper", "--profile-cache", &cache_arg];
    let cold = run_wasabi(&wasabi, &bench_args);
    let warm = run_wasabi(&wasabi, &bench_args);
    let cold_wall = extract_number(extract_section(&cold, "totals"), "\"wall_ms\":");
    let warm_wall = extract_number(extract_section(&warm, "totals"), "\"wall_ms\":");
    if warm_wall > 0.70 * cold_wall {
        fail(&format!(
            "adaptive gate: warm profile cache cut the bench wall by less than 30% \
             ({warm_wall:.0}ms warm vs {cold_wall:.0}ms cold)"
        ));
    }
    eprintln!(
        "    profile cache: {cold_wall:.0}ms cold -> {warm_wall:.0}ms warm \
         ({:.1}% faster)",
        100.0 * (1.0 - warm_wall / cold_wall)
    );

    let doc = format!(
        "{{\n  \"harness\": \"cargo xtask adaptive-gate (wasabi test --jobs 2 fixed vs \
         --adaptive over all 8 corpus apps; wasabi bench --scale paper --iters 1 with a \
         cold then warm --profile-cache)\",\n  \"apps\": [\n    {}\n  ],\n  \"totals\": {{\n    \
         \"fixed_runs\": {fixed_total},\n    \"adaptive_runs\": {adaptive_total},\n    \
         \"reduction_pct\": {:.1},\n    \"recall\": 1.0\n  }},\n  \"profile_cache\": {{\n    \
         \"cold_wall_ms\": {cold_wall:.1},\n    \"warm_wall_ms\": {warm_wall:.1},\n    \
         \"warm_over_cold\": {:.3}\n  }}\n}}\n",
        app_docs.join(",\n    "),
        100.0 * reduction,
        warm_wall / cold_wall
    );
    fs::write(ADAPTIVE_BENCH_OUT, doc)
        .unwrap_or_else(|e| fail(&format!("write {ADAPTIVE_BENCH_OUT}: {e}")));
    let _ = fs::remove_dir_all(&work);
    eprintln!("adaptive gate: OK (wrote {ADAPTIVE_BENCH_OUT})");
}

/// The auto-repair gate: `wasabi repair` over all eight corpus apps
/// (small scale, amplification seeds included) must fix at least
/// [`REPAIR_RATE_FLOOR`]% of the fixable seeded bugs — in aggregate and
/// per class — within the default 3 attempts, and the report must be
/// byte-identical between `--jobs 1` and `--jobs 4`.
fn repair_gate() {
    eprintln!("==> repair gate: auto-repair fix rate over the seeded corpus");
    let wasabi = release_wasabi();
    let work = env::temp_dir().join(format!("wasabi-repair-gate-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work).unwrap_or_else(|e| fail(&format!("create work dir: {e}")));
    let cache = work.join("profile-cache");
    let cache_arg = cache.to_string_lossy().into_owned();

    // Runs `wasabi repair <args>` tolerating exit 1 (unfixed targets
    // remain — the gate scores the fix rate itself, not the exit code).
    let run_repair = |args: &[&str]| {
        let output = Command::new(&wasabi)
            .arg("repair")
            .args(args)
            .output()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi repair: {e}")));
        let code = output.status.code().unwrap_or(-1);
        if !(0..=1).contains(&code) {
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
            fail(&format!("wasabi repair {} exited {code}", args.join(" ")));
        }
    };

    // `(attempts, fixed)` buckets of the report's attempts histogram.
    let histogram_entries = |report: &str| -> Vec<(u64, u64)> {
        let start = report
            .find("\"attempts_histogram\":")
            .unwrap_or_else(|| fail("repair gate: report has no attempts histogram"));
        let section = &report[start..];
        let end = section
            .find(']')
            .unwrap_or_else(|| fail("repair gate: malformed attempts histogram"));
        section[..end]
            .split("\"attempts\":")
            .skip(1)
            .map(|chunk| {
                let attempts = chunk
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse::<u64>()
                    .unwrap_or_else(|e| fail(&format!("repair gate: bad histogram bucket: {e}")));
                (attempts, extract_number(chunk, "\"fixed\":") as u64)
            })
            .collect()
    };

    let mut class_agg: Vec<(&str, u64, u64)> =
        vec![("W001", 0, 0), ("W002", 0, 0), ("A001", 0, 0)];
    let mut histogram: Vec<(u64, u64)> = Vec::new();
    let mut app_docs = Vec::new();
    let (mut total_fixable, mut total_fixed) = (0u64, 0u64);
    let (mut total_targets, mut total_targets_fixed) = (0u64, 0u64);
    for app in ADAPTIVE_APPS {
        let jobs1 = work.join(format!("{app}-jobs1.json"));
        let jobs4 = work.join(format!("{app}-jobs4.json"));
        for (jobs, path) in [("1", &jobs1), ("4", &jobs4)] {
            run_repair(&[
                "--corpus",
                app,
                "--amp",
                "--scale",
                "small",
                "--jobs",
                jobs,
                "--profile-cache",
                &cache_arg,
                "--report",
                &path.to_string_lossy(),
            ]);
        }
        let one = fs::read(&jobs1).unwrap_or_else(|e| fail(&format!("read {app} report: {e}")));
        let four = fs::read(&jobs4).unwrap_or_else(|e| fail(&format!("read {app} report: {e}")));
        if one != four {
            fail(&format!("repair gate: {app} report differs between --jobs 1 and --jobs 4"));
        }
        let report = String::from_utf8(one)
            .unwrap_or_else(|e| fail(&format!("{app} report not utf-8: {e}")));

        // Per-class `fixable`/`fixed` from the ground-truth section (the
        // class objects directly follow their `"code"` key).
        let truth = extract_section(&report, "truth");
        let (mut app_fixable, mut app_fixed) = (0u64, 0u64);
        for (code, fixable, fixed) in &mut class_agg {
            let at = truth
                .find(&format!("\"code\": \"{code}\""))
                .unwrap_or_else(|| fail(&format!("repair gate: {app} truth has no {code} class")));
            let class = &truth[at..];
            let class_fixable = extract_number(class, "\"fixable\":") as u64;
            let class_fixed = extract_number(class, "\"fixed\":") as u64;
            *fixable += class_fixable;
            *fixed += class_fixed;
            app_fixable += class_fixable;
            app_fixed += class_fixed;
        }
        // Lint reports more targets than the seeded ground truth (clean
        // structures can still lack a delay, say); the histogram counts
        // *targets*, so the curve is scored over that population.
        let summary = extract_section(&report, "summary");
        total_targets += extract_number(summary, "\"targets\":") as u64;
        total_targets_fixed += extract_number(summary, "\"fixed\":") as u64;
        for (attempts, fixed) in histogram_entries(&report) {
            match histogram.iter_mut().find(|(n, _)| *n == attempts) {
                Some((_, total)) => *total += fixed,
                None => histogram.push((attempts, fixed)),
            }
        }
        let rate = extract_number(truth, "\"fix_rate_percent\":") as u64;
        eprintln!("    {app}: {app_fixed}/{app_fixable} fixable bugs fixed ({rate}%)");
        total_fixable += app_fixable;
        total_fixed += app_fixed;
        app_docs.push(format!(
            "{{\"app\": \"{app}\", \"fixable\": {app_fixable}, \"fixed\": {app_fixed}, \
             \"fix_rate_percent\": {rate}}}"
        ));
    }

    let aggregate_rate = if total_fixable == 0 {
        fail("repair gate: corpus seeded no fixable bugs");
    } else {
        total_fixed * 100 / total_fixable
    };
    if aggregate_rate < REPAIR_RATE_FLOOR {
        fail(&format!(
            "repair gate: aggregate fix rate {aggregate_rate}% \
             ({total_fixed}/{total_fixable}) is below the {REPAIR_RATE_FLOOR}% floor"
        ));
    }
    for (code, fixable, fixed) in &class_agg {
        if *fixable == 0 {
            fail(&format!("repair gate: corpus seeded no fixable {code} bugs"));
        }
        let rate = fixed * 100 / fixable;
        if rate < REPAIR_RATE_FLOOR {
            fail(&format!(
                "repair gate: {code} fix rate {rate}% ({fixed}/{fixable}) \
                 is below the {REPAIR_RATE_FLOOR}% floor"
            ));
        }
    }
    eprintln!(
        "    aggregate: {total_fixed}/{total_fixable} fixed ({aggregate_rate}%) \
         across {} apps, reports byte-identical across --jobs",
        ADAPTIVE_APPS.len()
    );

    // Attempts-vs-fix-rate curve: cumulative share of all lint targets
    // fixed within <= n validated candidate patches (bucket 0 counts
    // targets fixed as a side effect of an earlier patch).
    histogram.sort_unstable();
    let mut cumulative = 0u64;
    let curve: Vec<String> = histogram
        .iter()
        .map(|(attempts, fixed)| {
            cumulative += fixed;
            format!(
                "{{\"max_attempts\": {attempts}, \"fixed\": {cumulative}, \
                 \"rate_percent\": {}}}",
                cumulative * 100 / total_targets.max(1)
            )
        })
        .collect();
    let classes: Vec<String> = class_agg
        .iter()
        .map(|(code, fixable, fixed)| {
            format!(
                "{{\"code\": \"{code}\", \"fixable\": {fixable}, \"fixed\": {fixed}, \
                 \"fix_rate_percent\": {}}}",
                fixed * 100 / fixable
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"harness\": \"cargo xtask repair-gate (wasabi repair --corpus APP --amp \
         --scale small over all 8 corpus apps, --jobs 1 vs --jobs 4 byte-compared, \
         default 3 fix attempts)\",\n  \"apps\": [\n    {}\n  ],\n  \"classes\": [\n    {}\n  ],\n  \
         \"attempts_curve\": [\n    {}\n  ],\n  \"totals\": {{\n    \"fixable\": {total_fixable},\n    \
         \"fixed\": {total_fixed},\n    \"fix_rate_percent\": {aggregate_rate},\n    \
         \"targets\": {total_targets},\n    \"targets_fixed\": {total_targets_fixed},\n    \
         \"floor_percent\": {REPAIR_RATE_FLOOR}\n  }}\n}}\n",
        app_docs.join(",\n    "),
        classes.join(",\n    "),
        curve.join(",\n    ")
    );
    fs::write(REPAIR_BENCH_OUT, doc)
        .unwrap_or_else(|e| fail(&format!("write {REPAIR_BENCH_OUT}: {e}")));
    let _ = fs::remove_dir_all(&work);
    eprintln!("repair gate: OK (wrote {REPAIR_BENCH_OUT})");
}

/// The retry-policy abstract-interpretation gate (CI stage 10):
/// regenerate all eight corpus apps with the amplification *and* policy
/// seeds, require the `wasabi lint --json --cross-check` report to be
/// byte-identical between `--jobs 1` and `--jobs 4`, and score the
/// W004/W005/W006 diagnostics against the `policy_truth.json` sidecars —
/// at least 0.9 precision and recall per code, the same bar the A001
/// test gate sets. Writes `BENCH_PR10.json` with per-app static-sweep
/// wall times and the per-code score table.
fn policy_lint_gate() {
    eprintln!("==> lint gate: W004-W006 precision/recall over the policy-seeded corpus");
    let wasabi = release_wasabi()
        .canonicalize()
        .unwrap_or_else(|e| fail(&format!("canonicalize wasabi path: {e}")));
    let work = env::temp_dir().join(format!("wasabi-lint-gate-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);

    // `(code, true_positives, genuine, reported)` per new checker.
    let mut scores: Vec<(&str, u64, u64, u64)> =
        vec![("W004", 0, 0, 0), ("W005", 0, 0, 0), ("W006", 0, 0, 0)];
    let mut app_rows = Vec::new();
    for app in ADAPTIVE_APPS {
        let app_dir = work.join(app);
        let status = Command::new(&wasabi)
            .args(["corpus", app, "--amp", "--policy"])
            .arg(&app_dir)
            .status()
            .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
        if !status.success() {
            fail(&format!("wasabi corpus {app} --amp --policy failed"));
        }
        let mut files = Vec::new();
        collect_jav(&app_dir, &mut files);
        files.sort();
        let rel: Vec<PathBuf> = files
            .iter()
            .map(|f| f.strip_prefix(&work).expect("file under work dir").to_path_buf())
            .collect();

        let start = std::time::Instant::now();
        let serial =
            run_wasabi_lint_in(&wasabi, &work, &["--json", "--cross-check", "--jobs", "1"], &rel);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let parallel =
            run_wasabi_lint_in(&wasabi, &work, &["--json", "--cross-check", "--jobs", "4"], &rel);
        if serial.1 != parallel.1 {
            fail(&format!(
                "lint gate: {app} cross-check report differs between --jobs 1 and --jobs 4"
            ));
        }
        let report = serial.1;
        if !report.contains("\"cross_check\"") || !report.contains("static-only") {
            fail(&format!("lint gate: {app} report is missing the agreement matrix"));
        }

        // The diagnostics array ends at the "suppressed" counter that
        // follows it; the cross_check section repeats codes and files and
        // must not leak into the scoring.
        let diag_end = report
            .find("\"suppressed\"")
            .unwrap_or_else(|| fail(&format!("lint gate: {app} report has no diagnostics")));
        let diags: Vec<(String, String, String)> = report[..diag_end]
            .split("\"code\":")
            .skip(1)
            .map(|chunk| {
                (
                    extract_string(chunk, ""),
                    extract_string(chunk, "\"file\":"),
                    extract_string(chunk, "\"coordinator\":"),
                )
            })
            .collect();

        let truth = fs::read_to_string(app_dir.join("policy_truth.json"))
            .unwrap_or_else(|e| fail(&format!("read {app} policy_truth.json: {e}")));
        let mut seeded = 0usize;
        let mut policy_files = Vec::new();
        let mut seeds = Vec::new();
        for chunk in truth.split("\"id\":").skip(1) {
            let code = extract_string(chunk, "\"code\":");
            // Diagnostics anchor on the CLI-relative path `<APP>/<file>`.
            let file = format!("{app}/{}", extract_string(chunk, "\"file\":"));
            let coordinator = extract_string(chunk, "\"coordinator\":");
            let genuine = chunk
                .find("\"genuine\":")
                .map(|at| chunk[at..].contains("true"))
                .unwrap_or_else(|| fail(&format!("lint gate: {app} seed lacks genuine flag")));
            seeded += 1;
            policy_files.push(file.clone());
            seeds.push((code, file, coordinator, genuine));
        }
        if seeded == 0 {
            fail(&format!("lint gate: {app} policy_truth.json seeded nothing"));
        }

        let mut app_diags = 0u64;
        for (code, tp, genuine_total, reported) in &mut scores {
            let found: Vec<_> = diags
                .iter()
                .filter(|(c, f, _)| c == code && policy_files.contains(f))
                .collect();
            *reported += found.len() as u64;
            app_diags += found.len() as u64;
            for (_, file, coordinator, genuine) in seeds.iter().filter(|(c, ..)| c == code) {
                let matched = found.iter().any(|(_, f, m)| f == file && m == coordinator);
                if *genuine {
                    *genuine_total += 1;
                    *tp += matched as u64;
                } else if matched {
                    fail(&format!("lint gate: {app} decoy {coordinator} was reported as {code}"));
                }
            }
        }
        eprintln!(
            "    {app}: {} files, {app_diags} policy diagnostics, identical across jobs=1/4, {wall_ms:.1} ms",
            rel.len()
        );
        app_rows.push(format!(
            "{{\"app\": \"{app}\", \"files\": {}, \"policy_diagnostics\": {app_diags}, \
             \"wall_ms\": {wall_ms:.1}}}",
            rel.len()
        ));
    }
    let _ = fs::remove_dir_all(&work);

    let mut code_rows = Vec::new();
    for (code, tp, genuine, reported) in &scores {
        if *genuine == 0 || *reported == 0 {
            fail(&format!("lint gate: {code} has an empty measurement"));
        }
        let precision = *tp as f64 / *reported as f64;
        let recall = *tp as f64 / *genuine as f64;
        if precision < 0.9 {
            fail(&format!(
                "lint gate: {code} precision {precision:.2} ({tp}/{reported}) is below 0.9"
            ));
        }
        if recall < 0.9 {
            fail(&format!(
                "lint gate: {code} recall {recall:.2} ({tp}/{genuine}) is below 0.9"
            ));
        }
        eprintln!(
            "    {code}: precision {precision:.2} ({tp}/{reported}), recall {recall:.2} ({tp}/{genuine})"
        );
        code_rows.push(format!(
            "{{\"code\": \"{code}\", \"true_positives\": {tp}, \"genuine\": {genuine}, \
             \"reported\": {reported}, \"precision\": {precision:.2}, \"recall\": {recall:.2}}}"
        ));
    }
    let doc = format!(
        "{{\n  \"harness\": \"cargo xtask lint-gate (wasabi lint --json --cross-check over all \
         8 corpus apps with --amp --policy seeds, --jobs 1 vs --jobs 4 byte-compared, scored \
         against policy_truth.json)\",\n  \"apps\": [\n    {}\n  ],\n  \"codes\": [\n    {}\n  ],\n  \
         \"floor\": {{\"precision\": 0.9, \"recall\": 0.9}}\n}}\n",
        app_rows.join(",\n    "),
        code_rows.join(",\n    ")
    );
    fs::write(POLICY_BENCH_OUT, doc)
        .unwrap_or_else(|e| fail(&format!("write {POLICY_BENCH_OUT}: {e}")));
    eprintln!("lint gate: OK (wrote {POLICY_BENCH_OUT})");
}

/// Parses the first `<key> "<string>"` after `doc`'s start (an empty key
/// reads the first quoted string).
fn extract_string(doc: &str, key: &str) -> String {
    let start = doc
        .find(key)
        .unwrap_or_else(|| fail(&format!("lint gate: no {key} in report")));
    let rest = &doc[start + key.len()..];
    let open = rest
        .find('"')
        .unwrap_or_else(|| fail(&format!("lint gate: malformed {key} value")));
    rest[open + 1..]
        .split('"')
        .next()
        .unwrap_or_default()
        .to_string()
}

fn release_wasabi() -> PathBuf {
    let wasabi = PathBuf::from("target/release/wasabi");
    if !wasabi.exists() {
        fail(&format!("{} not built", wasabi.display()));
    }
    wasabi
}

/// Runs `wasabi <args>` and returns stdout; any failure exit code aborts.
fn run_wasabi(wasabi: &Path, args: &[&str]) -> String {
    let output = Command::new(wasabi)
        .args(args)
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi {}: {e}", args.join(" "))));
    if !output.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        fail(&format!("wasabi {} failed", args.join(" ")));
    }
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// FNV-1a 64-bit, matching `wasabi_util::fnv` (xtask stays dependency-free).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Pulls the `"serial"`/`"parallel"` object out of a composed measurement
/// document (top-level key match; good enough for our own format).
fn extract_section<'a>(doc: &'a str, section: &str) -> &'a str {
    let key = format!("\"{section}\":");
    let start = doc
        .find(&key)
        .unwrap_or_else(|| fail(&format!("bench: no `{section}` section in measurement")));
    &doc[start..]
}

/// Parses the first `"runs_per_sec": <number>` after `doc`'s start.
fn extract_runs_per_sec(doc: &str) -> f64 {
    extract_number(doc, "\"runs_per_sec\":")
}

/// Parses the first `<key> <number>` after `doc`'s start.
fn extract_number(doc: &str, key: &str) -> f64 {
    let start = doc
        .find(key)
        .unwrap_or_else(|| fail(&format!("bench: no {key} in measurement")));
    let rest = doc[start + key.len()..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse::<f64>()
        .unwrap_or_else(|e| fail(&format!("bench: bad {key} value `{}`: {e}", &rest[..end])))
}

/// Sums every numeric value in the first `"phases": {...}` object after
/// `doc`'s start (the bench per-phase wall-time breakdown, in ms).
fn sum_phase_ms(doc: &str) -> f64 {
    let start = doc
        .find("\"phases\":")
        .unwrap_or_else(|| fail("bench: no phases object in measurement"));
    let rest = &doc[start..];
    let open = rest
        .find('{')
        .unwrap_or_else(|| fail("bench: malformed phases object"));
    let close = rest[open..]
        .find('}')
        .unwrap_or_else(|| fail("bench: malformed phases object"))
        + open;
    rest[open + 1..close]
        .split(',')
        .filter_map(|entry| entry.rsplit(':').next())
        .filter_map(|number| number.trim().parse::<f64>().ok())
        .sum()
}

/// Re-indents a JSON document by `by` extra spaces (cosmetic nesting).
fn indent_json(doc: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    doc.trim()
        .lines()
        .enumerate()
        .map(|(i, line)| if i == 0 { line.to_string() } else { format!("{pad}{line}") })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs `wasabi test <flags> <files>` and returns stdout. Exit code 1
/// (bugs found) is success for the smoke — only codes ≥ 2 are errors.
fn run_wasabi_test(wasabi: &Path, flags: &[&str], files: &[PathBuf]) -> String {
    run_wasabi_test_in(wasabi, Path::new("."), flags, files)
}

/// [`run_wasabi_test`] with an explicit working directory (`wasabi` must
/// then be an absolute path).
fn run_wasabi_test_in(wasabi: &Path, cwd: &Path, flags: &[&str], files: &[PathBuf]) -> String {
    let output = Command::new(wasabi)
        .current_dir(cwd)
        .arg("test")
        .args(flags)
        .args(files)
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi test: {e}")));
    let code = output.status.code().unwrap_or(-1);
    if code != 0 && code != 1 {
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        fail(&format!("wasabi test exited with code {code}"));
    }
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn collect_jav(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_jav(&path, files);
        } else if path.extension().is_some_and(|ext| ext == "jav") {
            files.push(path);
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("smoke: {message}");
    exit(1);
}
