//! Workspace automation: `cargo tier1` and `cargo xtask <task>`.
//!
//! Cargo aliases cannot chain commands, so the `tier1` alias in
//! `.cargo/config.toml` runs this binary, which shells out to cargo for
//! each stage. Tasks:
//!
//! - `tier1` — the tier-1 verification gate: `cargo build --release`
//!   followed by `cargo test -q --workspace`, then the resilience smoke.
//!   Fails fast on the first failing stage.
//! - `ci`    — tier1 plus `cargo build --all-features` and the
//!   all-features test suite (every feature is offline-safe in this
//!   workspace, so both extra stages must pass too).
//! - `smoke` — the resilience smoke on its own: a chaos campaign
//!   (10% injected run panics, `--jobs 4`) whose `--json` report must be
//!   byte-identical to the serial run's, and a kill-and-resume round-trip
//!   (journal a campaign, cut the journal mid-line as a killed process
//!   would leave it, resume) whose report must be byte-identical to the
//!   uninterrupted baseline.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{exit, Command};

fn main() {
    let task = env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: cargo xtask <tier1|ci|smoke>");
        exit(2);
    });
    match task.as_str() {
        "tier1" => {
            run_stage("build --release", &["build", "--release"]);
            run_stage("test -q --workspace", &["test", "-q", "--workspace"]);
            smoke();
            eprintln!("tier1: OK");
        }
        "ci" => {
            run_stage("build --release", &["build", "--release"]);
            run_stage("test -q --workspace", &["test", "-q", "--workspace"]);
            run_stage("build --all-features", &["build", "--all-features"]);
            run_stage(
                "test -q --workspace --all-features",
                &["test", "-q", "--workspace", "--all-features"],
            );
            smoke();
            eprintln!("ci: OK");
        }
        "smoke" => {
            run_stage("build --release --bin wasabi", &["build", "--release", "--bin", "wasabi"]);
            smoke();
        }
        other => {
            eprintln!("unknown task `{other}`; expected tier1, ci, or smoke");
            exit(2);
        }
    }
}

fn run_stage(label: &str, args: &[&str]) {
    eprintln!("==> cargo {label}");
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(args)
        .status()
        .unwrap_or_else(|e| {
            eprintln!("failed to spawn cargo: {e}");
            exit(1);
        });
    if !status.success() {
        eprintln!("stage `cargo {label}` failed");
        exit(status.code().unwrap_or(1));
    }
}

/// The resilience smoke. Assumes `target/release/wasabi` is built (the
/// callers run `cargo build --release` first).
fn smoke() {
    eprintln!("==> smoke: chaos campaign + kill-and-resume round-trip");
    let wasabi = Path::new("target/release/wasabi");
    if !wasabi.exists() {
        eprintln!("smoke: {} not built", wasabi.display());
        exit(1);
    }
    let work = env::temp_dir().join(format!("wasabi-smoke-{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work).unwrap_or_else(|e| fail(&format!("create {}: {e}", work.display())));

    // A real corpus app as the smoke workload.
    let app_dir = work.join("app");
    let status = Command::new(wasabi)
        .args(["corpus", "HD"])
        .arg(&app_dir)
        .status()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi corpus: {e}")));
    if !status.success() {
        fail("wasabi corpus failed");
    }
    let mut files = Vec::new();
    collect_jav(&app_dir, &mut files);
    files.sort();
    if files.is_empty() {
        fail("corpus produced no .jav files");
    }

    // Chaos smoke: 10% injected run panics must not break the engine's
    // determinism contract — the JSON report is byte-identical across
    // worker counts.
    let chaos = |jobs: &str| {
        run_wasabi_test(
            wasabi,
            &["--quiet", "--json", "--chaos-panic", "0.1", "--jobs", jobs],
            &files,
        )
    };
    let serial = chaos("1");
    let parallel = chaos("4");
    if serial != parallel {
        fail("chaos smoke: report differs between --jobs 1 and --jobs 4");
    }
    eprintln!("    chaos report identical across jobs=1/4 ({} bytes)", serial.len());

    // Kill-and-resume: journal a full campaign, then cut the journal the
    // way a killed process leaves it (half the lines, last one torn
    // mid-write) and resume from the cut. The resumed report must be
    // byte-identical to the uninterrupted baseline.
    let full_journal = work.join("full.jsonl");
    let baseline = run_wasabi_test(
        wasabi,
        &["--quiet", "--json", "--jobs", "2", "--journal", full_journal.to_str().unwrap()],
        &files,
    );
    if baseline.is_empty() {
        fail("kill-and-resume: baseline report is empty");
    }
    let text = fs::read_to_string(&full_journal)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", full_journal.display())));
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    if lines.len() < 4 {
        fail("kill-and-resume: journal too small to cut");
    }
    let mut cut: String = lines[..lines.len() / 2].concat();
    cut.truncate(cut.len().saturating_sub(5)); // tear the last line
    let cut_journal = work.join("cut.jsonl");
    fs::write(&cut_journal, &cut)
        .unwrap_or_else(|e| fail(&format!("write {}: {e}", cut_journal.display())));
    let resumed = run_wasabi_test(
        wasabi,
        &["--quiet", "--json", "--jobs", "4", "--resume", cut_journal.to_str().unwrap()],
        &files,
    );
    if resumed != baseline {
        fail("kill-and-resume: resumed report differs from the uninterrupted baseline");
    }
    eprintln!("    resumed report identical to baseline ({} bytes)", baseline.len());

    let _ = fs::remove_dir_all(&work);
    eprintln!("smoke: OK");
}

/// Runs `wasabi test <flags> <files>` and returns stdout. Exit code 1
/// (bugs found) is success for the smoke — only codes ≥ 2 are errors.
fn run_wasabi_test(wasabi: &Path, flags: &[&str], files: &[PathBuf]) -> String {
    let output = Command::new(wasabi)
        .arg("test")
        .args(flags)
        .args(files)
        .output()
        .unwrap_or_else(|e| fail(&format!("spawn wasabi test: {e}")));
    let code = output.status.code().unwrap_or(-1);
    if code != 0 && code != 1 {
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        fail(&format!("wasabi test exited with code {code}"));
    }
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn collect_jav(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_jav(&path, files);
        } else if path.extension().is_some_and(|ext| ext == "jav") {
            files.push(path);
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("smoke: {message}");
    exit(1);
}
