//! Workspace automation: `cargo tier1` and `cargo xtask <task>`.
//!
//! Cargo aliases cannot chain commands, so the `tier1` alias in
//! `.cargo/config.toml` runs this binary, which shells out to cargo for
//! each stage. Tasks:
//!
//! - `tier1` — the tier-1 verification gate: `cargo build --release`
//!   followed by `cargo test -q --workspace`, both with default
//!   (offline-safe) features. Fails fast on the first failing stage.
//! - `ci`    — tier1 plus `cargo build --all-features` and the
//!   all-features test suite (every feature is offline-safe in this
//!   workspace, so both extra stages must pass too).

use std::env;
use std::process::{exit, Command};

fn main() {
    let task = env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: cargo xtask <tier1|ci>");
        exit(2);
    });
    match task.as_str() {
        "tier1" => {
            run_stage("build --release", &["build", "--release"]);
            run_stage("test -q --workspace", &["test", "-q", "--workspace"]);
            eprintln!("tier1: OK");
        }
        "ci" => {
            run_stage("build --release", &["build", "--release"]);
            run_stage("test -q --workspace", &["test", "-q", "--workspace"]);
            run_stage("build --all-features", &["build", "--all-features"]);
            run_stage(
                "test -q --workspace --all-features",
                &["test", "-q", "--workspace", "--all-features"],
            );
            eprintln!("ci: OK");
        }
        other => {
            eprintln!("unknown task `{other}`; expected tier1 or ci");
            exit(2);
        }
    }
}

fn run_stage(label: &str, args: &[&str]) {
    eprintln!("==> cargo {label}");
    let cargo = env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = Command::new(cargo)
        .args(args)
        .status()
        .unwrap_or_else(|e| {
            eprintln!("failed to spawn cargo: {e}");
            exit(1);
        });
    if !status.success() {
        eprintln!("stage `cargo {label}` failed");
        exit(status.code().unwrap_or(1));
    }
}
