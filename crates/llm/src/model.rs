//! The `LanguageModel` trait and API-usage accounting.

use crate::prompts::Prompt;

/// A yes/no answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// Affirmative.
    Yes,
    /// Negative.
    No,
}

impl Answer {
    /// Whether the answer is yes.
    pub fn is_yes(self) -> bool {
        self == Answer::Yes
    }
}

/// Cumulative API usage, mirroring the paper's cost accounting (§4.3):
/// number of calls, data volume, token count, and dollar cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    /// API calls made.
    pub calls: u64,
    /// Bytes sent across all calls.
    pub bytes_sent: u64,
    /// Prompt tokens (≈ bytes / 4.8, the paper's 16 MB ↔ 3.3 M tokens).
    pub tokens: u64,
}

/// Dollars per million prompt tokens. Calibrated so that the paper's median
/// per-application volume (3.3 M tokens) costs about 8 USD.
pub const USD_PER_MILLION_TOKENS: f64 = 2.4;

impl Usage {
    /// Records one call that sent `bytes` bytes.
    pub fn record(&mut self, bytes: usize) {
        self.calls += 1;
        self.bytes_sent += bytes as u64;
        // The paper's observed ratio: 16 MB ≈ 3.3 M tokens (~4.8 bytes per
        // token for code-heavy prompts).
        self.tokens += (bytes as u64 * 10) / 48;
    }

    /// Estimated dollar cost at [`USD_PER_MILLION_TOKENS`].
    pub fn cost_usd(&self) -> f64 {
        self.tokens as f64 / 1_000_000.0 * USD_PER_MILLION_TOKENS
    }

    /// Adds another usage record into this one.
    pub fn absorb(&mut self, other: &Usage) {
        self.calls += other.calls;
        self.bytes_sent += other.bytes_sent;
        self.tokens += other.tokens;
    }
}

/// An LLM that can answer WASABI's prompts.
///
/// The shipped implementation is [`crate::simulated::SimulatedLlm`], a
/// deterministic fuzzy-text-comprehension model; an API-backed client can
/// implement this trait without any other change to the pipeline.
pub trait LanguageModel {
    /// Answers a yes/no prompt (Q1–Q4).
    fn ask_yes_no(&mut self, prompt: &Prompt) -> Answer;

    /// Answers the Q1 follow-up: method names implementing retry.
    fn ask_methods(&mut self, prompt: &Prompt) -> Vec<String>;

    /// Cumulative usage so far.
    fn usage(&self) -> Usage;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_accumulates_and_prices() {
        let mut usage = Usage::default();
        usage.record(4800);
        usage.record(4800);
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.bytes_sent, 9600);
        assert_eq!(usage.tokens, 2000);
        let cost = usage.cost_usd();
        assert!((cost - 2000.0 / 1e6 * USD_PER_MILLION_TOKENS).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_volume_costs_about_eight_dollars() {
        let mut usage = Usage::default();
        // 16 MB across ~2600 calls.
        for _ in 0..2600 {
            usage.record(16_000_000 / 2600);
        }
        assert!((usage.tokens as f64 - 3.33e6).abs() < 0.1e6, "tokens: {}", usage.tokens);
        assert!((usage.cost_usd() - 8.0).abs() < 0.5, "cost: {}", usage.cost_usd());
    }

    #[test]
    fn absorb_merges_usage() {
        let mut a = Usage::default();
        a.record(100);
        let mut b = Usage::default();
        b.record(200);
        a.absorb(&b);
        assert_eq!(a.calls, 2);
        assert_eq!(a.bytes_sent, 300);
    }
}
