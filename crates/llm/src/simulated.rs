//! A deterministic simulated LLM with calibrated imperfections.
//!
//! `SimulatedLlm` answers the WASABI prompts using only *non-structural*
//! evidence from the raw source text — identifier names, comments, string
//! literals, and keyword co-occurrence — never the AST. This mirrors the
//! paper's observation that fuzzy code comprehension finds retry where
//! program analysis cannot (queues, state machines, loops without keyword
//! names), and it reproduces GPT-4's documented error modes:
//!
//! - **recall cliff on large files** (§4.2: 100 retry loops missed, located
//!   in files ~2× the size of detected ones);
//! - **poll / spin-lock / retry-named-parameter false positives** (§4.2–4.3);
//! - **single-file blindness**: a delay implemented by a helper defined in a
//!   different file is invisible (§4.3);
//! - **occasional miscomprehension** of caps and delays (§4.3).
//!
//! All randomness is a pure function of `(seed, file path, question)`, so
//! every run over the same corpus gives identical answers.

use crate::model::{Answer, LanguageModel, Usage};
use crate::prompts::{Prompt, Question};
use std::collections::HashMap;

/// What the model "remembers" about a file after reading it once.
#[derive(Debug, Clone, Default)]
struct FileComprehension {
    signals: TextSignals,
    /// Methods whose body region reads like retry, in source order.
    retry_methods: Vec<String>,
}

/// Splits raw text into `(method name, body text)` regions by scanning for
/// `method NAME(` / `test NAME(` declarations — a purely textual view.
fn method_regions(text: &str) -> Vec<(String, String)> {
    let mut decls: Vec<(usize, String)> = Vec::new();
    for keyword in ["method ", "test "] {
        let mut from = 0;
        while let Some(pos) = text[from..].find(keyword) {
            let at = from + pos;
            let rest = &text[at + keyword.len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '$')
                .collect();
            if !name.is_empty() && rest[name.len()..].trim_start().starts_with('(') {
                decls.push((at, name));
            }
            from = at + keyword.len();
        }
    }
    decls.sort();
    let mut out = Vec::new();
    for (i, (start, name)) in decls.iter().enumerate() {
        let end = decls.get(i + 1).map(|(e, _)| *e).unwrap_or(text.len());
        out.push((name.clone(), text[*start..end].to_string()));
    }
    out
}

/// Tunable error-rate profile for the simulated model.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// File size (bytes) beyond which the model starts missing retry.
    pub large_file_bytes: usize,
    /// How fast the miss probability grows past the threshold (bytes per
    /// +100% probability unit).
    pub miss_slope_bytes: usize,
    /// Upper bound on the large-file miss probability.
    pub max_miss_prob: f64,
    /// Probability of labeling a poll/spin file as retry (Q1 false
    /// positive).
    pub poll_fp_rate: f64,
    /// Probability of labeling a file that merely parses retry-named
    /// parameters as retry.
    pub param_fp_rate: f64,
    /// Probability of flipping a Yes answer to Q2/Q3 into No (manufactures
    /// a false WHEN finding — the paper's "miscomprehension" FP mode).
    pub flip_yes_rate: f64,
    /// Probability of flipping a No answer to Q2/Q3 into Yes (loses a true
    /// finding). Lower: the paper's detector errs toward over-reporting.
    pub flip_no_rate: f64,
    /// Probability Q4 fails to recognize poll behaviour it should exclude.
    pub q4_miss_rate: f64,
}

impl Default for SimProfile {
    fn default() -> Self {
        SimProfile {
            large_file_bytes: 6_000,
            miss_slope_bytes: 5_000,
            max_miss_prob: 0.95,
            poll_fp_rate: 0.35,
            param_fp_rate: 0.25,
            flip_yes_rate: 0.09,
            flip_no_rate: 0.03,
            q4_miss_rate: 0.45,
        }
    }
}

/// Non-structural signals extracted from raw source text.
#[derive(Debug, Clone, Default)]
pub struct TextSignals {
    /// Retry-family keyword anywhere (identifier, comment, or string).
    pub retry_keyword: bool,
    /// A `catch (` occurs.
    pub has_catch: bool,
    /// A loop keyword occurs.
    pub has_loop: bool,
    /// A queue re-enqueue (`.put(`/`.putDelayed(`) occurs *after* a catch.
    pub reenqueue_after_catch: bool,
    /// A `switch`/`case` state machine occurs.
    pub has_state_machine: bool,
    /// A sleep / delayed-scheduling call occurs.
    pub has_sleep: bool,
    /// A backoff/delay helper is *called*.
    pub calls_delay_helper: bool,
    /// A backoff/delay helper with a sleep is *defined in this file*.
    pub defines_delay_helper: bool,
    /// Poll / spin-lock / compare-and-set vocabulary occurs.
    pub has_poll: bool,
    /// A comparison close to a cap-ish identifier occurs.
    pub has_cap_comparison: bool,
    /// Error-code vocabulary ("error code", "errcode", "err_") occurs.
    pub has_error_code: bool,
    /// File size in bytes.
    pub bytes: usize,
}

impl TextSignals {
    /// Extracts signals from raw source text.
    pub fn extract(text: &str) -> TextSignals {
        let lower = text.to_lowercase();
        let retry_keyword = ["retry", "retries", "retrying", "reattempt", "resubmit", "reschedule"]
            .iter()
            .any(|k| lower.contains(k));
        let has_catch = lower.contains("catch (") || lower.contains("catch(");
        let has_loop = lower.contains("while (")
            || lower.contains("while(")
            || lower.contains("for (")
            || lower.contains("for(");
        let catch_pos = lower.find("catch");
        let reenqueue_after_catch = match catch_pos {
            Some(pos) => {
                let rest = &lower[pos..];
                rest.contains(".put(") || rest.contains(".putdelayed(")
            }
            None => false,
        };
        let has_state_machine = lower.contains("switch (") || lower.contains("switch(");
        let has_sleep = lower.contains("sleep(")
            || lower.contains(".putdelayed(")
            || lower.contains("schedule");
        let calls_delay_helper = ["backoff(", "delay(", "pause(", "waitquietly("]
            .iter()
            .any(|k| lower.contains(k));
        let defines_delay_helper = ["method backoff", "method delay", "method pause", "method waitquietly"]
            .iter()
            .any(|k| lower.contains(k))
            && lower.contains("sleep(");
        let has_poll = ["poll", "compareandset", "spinlock", "spin_", "busywait"]
            .iter()
            .any(|k| lower.contains(k));
        let has_cap_comparison = cap_comparison(&lower);
        let has_error_code =
            lower.contains("error code") || lower.contains("errcode") || lower.contains("err_");
        TextSignals {
            retry_keyword,
            has_catch,
            has_loop,
            reenqueue_after_catch,
            has_state_machine,
            has_sleep,
            calls_delay_helper,
            defines_delay_helper,
            has_poll,
            has_cap_comparison,
            has_error_code,
            bytes: text.len(),
        }
    }

    /// The core fuzzy judgement: does this text *read* like it performs
    /// retry? Requires error checking (a catch) plus a re-execution shape.
    pub fn reads_like_retry(&self) -> bool {
        if !self.has_catch {
            return false;
        }
        // Queue re-enqueue after error handling reads as retry even without
        // the keyword; loops and state machines need the vocabulary.
        if self.reenqueue_after_catch {
            return true;
        }
        self.retry_keyword && (self.has_loop || self.has_state_machine)
    }

    /// Error-code retry: a loop that checks error codes and retries, with
    /// no exceptions involved (§4.2's untestable structures).
    pub fn reads_like_errcode_retry(&self) -> bool {
        self.retry_keyword && self.has_loop && self.has_error_code && !self.has_catch
    }
}

/// Finds a `<`/`>` comparison within 48 characters of a cap-ish identifier.
fn cap_comparison(lower: &str) -> bool {
    const CAPISH: [&str; 6] = ["max", "limit", "cap", "attempt", "retries", "budget"];
    let bytes = lower.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'<' || *b == b'>' {
            let start = i.saturating_sub(48);
            let end = (i + 48).min(bytes.len());
            let window = &lower[start..end];
            if CAPISH.iter().any(|k| window.contains(k)) {
                return true;
            }
        }
    }
    false
}

/// The deterministic simulated LLM.
pub struct SimulatedLlm {
    seed: u64,
    profile: SimProfile,
    usage: Usage,
    /// Per-file comprehension cache (Q2–Q4 refer to the file sent with Q1).
    memory: HashMap<String, FileComprehension>,
}

impl SimulatedLlm {
    /// Creates a model with the given seed and error profile.
    pub fn new(seed: u64, profile: SimProfile) -> Self {
        SimulatedLlm {
            seed,
            profile,
            usage: Usage::default(),
            memory: HashMap::new(),
        }
    }

    /// Creates a model with the default profile.
    pub fn with_seed(seed: u64) -> Self {
        SimulatedLlm::new(seed, SimProfile::default())
    }

    /// Deterministic pseudo-random draw in `[0, 1)` keyed by file and tag.
    fn draw(&self, file_path: &str, tag: &str) -> f64 {
        // FNV-1a over (seed, path, tag).
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut mix = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        };
        for byte in self.seed.to_le_bytes() {
            mix(byte);
        }
        for byte in file_path.bytes() {
            mix(byte);
        }
        for byte in tag.bytes() {
            mix(byte);
        }
        // One extra scramble round for avalanche.
        hash ^= hash >> 33;
        hash = hash.wrapping_mul(0xff51afd7ed558ccd);
        hash ^= hash >> 33;
        (hash >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&self, file_path: &str, tag: &str, probability: f64) -> bool {
        self.draw(file_path, tag) < probability
    }

    fn large_file_miss(&self, file_path: &str, bytes: usize) -> bool {
        if bytes <= self.profile.large_file_bytes {
            return false;
        }
        let over = (bytes - self.profile.large_file_bytes) as f64;
        let prob = (over / self.profile.miss_slope_bytes as f64).min(self.profile.max_miss_prob);
        self.chance(file_path, "large-file-miss", prob)
    }

    fn signals_for(&mut self, prompt: &Prompt) -> TextSignals {
        if !prompt.file_contents.is_empty() {
            let signals = TextSignals::extract(&prompt.file_contents);
            let retry_methods = method_regions(&prompt.file_contents)
                .into_iter()
                .filter(|(_, body)| {
                    let signals = TextSignals::extract(body);
                    signals.reads_like_retry() || signals.reads_like_errcode_retry()
                })
                .map(|(name, _)| name)
                .collect();
            self.memory.insert(
                prompt.file_path.clone(),
                FileComprehension {
                    signals,
                    retry_methods,
                },
            );
        }
        self.memory
            .get(&prompt.file_path)
            .map(|c| c.signals.clone())
            .unwrap_or_default()
    }

    fn answer_q1(&mut self, prompt: &Prompt) -> Answer {
        let signals = self.signals_for(prompt);
        if signals.reads_like_retry() || signals.reads_like_errcode_retry() {
            // Large files overwhelm the model: it misses the retry entirely.
            if self.large_file_miss(&prompt.file_path, signals.bytes) {
                return Answer::No;
            }
            return Answer::Yes;
        }
        // False-positive modes: poll/spin loops and retry-named parameter
        // parsing sometimes read like retry.
        if signals.has_poll
            && signals.has_loop
            && self.chance(&prompt.file_path, "poll-fp", self.profile.poll_fp_rate)
        {
            return Answer::Yes;
        }
        if !(signals.has_poll && signals.has_loop)
            && signals.retry_keyword
            && !signals.has_catch
            && self.chance(&prompt.file_path, "param-fp", self.profile.param_fp_rate)
        {
            return Answer::Yes;
        }
        Answer::No
    }

    fn answer_q2(&mut self, prompt: &Prompt) -> Answer {
        let signals = self.signals_for(prompt);
        let mut saw_delay = signals.has_sleep;
        // Single-file blindness: a called delay helper only counts when its
        // definition (with the sleep) is in this same file.
        if !saw_delay && signals.calls_delay_helper && signals.defines_delay_helper {
            saw_delay = true;
        }
        let answer = if saw_delay { Answer::Yes } else { Answer::No };
        self.maybe_flip(&prompt.file_path, "q2-flip", answer)
    }

    /// Applies the asymmetric miscomprehension noise.
    fn maybe_flip(&self, file_path: &str, tag: &str, answer: Answer) -> Answer {
        let rate = match answer {
            Answer::Yes => self.profile.flip_yes_rate,
            Answer::No => self.profile.flip_no_rate,
        };
        if self.chance(file_path, tag, rate) {
            flip(answer)
        } else {
            answer
        }
    }

    fn answer_q3(&mut self, prompt: &Prompt) -> Answer {
        let signals = self.signals_for(prompt);
        let answer = if signals.has_cap_comparison {
            Answer::Yes
        } else {
            Answer::No
        };
        self.maybe_flip(&prompt.file_path, "q3-flip", answer)
    }

    fn answer_q4(&mut self, prompt: &Prompt) -> Answer {
        let signals = self.signals_for(prompt);
        if signals.has_poll {
            // Should say Yes (exclude), but sometimes fails to.
            if self.chance(&prompt.file_path, "q4-miss", self.profile.q4_miss_rate) {
                return Answer::No;
            }
            return Answer::Yes;
        }
        Answer::No
    }

    fn answer_methods(&mut self, prompt: &Prompt) -> Vec<String> {
        self.memory
            .get(&prompt.file_path)
            .map(|c| c.retry_methods.clone())
            .unwrap_or_default()
    }
}

fn flip(answer: Answer) -> Answer {
    match answer {
        Answer::Yes => Answer::No,
        Answer::No => Answer::Yes,
    }
}

impl LanguageModel for SimulatedLlm {
    fn ask_yes_no(&mut self, prompt: &Prompt) -> Answer {
        self.usage.record(prompt.chars_sent());
        match prompt.question {
            Question::PerformsRetry => self.answer_q1(prompt),
            Question::SleepsBeforeRetry => self.answer_q2(prompt),
            Question::HasCap => self.answer_q3(prompt),
            Question::PollOrSpin => self.answer_q4(prompt),
            Question::WhichMethods => Answer::No,
        }
    }

    fn ask_methods(&mut self, prompt: &Prompt) -> Vec<String> {
        self.usage.record(prompt.chars_sent());
        self.answer_methods(prompt)
    }

    fn usage(&self) -> Usage {
        self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts;

    #[test]
    fn signals_detect_loop_retry_vocabulary() {
        let s = TextSignals::extract(
            "class C { method run() { for (var retry = 0; retry < max; retry = retry + 1) { \
             try { this.op(); } catch (E e) { sleep(10); } } } }",
        );
        assert!(s.retry_keyword && s.has_catch && s.has_loop);
        assert!(s.has_sleep && s.has_cap_comparison);
        assert!(s.reads_like_retry());
    }

    #[test]
    fn queue_reenqueue_reads_like_retry_without_keyword() {
        let s = TextSignals::extract(
            "class P { method run(q) { while (!q.isEmpty()) { var t = q.take(); \
             try { t.execute(); } catch (E e) { q.put(t); } } } }",
        );
        assert!(!s.retry_keyword);
        assert!(s.reenqueue_after_catch);
        assert!(s.reads_like_retry());
    }

    #[test]
    fn policy_definition_does_not_read_like_retry() {
        let s = TextSignals::extract(
            "class RetryPolicyBuilder { method build(maxRetries) { return new Policy(maxRetries); } }",
        );
        assert!(s.retry_keyword);
        assert!(!s.has_catch);
        assert!(!s.reads_like_retry());
    }

    #[test]
    fn comments_count_as_evidence() {
        // No retry-named identifiers — only a comment.
        let s = TextSignals::extract(
            "class C { method run() { // keep retrying until the broker comes back\n\
             while (true) { try { this.op(); } catch (E e) { } } } }",
        );
        assert!(s.retry_keyword);
        assert!(s.reads_like_retry());
    }

    #[test]
    fn large_files_get_missed_often() {
        let retry_core = "method run() { for (var retry = 0; retry < 9; retry = retry + 1) { \
             try { this.op(); } catch (E e) { sleep(1); } } return null; }";
        let padding = "// unrelated helper code follows\n".repeat(400); // ~12 KB
        let large = format!("class C {{ {retry_core} }}\n{padding}");
        let small = format!("class C {{ {retry_core} }}");
        let mut missed = 0;
        let mut small_missed = 0;
        for seed in 0..100 {
            let mut llm = SimulatedLlm::with_seed(seed);
            let q1 = prompts::q1_performs_retry(&format!("big{seed}.jav"), &large);
            if !llm.ask_yes_no(&q1).is_yes() {
                missed += 1;
            }
            let q1s = prompts::q1_performs_retry(&format!("small{seed}.jav"), &small);
            if !llm.ask_yes_no(&q1s).is_yes() {
                small_missed += 1;
            }
        }
        assert!(missed > 50, "large files should be missed often, got {missed}/100");
        assert_eq!(small_missed, 0, "small files should always be found");
    }

    #[test]
    fn poll_files_are_sometimes_false_positives() {
        let poll = "class Monitor { method watch() { while (true) { \
             var status = this.pollStatus(); if (status == \"done\") { break; } } } \
             method pollStatus() { return \"busy\"; } }";
        let mut yes = 0;
        for seed in 0..200 {
            let mut llm = SimulatedLlm::with_seed(seed);
            let q1 = prompts::q1_performs_retry(&format!("poll{seed}.jav"), poll);
            if llm.ask_yes_no(&q1).is_yes() {
                yes += 1;
            }
        }
        assert!(yes > 30 && yes < 140, "poll FP rate should be moderate, got {yes}/200");
    }

    #[test]
    fn helper_sleep_in_same_file_is_seen_but_not_cross_file() {
        let with_helper = "class C { method run() { while (true) { try { this.op(); } \
             catch (E e) { this.backoff(1); } } } // retry helper\n\
             method backoff(n) { sleep(100 * n); } }";
        let without_helper = "class C { method run() { while (true) { try { this.op(); } \
             catch (E e) { this.backoff(1); } } } // retry helper defined elsewhere\n }";
        let mut llm = SimulatedLlm::new(3, SimProfile { flip_yes_rate: 0.0, ..SimProfile::default() });
        let q1 = prompts::q1_performs_retry("with.jav", with_helper);
        assert!(llm.ask_yes_no(&q1).is_yes());
        assert!(llm.ask_yes_no(&prompts::q2_sleeps_before_retry("with.jav")).is_yes());
        let q1b = prompts::q1_performs_retry("without.jav", without_helper);
        assert!(llm.ask_yes_no(&q1b).is_yes());
        assert!(
            !llm.ask_yes_no(&prompts::q2_sleeps_before_retry("without.jav")).is_yes(),
            "single-file blindness: helper sleep in another file is invisible"
        );
    }

    #[test]
    fn method_regions_split_by_declaration() {
        let regions = method_regions(
            "class C { method a() { return 1; } method b(x) { return x; } test tC() { assert(true); } }",
        );
        let names: Vec<&str> = regions.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "tC"]);
        assert!(regions[0].1.contains("return 1"));
        assert!(!regions[0].1.contains("return x"));
    }

    #[test]
    fn answers_are_deterministic_per_seed_and_differ_across_seeds() {
        let poll = "class M { method watch() { while (true) { var s = this.poll(); \
             if (s == 1) { break; } } } method poll() { return 1; } }";
        let ask = |seed: u64, path: &str| {
            let mut llm = SimulatedLlm::with_seed(seed);
            llm.ask_yes_no(&prompts::q1_performs_retry(path, poll)).is_yes()
        };
        for path in ["a.jav", "b.jav", "c.jav"] {
            assert_eq!(ask(1, path), ask(1, path));
        }
        // Across 64 paths, at least one seed-1 vs seed-2 disagreement.
        let disagree = (0..64).any(|i| {
            let path = format!("f{i}.jav");
            ask(1, &path) != ask(2, &path)
        });
        assert!(disagree, "different seeds should not be identical everywhere");
    }

    #[test]
    fn usage_is_tracked_per_call() {
        let mut llm = SimulatedLlm::with_seed(0);
        let q1 = prompts::q1_performs_retry("a.jav", "class A { }");
        llm.ask_yes_no(&q1);
        llm.ask_yes_no(&prompts::q3_has_cap("a.jav"));
        let usage = llm.usage();
        assert_eq!(usage.calls, 2);
        assert!(usage.bytes_sent as usize > q1.file_contents.len());
    }
}
