#![forbid(unsafe_code)]
//! LLM-informed retry detection: prompts, the `LanguageModel` trait, the
//! deterministic simulated model, and the static WHEN-bug detector.
//!
//! The paper uses GPT-4 for two jobs that traditional program analysis
//! handles poorly: *identifying* retry implemented as queues, state
//! machines, or unnamed loops (§3.1.1, second technique), and *statically
//! detecting* WHEN bugs (§3.2.1). Both run here against any
//! [`model::LanguageModel`]; the shipped [`simulated::SimulatedLlm`] is a
//! deterministic fuzzy-text model with GPT-4's documented error modes (see
//! its module docs), so the whole pipeline runs offline and reproducibly.
//!
//! # Examples
//!
//! ```
//! use wasabi_lang::project::Project;
//! use wasabi_llm::detector::sweep_project;
//! use wasabi_llm::simulated::SimulatedLlm;
//!
//! let src = r#"
//! exception ConnectException;
//! class Client {
//!     // Retries the connection on transient errors, forever and with no
//!     // backoff — a WHEN bug on both axes.
//!     method connect() throws ConnectException { return 1; }
//!     method run() {
//!         while (true) {
//!             try { return this.connect(); }
//!             catch (ConnectException e) { log("retrying"); }
//!         }
//!     }
//! }
//! "#;
//! let project = Project::compile("demo", vec![("client.jav", src)]).unwrap();
//! let mut llm = SimulatedLlm::with_seed(1);
//! let sweep = sweep_project(&project, &mut llm);
//! assert_eq!(sweep.retry_files.len(), 1);
//! assert_eq!(sweep.findings.len(), 2); // missing delay + missing cap
//! ```

pub mod detector;
pub mod model;
pub mod prompts;
pub mod simulated;

pub use detector::{sweep_project, LlmSweep, LlmWhenFinding, LlmWhenKind};
pub use model::{Answer, LanguageModel, Usage};
pub use prompts::{Prompt, Question};
pub use simulated::{SimProfile, SimulatedLlm, TextSignals};
