//! The LLM static-checking workflow (§3.2.1): retry identification plus
//! WHEN-bug detection across a whole project.
//!
//! Per file: Q1 (performs retry?) → Q4 (poll/spin exclusion) → Q1 follow-up
//! (which methods) → Q2 (delay?) → Q3 (cap?). A flagged retry method in a
//! file answering No to Q2 yields a missing-delay finding; No to Q3 yields a
//! missing-cap finding.

use crate::model::{LanguageModel, Usage};
use crate::prompts;
use wasabi_lang::project::{FileId, Project};

/// WHEN-bug categories the LLM detector reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LlmWhenKind {
    /// No cap or time limit on retry attempts.
    MissingCap,
    /// No delay between retry attempts.
    MissingDelay,
}

impl std::fmt::Display for LlmWhenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmWhenKind::MissingCap => write!(f, "missing-cap"),
            LlmWhenKind::MissingDelay => write!(f, "missing-delay"),
        }
    }
}

/// The per-file answers gathered by the sweep.
#[derive(Debug, Clone)]
pub struct FileReport {
    /// File id in the project.
    pub file: FileId,
    /// File path.
    pub path: String,
    /// Q1 answer.
    pub performs_retry: bool,
    /// Q4: excluded as poll/spin behaviour.
    pub poll_excluded: bool,
    /// Q1 follow-up: methods implementing retry.
    pub retry_methods: Vec<String>,
    /// Q2 answer (only meaningful when retry was identified).
    pub sleeps_before_retry: bool,
    /// Q3 answer (only meaningful when retry was identified).
    pub has_cap: bool,
}

/// One WHEN-bug finding from the LLM detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlmWhenFinding {
    /// File id.
    pub file: FileId,
    /// File path.
    pub path: String,
    /// Flagged method name.
    pub method: String,
    /// What is missing.
    pub kind: LlmWhenKind,
}

/// The result of an LLM static sweep over a project.
#[derive(Debug, Clone, Default)]
pub struct LlmSweep {
    /// Per-file reports for files where Q1 answered Yes.
    pub retry_files: Vec<FileReport>,
    /// WHEN-bug findings.
    pub findings: Vec<LlmWhenFinding>,
    /// API usage for the whole sweep.
    pub usage: Usage,
}

/// Runs the full LLM static-checking workflow over every file.
pub fn sweep_project(project: &Project, llm: &mut dyn LanguageModel) -> LlmSweep {
    let usage_before = llm.usage();
    let mut sweep = LlmSweep::default();
    for (fidx, file) in project.files.iter().enumerate() {
        let file_id = FileId(fidx as u32);
        let q1 = prompts::q1_performs_retry(&file.path, &file.source);
        if !llm.ask_yes_no(&q1).is_yes() {
            continue;
        }
        let poll_excluded = llm
            .ask_yes_no(&prompts::q4_poll_or_spin(&file.path))
            .is_yes();
        if poll_excluded {
            sweep.retry_files.push(FileReport {
                file: file_id,
                path: file.path.clone(),
                performs_retry: true,
                poll_excluded: true,
                retry_methods: Vec::new(),
                sleeps_before_retry: false,
                has_cap: false,
            });
            continue;
        }
        let mut retry_methods = llm.ask_methods(&prompts::q1_which_methods(&file.path));
        if retry_methods.is_empty() {
            // The model said "this file performs retry" but could not name a
            // method — attribute the finding to the file as a whole.
            retry_methods.push(format!("<file:{}>", file.path));
        }
        let sleeps = llm
            .ask_yes_no(&prompts::q2_sleeps_before_retry(&file.path))
            .is_yes();
        let has_cap = llm.ask_yes_no(&prompts::q3_has_cap(&file.path)).is_yes();
        for method in &retry_methods {
            if !sleeps {
                sweep.findings.push(LlmWhenFinding {
                    file: file_id,
                    path: file.path.clone(),
                    method: method.clone(),
                    kind: LlmWhenKind::MissingDelay,
                });
            }
            if !has_cap {
                sweep.findings.push(LlmWhenFinding {
                    file: file_id,
                    path: file.path.clone(),
                    method: method.clone(),
                    kind: LlmWhenKind::MissingCap,
                });
            }
        }
        sweep.retry_files.push(FileReport {
            file: file_id,
            path: file.path.clone(),
            performs_retry: true,
            poll_excluded: false,
            retry_methods,
            sleeps_before_retry: sleeps,
            has_cap,
        });
    }
    let usage_after = llm.usage();
    sweep.usage = Usage {
        calls: usage_after.calls - usage_before.calls,
        bytes_sent: usage_after.bytes_sent - usage_before.bytes_sent,
        tokens: usage_after.tokens - usage_before.tokens,
    };
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulated::SimulatedLlm;
    use wasabi_lang::project::Project;

    fn project(files: Vec<(&str, String)>) -> Project {
        Project::compile("t", files).expect("compile")
    }

    fn retry_file(delay: bool, cap: bool) -> String {
        let sleep = if delay { "sleep(100);" } else { "log(\"again\");" };
        let cond = if cap {
            "var retry = 0; retry < this.maxAttempts; retry = retry + 1"
        } else {
            "var retry = 0; true; retry = retry + 1"
        };
        format!(
            "exception ConnectException;\n\
             class Client {{\n\
               field maxAttempts = 5;\n\
               // Retry the connection on transient errors.\n\
               method connect() throws ConnectException {{ return 1; }}\n\
               method run() {{\n\
                 for ({cond}) {{\n\
                   try {{ return this.connect(); }} catch (ConnectException e) {{ {sleep} }}\n\
                 }}\n\
                 return null;\n\
               }}\n\
             }}"
        )
    }

    #[test]
    fn clean_retry_file_yields_no_findings() {
        let p = project(vec![("client.jav", retry_file(true, true))]);
        let mut llm = SimulatedLlm::with_seed(7);
        let sweep = sweep_project(&p, &mut llm);
        assert_eq!(sweep.retry_files.len(), 1);
        assert_eq!(sweep.retry_files[0].retry_methods, vec!["run"]);
        assert!(sweep.findings.is_empty(), "findings: {:?}", sweep.findings);
    }

    #[test]
    fn missing_delay_and_cap_are_found() {
        let p = project(vec![("client.jav", retry_file(false, false))]);
        let mut llm = SimulatedLlm::with_seed(7);
        let sweep = sweep_project(&p, &mut llm);
        let kinds: Vec<LlmWhenKind> = sweep.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&LlmWhenKind::MissingDelay));
        assert!(kinds.contains(&LlmWhenKind::MissingCap));
    }

    #[test]
    fn non_retry_files_cost_one_call_each() {
        let files: Vec<(String, String)> = (0..10)
            .map(|i| {
                (
                    format!("util{i}.jav"),
                    format!("class Util{i} {{ method add(a, b) {{ return a + b; }} }}"),
                )
            })
            .collect();
        let p = Project::compile("t", files).unwrap();
        let mut llm = SimulatedLlm::with_seed(7);
        let sweep = sweep_project(&p, &mut llm);
        assert!(sweep.retry_files.is_empty());
        assert_eq!(sweep.usage.calls, 10, "one Q1 call per file");
        assert!(sweep.usage.tokens > 0);
    }

    #[test]
    fn queue_reenqueue_is_identified_without_retry_keyword() {
        let src = "exception TaskException;\n\
             class Processor {\n\
               field taskQueue;\n\
               method run() {\n\
                 while (!this.taskQueue.isEmpty()) {\n\
                   var task = this.taskQueue.take();\n\
                   try { task.execute(); } catch (TaskException e) { this.taskQueue.put(task); }\n\
                 }\n\
               }\n\
             }\n\
             class Task { method execute() throws TaskException { return 1; } }";
        let p = project(vec![("proc.jav", src.to_string())]);
        let mut llm = SimulatedLlm::with_seed(7);
        let sweep = sweep_project(&p, &mut llm);
        assert_eq!(sweep.retry_files.len(), 1);
        assert!(sweep.retry_files[0].retry_methods.contains(&"run".to_string()));
    }

    #[test]
    fn sweep_is_deterministic_for_a_seed() {
        let p = project(vec![("client.jav", retry_file(false, true))]);
        let run = |seed| {
            let mut llm = SimulatedLlm::with_seed(seed);
            sweep_project(&p, &mut llm).findings
        };
        assert_eq!(run(42), run(42));
    }
}
