//! The WASABI prompts (paper Figure 2).
//!
//! Prompt texts are reproduced from the paper; the file contents are
//! appended when the question is about a specific file.

use std::fmt;

/// Which question a prompt asks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Question {
    /// Q1: does the file perform retry anywhere?
    PerformsRetry,
    /// Q1 follow-up: which methods implement the retry?
    WhichMethods,
    /// Q2: does the code sleep before retrying or resubmitting?
    SleepsBeforeRetry,
    /// Q3: is there a cap or time limit on retry attempts?
    HasCap,
    /// Q4: is this poll / spin-lock behaviour rather than retry?
    PollOrSpin,
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Question::PerformsRetry => write!(f, "Q1"),
            Question::WhichMethods => write!(f, "Q1-followup"),
            Question::SleepsBeforeRetry => write!(f, "Q2"),
            Question::HasCap => write!(f, "Q3"),
            Question::PollOrSpin => write!(f, "Q4"),
        }
    }
}

/// A fully-rendered prompt: question text plus the source file it is about.
#[derive(Debug, Clone)]
pub struct Prompt {
    /// The question asked.
    pub question: Question,
    /// Path of the file under discussion.
    pub file_path: String,
    /// The question text (without the file contents).
    pub instruction: String,
    /// The file contents sent along with the question.
    pub file_contents: String,
}

impl Prompt {
    /// Total characters sent for this prompt (instruction + contents).
    pub fn chars_sent(&self) -> usize {
        self.instruction.len() + self.file_contents.len()
    }
}

/// Q1 — retry identification (sent with the whole file).
pub fn q1_performs_retry(file_path: &str, contents: &str) -> Prompt {
    Prompt {
        question: Question::PerformsRetry,
        file_path: file_path.to_string(),
        instruction: "Q1. Does the following code perform retry anywhere? Answer (Yes) or (No).\n\
            - Say NO if the file only _defines_ or _creates_ retry policies, or only passes \
            retry parameters to other builders/constructors.\n\
            - Say NO if the file does not check for exceptions or errors before retry.\n\
            **Remember that retry mechanisms can be implemented through for or while loops \
            or data structures like state machines and queues.**"
            .to_string(),
        file_contents: contents.to_string(),
    }
}

/// Q1 follow-up — which methods implement the retry (conversation continues,
/// the file is already in context, so only the question is re-sent).
pub fn q1_which_methods(file_path: &str) -> Prompt {
    Prompt {
        question: Question::WhichMethods,
        file_path: file_path.to_string(),
        instruction: "Which methods in this file implement the retry behaviour? \
            List the method names only."
            .to_string(),
        file_contents: String::new(),
    }
}

/// Q2 — delay detection.
pub fn q2_sleeps_before_retry(file_path: &str) -> Prompt {
    Prompt {
        question: Question::SleepsBeforeRetry,
        file_path: file_path.to_string(),
        instruction: "Q2. Does the code sleep before retrying or resubmitting the request? \
            Answer (Yes) or (No).\n\
            **Remember that delay might be implemented through scheduling after an interval \
            or some other mechanism.**"
            .to_string(),
        file_contents: String::new(),
    }
}

/// Q3 — cap detection.
pub fn q3_has_cap(file_path: &str) -> Prompt {
    Prompt {
        question: Question::HasCap,
        file_path: file_path.to_string(),
        instruction: "Q3. Does the code have a cap OR time limit on the number of times a \
            request is retried or resubmitted? Answer (Yes) or (No).\n\
            **Remember that timeouts or caps should be specifically applied to retry and \
            not other behaviors.**"
            .to_string(),
        file_contents: String::new(),
    }
}

/// Q4 — poll / spin-lock exclusion.
pub fn q4_poll_or_spin(file_path: &str) -> Prompt {
    Prompt {
        question: Question::PollOrSpin,
        file_path: file_path.to_string(),
        instruction: "Q4. Do any of the retry-containing methods either call \
            \"compareAndSet\" or contain poll-related behavior? Answer (Yes) or (No)."
            .to_string(),
        file_contents: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_carries_file_contents() {
        let p = q1_performs_retry("a.jav", "class A { }");
        assert_eq!(p.question, Question::PerformsRetry);
        assert!(p.instruction.contains("state machines and queues"));
        assert_eq!(p.file_contents, "class A { }");
        assert!(p.chars_sent() > p.instruction.len());
    }

    #[test]
    fn followups_do_not_resend_the_file() {
        for p in [
            q1_which_methods("a.jav"),
            q2_sleeps_before_retry("a.jav"),
            q3_has_cap("a.jav"),
            q4_poll_or_spin("a.jav"),
        ] {
            assert!(p.file_contents.is_empty());
            assert_eq!(p.file_path, "a.jav");
        }
    }

    #[test]
    fn question_labels_match_figure_2() {
        assert_eq!(Question::PerformsRetry.to_string(), "Q1");
        assert_eq!(Question::SleepsBeforeRetry.to_string(), "Q2");
        assert_eq!(Question::HasCap.to_string(), "Q3");
        assert_eq!(Question::PollOrSpin.to_string(), "Q4");
    }
}
