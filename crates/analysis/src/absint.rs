//! Per-method interval abstract interpretation of retry policies.
//!
//! A classic interval domain over the integer locals (and directly
//! assigned `this.*` fields) of one method: constants, field
//! initialisers, and `getConfig` defaults seed the environment, a
//! fixpoint with **widening at loop heads** (after two stable-growth
//! iterations) guarantees termination, and one narrowing pass afterwards
//! recovers bounds that widening overshot — `min(delay * 2, cap)` comes
//! back down to `[base, cap]` instead of sticking at `+∞`.
//!
//! The W005/W006 checkers consume three kinds of facts per loop:
//!
//! - the **attempt interval** — how many times the body can run, derived
//!   from the loop guard (`counter < bound`) and the counter's additive
//!   updates; `[0, 0]` when the guard is unreachable at entry (a config
//!   default of `0` does this), `[0, +∞]` when nothing bounds it;
//! - **sleep observations** — the interval of every `sleep(ms)` argument
//!   inside the loop, with the variables the expression mentions;
//! - **growth observations** — assignments of the shape `v = v * k`
//!   (possibly nested inside `min(..)` or larger expressions) with
//!   factor `k ≥ 2`: the multiplicative-backoff evidence W005 requires
//!   before it calls a diverging interval a bug.
//!
//! Saturating arithmetic deliberately maps `i64` overflow to the
//! infinity endpoints, so "the delay computation overflows" and "the
//! delay diverges" land on the same lattice point.
//!
//! Field reads follow the same optimistic convention as the existing
//! `static_int` evaluation: a `this.f` read uses the declared
//! initialiser unless this method assigned the field — mutations through
//! callees are not modelled.

use std::collections::BTreeMap;
use wasabi_lang::ast::{BinOp, Block, Expr, LValue, Literal, LoopId, MethodDecl, Stmt, UnOp};
use wasabi_lang::index::{ClassId, LExpr, ProgramIndex};
use wasabi_lang::span::Span;

/// `-∞` endpoint encoding.
pub const NEG_INF: i64 = i64::MIN;
/// `+∞` endpoint encoding.
pub const POS_INF: i64 = i64::MAX;

/// A closed integer interval `[lo, hi]` with `±∞` endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound ([`NEG_INF`] when unbounded below).
    pub lo: i64,
    /// Upper bound ([`POS_INF`] when unbounded above).
    pub hi: i64,
}

// Saturating interval arithmetic deliberately keeps inherent `add`/`mul`
// names: the std operator traits would promise ordinary integer
// semantics these ops do not have.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The single-point interval `[n, n]`.
    pub fn constant(n: i64) -> Interval {
        Interval { lo: n, hi: n }
    }

    /// The full interval `[-∞, +∞]`.
    pub fn top() -> Interval {
        Interval {
            lo: NEG_INF,
            hi: POS_INF,
        }
    }

    /// Whether this is the full interval.
    pub fn is_top(&self) -> bool {
        self.lo == NEG_INF && self.hi == POS_INF
    }

    /// Whether the upper bound is `+∞`.
    pub fn unbounded_above(&self) -> bool {
        self.hi == POS_INF
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening: an endpoint that is still moving jumps
    /// to its infinity.
    pub fn widen(self, newer: Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { NEG_INF } else { self.lo },
            hi: if newer.hi > self.hi { POS_INF } else { self.hi },
        }
    }

    /// Greatest lower bound; `None` when the intervals do not intersect.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Interval addition.
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: add_lo(self.lo, other.lo),
            hi: add_hi(self.hi, other.hi),
        }
    }

    /// Interval subtraction.
    pub fn sub(self, other: Interval) -> Interval {
        Interval {
            lo: add_lo(self.lo, neg(other.hi)),
            hi: add_hi(self.hi, neg(other.lo)),
        }
    }

    /// Interval multiplication; overflow saturates to the infinities.
    pub fn mul(self, other: Interval) -> Interval {
        let products = [
            mul_raw(self.lo, other.lo),
            mul_raw(self.lo, other.hi),
            mul_raw(self.hi, other.lo),
            mul_raw(self.hi, other.hi),
        ];
        Interval {
            lo: products.iter().copied().min().unwrap_or(NEG_INF),
            hi: products.iter().copied().max().unwrap_or(POS_INF),
        }
    }

    /// Interval division, precise only for strictly positive divisors.
    pub fn div(self, other: Interval) -> Interval {
        if other.lo <= 0 {
            return Interval::top();
        }
        let quotients = [
            div_raw(self.lo, other.lo),
            div_raw(self.lo, other.hi),
            div_raw(self.hi, other.lo),
            div_raw(self.hi, other.hi),
        ];
        Interval {
            lo: quotients.iter().copied().min().unwrap_or(NEG_INF),
            hi: quotients.iter().copied().max().unwrap_or(POS_INF),
        }
    }

    /// Interval remainder for strictly positive finite divisors.
    pub fn rem(self, other: Interval) -> Interval {
        if other.lo <= 0 || other.hi == POS_INF {
            return Interval::top();
        }
        let mag = other.hi - 1;
        if self.lo >= 0 {
            Interval { lo: 0, hi: mag }
        } else {
            Interval { lo: -mag, hi: mag }
        }
    }

    /// Pointwise minimum (the `min(a, b)` builtin).
    pub fn min_of(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Pointwise maximum (the `max(a, b)` builtin).
    pub fn max_of(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Arithmetic negation.
    pub fn negate(self) -> Interval {
        Interval {
            lo: neg(self.hi),
            hi: neg(self.lo),
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.lo, self.hi) {
            (NEG_INF, POS_INF) => write!(f, "[-inf, +inf]"),
            (NEG_INF, hi) => write!(f, "[-inf, {hi}]"),
            (lo, POS_INF) => write!(f, "[{lo}, +inf]"),
            (lo, hi) => write!(f, "[{lo}, {hi}]"),
        }
    }
}

fn neg(v: i64) -> i64 {
    match v {
        NEG_INF => POS_INF,
        POS_INF => NEG_INF,
        v => -v,
    }
}

fn add_lo(a: i64, b: i64) -> i64 {
    if a == NEG_INF || b == NEG_INF {
        NEG_INF
    } else {
        a.saturating_add(b)
    }
}

fn add_hi(a: i64, b: i64) -> i64 {
    if a == POS_INF || b == POS_INF {
        POS_INF
    } else {
        a.saturating_add(b)
    }
}

fn mul_raw(a: i64, b: i64) -> i64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let negative = (a < 0) != (b < 0);
    if a == NEG_INF || a == POS_INF || b == NEG_INF || b == POS_INF {
        return if negative { NEG_INF } else { POS_INF };
    }
    a.saturating_mul(b)
}

fn div_raw(a: i64, b: i64) -> i64 {
    match a {
        NEG_INF => NEG_INF,
        POS_INF => POS_INF,
        a => {
            if b == POS_INF {
                0
            } else {
                a / b
            }
        }
    }
}

/// Abstract environment: interval per tracked variable. Locals are keyed
/// by name, directly assigned fields by `this.<name>`; an absent key
/// means "untracked" (top for locals, declared initialiser for fields).
type Env = BTreeMap<String, Interval>;

/// One `sleep(ms)` observed inside a loop during the stable final pass.
#[derive(Debug, Clone)]
pub struct SleepObs {
    /// Source span of the `sleep` statement.
    pub span: Span,
    /// Interval of the millisecond argument at the sleep site.
    pub ms: Interval,
    /// Variables (locals and `this.*` keys) the argument mentions.
    pub vars: Vec<String>,
}

/// One multiplicative self-update (`v = .. v * k ..`, `k ≥ 2`) observed
/// inside a loop.
#[derive(Debug, Clone)]
pub struct GrowthObs {
    /// The updated variable (local name or `this.<field>` key).
    pub var: String,
    /// Interval of the multiplier.
    pub factor: Interval,
}

/// Everything the fixpoint learned about one loop.
#[derive(Debug, Clone)]
pub struct LoopObs {
    /// Interval of body executions.
    pub attempts: Interval,
    /// The guard excludes the body already at loop entry (e.g. a config
    /// default of `0` bounds the counter below its start value).
    pub guard_unreachable: bool,
    /// Counter variable of a `counter < bound`-shaped guard.
    pub counter: Option<String>,
    /// Whether any statement in the loop (body or `for` update) assigns
    /// the counter.
    pub counter_updated: bool,
    /// Stable variable intervals at the loop head.
    pub head: BTreeMap<String, Interval>,
    /// Variable intervals on entry, before the first iteration.
    pub entry: BTreeMap<String, Interval>,
    /// Sleeps inside the loop (including nested loops).
    pub sleeps: Vec<SleepObs>,
    /// Multiplicative self-updates inside the loop.
    pub growths: Vec<GrowthObs>,
}

impl LoopObs {
    /// Stable head interval of a variable (top when untracked).
    pub fn head_interval(&self, var: &str) -> Interval {
        self.head.get(var).copied().unwrap_or_else(Interval::top)
    }

    /// Entry interval of a variable (top when untracked).
    pub fn entry_interval(&self, var: &str) -> Interval {
        self.entry.get(var).copied().unwrap_or_else(Interval::top)
    }
}

/// Result of analysing one method: observations per loop id.
#[derive(Debug, Default)]
pub struct MethodAbs {
    /// Per-loop observations, keyed by the loop's file-unique id.
    pub loops: BTreeMap<LoopId, LoopObs>,
}

/// Runs the interval fixpoint over `method` of `class`.
pub fn analyze_method(index: &ProgramIndex, class: &str, method: &MethodDecl) -> MethodAbs {
    let mut interp = Interp {
        index,
        class,
        loops: BTreeMap::new(),
        sleep_sink: Vec::new(),
        pending_sleeps: BTreeMap::new(),
        pending_growths: BTreeMap::new(),
    };
    let mut env = Env::new();
    // Parameters are unknown integers (or not integers at all): top, which
    // an absent key already means.
    let mut frames = Vec::new();
    let _ = interp.block(Some(env.clone()), &method.body, &mut frames);
    // `env` seeded empty on purpose; the analysis is flow-sensitive from
    // the body statements alone.
    env.clear();
    MethodAbs {
        loops: interp.loops,
    }
}

/// A `break`/`continue` target: a loop or a switch.
struct Frame {
    is_switch: bool,
    breaks: Vec<Env>,
}

struct Interp<'a> {
    index: &'a ProgramIndex,
    class: &'a str,
    loops: BTreeMap<LoopId, LoopObs>,
    /// Loops currently running their final collection pass; sleeps and
    /// growth updates are recorded into each of them.
    sleep_sink: Vec<LoopId>,
    pending_sleeps: BTreeMap<LoopId, Vec<SleepObs>>,
    pending_growths: BTreeMap<LoopId, Vec<GrowthObs>>,
}

/// Iterations of plain joining before widening kicks in.
const WIDEN_AFTER: usize = 2;
/// Hard cap on fixpoint iterations (widening converges far earlier).
const MAX_ITERS: usize = 24;

impl<'a> Interp<'a> {
    /// Executes a block; `None` means no fallthrough (all paths returned,
    /// threw, broke, or continued).
    fn block(&mut self, env: Option<Env>, block: &Block, frames: &mut Vec<Frame>) -> Option<Env> {
        let mut env = env?;
        for stmt in &block.stmts {
            env = self.stmt(env, stmt, frames)?;
        }
        Some(env)
    }

    fn stmt(&mut self, mut env: Env, stmt: &Stmt, frames: &mut Vec<Frame>) -> Option<Env> {
        match stmt {
            Stmt::Var { name, init, .. } => {
                let value = self.eval(&env, init);
                env.insert(name.clone(), value);
                Some(env)
            }
            Stmt::Assign { target, value, .. } => {
                let interval = self.eval(&env, value);
                if let Some(key) = lvalue_key(target) {
                    self.note_growth(&env, &key, value);
                    env.insert(key, interval);
                }
                Some(env)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let then_in = refine(env.clone(), cond, true, self);
                let else_in = refine(env, cond, false, self);
                let then_out = then_in.and_then(|e| self.block(Some(e), then_blk, frames));
                let else_out = match else_blk {
                    Some(blk) => else_in.and_then(|e| self.block(Some(e), blk, frames)),
                    None => else_in,
                };
                join_opt(then_out, else_out)
            }
            Stmt::While { id, cond, body, .. } => {
                self.fixpoint(env, *id, Some(cond), None, body, frames)
            }
            Stmt::For {
                id,
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(init) = init {
                    env = self.stmt(env, init, frames)?;
                }
                self.fixpoint(env, *id, cond.as_ref(), update.as_deref(), body, frames)
            }
            Stmt::Switch { cases, default, .. } => {
                frames.push(Frame {
                    is_switch: true,
                    breaks: Vec::new(),
                });
                let mut out: Option<Env> = None;
                for (_, case_blk) in cases {
                    let arm = self.block(Some(env.clone()), case_blk, frames);
                    out = join_opt(out, arm);
                }
                match default {
                    Some(blk) => {
                        let arm = self.block(Some(env.clone()), blk, frames);
                        out = join_opt(out, arm);
                    }
                    // No default: the scrutinee may match nothing and fall
                    // straight through.
                    None => out = join_opt(out, Some(env)),
                }
                let frame = frames.pop().expect("switch frame");
                for brk in frame.breaks {
                    out = join_opt(out, Some(brk));
                }
                out
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                let before = env.clone();
                let after_body = self.block(Some(env), body, frames);
                // A catch can run after any prefix of the body; the join
                // of the entry and exit environments over-approximates the
                // states we track (growth updates are re-joined by the
                // enclosing loop fixpoint anyway).
                let catch_in = match &after_body {
                    Some(after) => join_env(before.clone(), after.clone()),
                    None => before,
                };
                let mut out = after_body;
                for catch in catches {
                    let mut handler_env = catch_in.clone();
                    // The binding is an exception reference, not an int.
                    handler_env.remove(&catch.binding);
                    let handler_out = self.block(Some(handler_env), &catch.body, frames);
                    out = join_opt(out, handler_out);
                }
                match finally {
                    Some(blk) => self.block(out, blk, frames),
                    None => out,
                }
            }
            Stmt::Throw { .. } | Stmt::Return { .. } => None,
            Stmt::Break { .. } => {
                if let Some(frame) = frames.last_mut() {
                    frame.breaks.push(env);
                }
                None
            }
            Stmt::Continue { .. } => {
                // Joined back into the loop head by the next fixpoint
                // iteration; precise continue-edge tracking is not needed
                // for the attempt/delay facts.
                let _ = frames.iter_mut().rev().find(|f| !f.is_switch);
                None
            }
            Stmt::Sleep { ms, .. } => {
                if !self.sleep_sink.is_empty() {
                    let interval = self.eval(&env, ms);
                    let mut vars = Vec::new();
                    collect_vars(ms, &mut vars);
                    vars.sort();
                    vars.dedup();
                    let obs = SleepObs {
                        span: stmt.span(),
                        ms: interval,
                        vars,
                    };
                    for &loop_id in &self.sleep_sink {
                        self.pending_sleeps
                            .entry(loop_id)
                            .or_default()
                            .push(obs.clone());
                    }
                }
                Some(env)
            }
            Stmt::Log { .. } | Stmt::Assert { .. } | Stmt::Expr { .. } => Some(env),
        }
    }

    /// Loop fixpoint: join → widen → narrow → collect, then build the
    /// [`LoopObs`] and return the exit environment.
    fn fixpoint(
        &mut self,
        entry: Env,
        id: LoopId,
        cond: Option<&Expr>,
        update: Option<&Stmt>,
        body: &Block,
        frames: &mut Vec<Frame>,
    ) -> Option<Env> {
        let one_pass = |interp: &mut Self, head: &Env, frames: &mut Vec<Frame>| -> (Option<Env>, Vec<Env>) {
            let body_in = match cond {
                Some(cond) => refine(head.clone(), cond, true, interp),
                None => Some(head.clone()),
            };
            frames.push(Frame {
                is_switch: false,
                breaks: Vec::new(),
            });
            let mut body_out = interp.block(body_in, body, frames);
            if let Some(update) = update {
                if let Some(out) = body_out.take() {
                    body_out = interp.stmt(out, update, frames);
                }
            }
            let frame = frames.pop().expect("loop frame");
            (body_out, frame.breaks)
        };

        // Ascend with widening until stable.
        let mut head = entry.clone();
        for iter in 0..MAX_ITERS {
            let (body_out, _) = one_pass(self, &head, frames);
            let new_head = match body_out {
                Some(out) => join_env(entry.clone(), out),
                None => entry.clone(),
            };
            if new_head == head {
                break;
            }
            head = if iter >= WIDEN_AFTER {
                widen_env(&head, &new_head)
            } else {
                new_head
            };
        }
        // One narrowing pass recovers bounds widening overshot (caps via
        // `min`, guard refinements).
        let (body_out, _) = one_pass(self, &head, frames);
        head = match body_out {
            Some(out) => join_env(entry.clone(), out),
            None => entry.clone(),
        };
        // Final collection pass on the stable head records sleeps and
        // growth updates.
        self.pending_sleeps.insert(id, Vec::new());
        self.pending_growths.insert(id, Vec::new());
        self.sleep_sink.push(id);
        let (body_out, breaks) = one_pass(self, &head, frames);
        self.sleep_sink.pop();
        let head_final = match &body_out {
            Some(out) => join_env(entry.clone(), out.clone()),
            None => entry.clone(),
        };

        let guard_unreachable = match cond {
            Some(cond) => refine(entry.clone(), cond, true, self).is_none(),
            None => false,
        };
        let guard = cond.and_then(loop_guard);
        let counter = guard.map(|(var, _, _)| var.to_string());
        let counter_updated = counter
            .as_deref()
            .map(|var| assigns_var(body, update, var))
            .unwrap_or(false);
        let attempts = self.attempt_interval(
            &entry,
            guard,
            counter_updated,
            guard_unreachable,
            body,
            update,
        );

        let mut sleeps = self.pending_sleeps.remove(&id).unwrap_or_default();
        sleeps.sort_by_key(|s| (s.span.start, s.span.end));
        sleeps.dedup_by_key(|s| (s.span.start, s.span.end));
        let mut growths = self.pending_growths.remove(&id).unwrap_or_default();
        growths.sort_by(|a, b| a.var.cmp(&b.var));
        growths.dedup_by(|a, b| a.var == b.var && a.factor == b.factor);

        self.loops.insert(
            id,
            LoopObs {
                attempts,
                guard_unreachable,
                counter,
                counter_updated,
                head: head_final.clone(),
                entry: entry.clone(),
                sleeps,
                growths,
            },
        );

        // Exit: the guard is false, or a break fired.
        let mut exit = match cond {
            Some(cond) => refine(head_final, cond, false, self),
            None => None, // `for(;;)`-style: only breaks leave the loop
        };
        for brk in breaks {
            exit = join_opt(exit, Some(brk));
        }
        exit
    }

    /// Interval of loop-body executions.
    fn attempt_interval(
        &self,
        entry: &Env,
        guard: Option<(&str, BinOp, &Expr)>,
        counter_updated: bool,
        guard_unreachable: bool,
        body: &Block,
        update: Option<&Stmt>,
    ) -> Interval {
        if guard_unreachable {
            return Interval::constant(0);
        }
        let Some((var, op, bound)) = guard else {
            return Interval {
                lo: 0,
                hi: POS_INF,
            };
        };
        if !counter_updated {
            return Interval {
                lo: 0,
                hi: POS_INF,
            };
        }
        // Every assignment to the counter must be an additive step ≥ 1,
        // otherwise the guard proves nothing about iteration counts.
        let Some(step) = additive_step(self, entry, body, update, var) else {
            return Interval {
                lo: 0,
                hi: POS_INF,
            };
        };
        if step.lo < 1 {
            return Interval {
                lo: 0,
                hi: POS_INF,
            };
        }
        let bound_i = self.eval(entry, bound);
        let init = entry.get(var).copied().unwrap_or_else(Interval::top);
        let limit = match op {
            BinOp::Lt => bound_i.hi,
            BinOp::LtEq => add_hi(bound_i.hi, 1),
            _ => return Interval { lo: 0, hi: POS_INF },
        };
        if limit == POS_INF || init.lo == NEG_INF {
            return Interval {
                lo: 0,
                hi: POS_INF,
            };
        }
        Interval {
            lo: 0,
            hi: limit.saturating_sub(init.lo).max(0),
        }
    }

    /// Records `key = .. key * k ..` updates with `k ≥ 2` during the
    /// collection pass.
    fn note_growth(&mut self, env: &Env, key: &str, value: &Expr) {
        if self.sleep_sink.is_empty() {
            return;
        }
        let Some(factor) = growth_factor(self, env, key, value) else {
            return;
        };
        let obs = GrowthObs {
            var: key.to_string(),
            factor,
        };
        for &loop_id in &self.sleep_sink {
            self.pending_growths
                .entry(loop_id)
                .or_default()
                .push(obs.clone());
        }
    }

    /// Evaluates an expression to an interval.
    fn eval(&self, env: &Env, expr: &Expr) -> Interval {
        match expr {
            Expr::Literal(Literal::Int(n), _) => Interval::constant(*n),
            Expr::Literal(..) => Interval::top(),
            Expr::Ident(name, _) => env.get(name).copied().unwrap_or_else(Interval::top),
            Expr::This(_) | Expr::New { .. } | Expr::InstanceOf { .. } => Interval::top(),
            Expr::Field { recv, name, .. } if matches!(recv.as_ref(), Expr::This(_)) => {
                let key = format!("this.{name}");
                if let Some(interval) = env.get(&key) {
                    return *interval;
                }
                match self
                    .index
                    .class_by_name(self.class)
                    .and_then(|cid| field_init_int(self.index, cid, name))
                {
                    Some(n) => Interval::constant(n),
                    None => Interval::top(),
                }
            }
            Expr::Field { .. } => Interval::top(),
            Expr::Call {
                recv: None,
                method,
                args,
                ..
            } if method == "min" && args.len() == 2 => self
                .eval(env, &args[0])
                .min_of(self.eval(env, &args[1])),
            Expr::Call {
                recv: None,
                method,
                args,
                ..
            } if method == "max" && args.len() == 2 => self
                .eval(env, &args[0])
                .max_of(self.eval(env, &args[1])),
            Expr::Call {
                recv: None,
                method,
                args,
                ..
            } if method == "getConfig" && args.len() == 1 => {
                let Expr::Literal(Literal::Str(key), _) = &args[0] else {
                    return Interval::top();
                };
                match self.index.config_by_name(key) {
                    Some(id) => match &self.index.configs[id as usize].default {
                        Literal::Int(n) => Interval::constant(*n),
                        _ => Interval::top(),
                    },
                    None => Interval::top(),
                }
            }
            Expr::Call { .. } => Interval::top(),
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.eval(env, lhs);
                let r = self.eval(env, rhs);
                match op {
                    BinOp::Add => l.add(r),
                    BinOp::Sub => l.sub(r),
                    BinOp::Mul => l.mul(r),
                    BinOp::Div => l.div(r),
                    BinOp::Rem => l.rem(r),
                    _ => Interval::top(),
                }
            }
            Expr::Unary { op, expr, .. } => match op {
                UnOp::Neg => self.eval(env, expr).negate(),
                UnOp::Not => Interval::top(),
            },
        }
    }
}

/// The environment key an assignment writes, when tracked.
fn lvalue_key(target: &LValue) -> Option<String> {
    match target {
        LValue::Var(name, _) => Some(name.clone()),
        LValue::Field {
            recv: Expr::This(_),
            name,
            ..
        } => Some(format!("this.{name}")),
        LValue::Field { .. } => None,
    }
}

/// Variables (locals and `this.*` keys) mentioned by an expression.
fn collect_vars(expr: &Expr, out: &mut Vec<String>) {
    wasabi_lang::ast::walk_expr(expr, &mut |e| match e {
        Expr::Ident(name, _) => out.push(name.clone()),
        Expr::Field { recv, name, .. } if matches!(recv.as_ref(), Expr::This(_)) => {
            out.push(format!("this.{name}"));
        }
        _ => {}
    });
}

/// Finds a `v * k` (or `k * v`) factor with `k ≥ 2` for `key` inside the
/// assigned expression.
fn growth_factor(interp: &Interp<'_>, env: &Env, key: &str, value: &Expr) -> Option<Interval> {
    let mut found: Option<Interval> = None;
    wasabi_lang::ast::walk_expr(value, &mut |e| {
        if found.is_some() {
            return;
        }
        let Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
            ..
        } = e
        else {
            return;
        };
        let factor = if refers_to(lhs, key) {
            interp.eval(env, rhs)
        } else if refers_to(rhs, key) {
            interp.eval(env, lhs)
        } else {
            return;
        };
        if factor.lo >= 2 {
            found = Some(factor);
        }
    });
    found
}

/// Whether an expression is exactly the variable `key` refers to.
fn refers_to(expr: &Expr, key: &str) -> bool {
    match expr {
        Expr::Ident(name, _) => name == key,
        Expr::Field { recv, name, .. } if matches!(recv.as_ref(), Expr::This(_)) => {
            key.strip_prefix("this.") == Some(name.as_str())
        }
        _ => false,
    }
}

/// Extracts a `counter <op> bound` guard with the counter on one side.
/// `&&`-conjunctions are searched left to right.
fn loop_guard(cond: &Expr) -> Option<(&str, BinOp, &Expr)> {
    match cond {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
            ..
        } => loop_guard(lhs).or_else(|| loop_guard(rhs)),
        Expr::Binary { op, lhs, rhs, .. } => match (op, lhs.as_ref(), rhs.as_ref()) {
            (BinOp::Lt | BinOp::LtEq, Expr::Ident(v, _), bound) => Some((v.as_str(), *op, bound)),
            (BinOp::Gt, bound, Expr::Ident(v, _)) => Some((v.as_str(), BinOp::Lt, bound)),
            (BinOp::GtEq, bound, Expr::Ident(v, _)) => Some((v.as_str(), BinOp::LtEq, bound)),
            _ => None,
        },
        _ => None,
    }
}

/// Whether any statement in the body (or the `for` update) assigns `var`.
fn assigns_var(body: &Block, update: Option<&Stmt>, var: &str) -> bool {
    let is_assign = |stmt: &Stmt| -> bool {
        matches!(stmt,
            Stmt::Assign { target: LValue::Var(name, _), .. } | Stmt::Var { name, .. }
                if name == var)
    };
    if update.map(is_assign).unwrap_or(false) {
        return true;
    }
    let mut assigned = false;
    wasabi_lang::ast::walk_stmts(body, &mut |stmt| {
        if is_assign(stmt) {
            assigned = true;
        }
        true
    });
    assigned
}

/// When every assignment to `var` in the loop has the shape
/// `var = var + c` (or `c + var`), the joined interval of the steps;
/// `None` when some assignment has another shape.
fn additive_step(
    interp: &Interp<'_>,
    env: &Env,
    body: &Block,
    update: Option<&Stmt>,
    var: &str,
) -> Option<Interval> {
    let mut step: Option<Interval> = None;
    let mut irregular = false;
    let mut inspect = |stmt: &Stmt| {
        let Stmt::Assign {
            target: LValue::Var(name, _),
            value,
            ..
        } = stmt
        else {
            if matches!(stmt, Stmt::Var { name, .. } if name == var) {
                irregular = true;
            }
            return;
        };
        if name != var {
            return;
        }
        let delta = match value {
            Expr::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
                ..
            } => {
                if matches!(lhs.as_ref(), Expr::Ident(n, _) if n == var) {
                    Some(interp.eval(env, rhs))
                } else if matches!(rhs.as_ref(), Expr::Ident(n, _) if n == var) {
                    Some(interp.eval(env, lhs))
                } else {
                    None
                }
            }
            _ => None,
        };
        match delta {
            Some(delta) => step = Some(step.map_or(delta, |s| s.join(delta))),
            None => irregular = true,
        }
    };
    if let Some(update) = update {
        inspect(update);
    }
    wasabi_lang::ast::walk_stmts(body, &mut |stmt| {
        inspect(stmt);
        true
    });
    if irregular {
        None
    } else {
        step
    }
}

/// The literal integer initialiser of a field, if any (the same
/// convention as the checkers' `static_int`).
fn field_init_int(index: &ProgramIndex, class: ClassId, name: &str) -> Option<i64> {
    let def = &index.classes[class.0 as usize];
    let sym = index.interner.lookup(name)?;
    let slot = def.layout.slot(sym)?;
    def.inits
        .iter()
        .rev()
        .find(|i| i.slot == slot as u32)
        .and_then(|i| match &i.expr {
            LExpr::Literal(Literal::Int(n)) => Some(*n),
            _ => None,
        })
}

fn join_env(a: Env, b: Env) -> Env {
    let mut out = Env::new();
    for (key, &va) in &a {
        if let Some(&vb) = b.get(key) {
            out.insert(key.clone(), va.join(vb));
        }
        // Present on one side only: the other side is top, so the join
        // is top — an absent key.
    }
    out
}

fn widen_env(old: &Env, new: &Env) -> Env {
    let mut out = Env::new();
    for (key, &vo) in old {
        if let Some(&vn) = new.get(key) {
            out.insert(key.clone(), vo.widen(vn));
        }
    }
    out
}

fn join_opt(a: Option<Env>, b: Option<Env>) -> Option<Env> {
    match (a, b) {
        (Some(a), Some(b)) => Some(join_env(a, b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// Refines `env` by assuming `cond` evaluates to `truth`; `None` when the
/// assumption is contradictory (the branch is unreachable).
fn refine(env: Env, cond: &Expr, truth: bool, interp: &Interp<'_>) -> Option<Env> {
    match cond {
        Expr::Literal(Literal::Bool(b), _) => (*b == truth).then_some(env),
        Expr::Unary {
            op: UnOp::Not,
            expr,
            ..
        } => refine(env, expr, !truth, interp),
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
            ..
        } if truth => refine(env, lhs, true, interp).and_then(|e| refine(e, rhs, true, interp)),
        Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
            ..
        } if !truth => refine(env, lhs, false, interp).and_then(|e| refine(e, rhs, false, interp)),
        Expr::Binary { op, lhs, rhs, .. } => {
            let Some(op) = comparison(*op, truth) else {
                return Some(env);
            };
            refine_cmp(env, lhs, op, rhs, interp)
        }
        _ => Some(env),
    }
}

/// Normalises a (possibly negated) comparison operator; `None` for
/// non-order operators left unrefined.
fn comparison(op: BinOp, truth: bool) -> Option<BinOp> {
    let op = if truth {
        op
    } else {
        match op {
            BinOp::Lt => BinOp::GtEq,
            BinOp::LtEq => BinOp::Gt,
            BinOp::Gt => BinOp::LtEq,
            BinOp::GtEq => BinOp::Lt,
            BinOp::Eq => BinOp::NotEq,
            BinOp::NotEq => BinOp::Eq,
            _ => return None,
        }
    };
    matches!(
        op,
        BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq | BinOp::Eq | BinOp::NotEq
    )
    .then_some(op)
}

/// Applies `lhs <op> rhs` to the tracked sides.
fn refine_cmp(
    mut env: Env,
    lhs: &Expr,
    op: BinOp,
    rhs: &Expr,
    interp: &Interp<'_>,
) -> Option<Env> {
    let l = interp.eval(&env, lhs);
    let r = interp.eval(&env, rhs);
    // Bound for the left side from the right interval, and vice versa.
    let (l_bound, r_bound) = match op {
        BinOp::Lt => (
            Interval { lo: NEG_INF, hi: add_hi(r.hi, -1) },
            Interval { lo: add_lo(l.lo, 1), hi: POS_INF },
        ),
        BinOp::LtEq => (
            Interval { lo: NEG_INF, hi: r.hi },
            Interval { lo: l.lo, hi: POS_INF },
        ),
        BinOp::Gt => (
            Interval { lo: add_lo(r.lo, 1), hi: POS_INF },
            Interval { lo: NEG_INF, hi: add_hi(l.hi, -1) },
        ),
        BinOp::GtEq => (
            Interval { lo: r.lo, hi: POS_INF },
            Interval { lo: NEG_INF, hi: l.hi },
        ),
        BinOp::Eq => (r, l),
        // `!=` only prunes when one side is a point at the other's edge;
        // skipped for simplicity.
        _ => return Some(env),
    };
    if let Some(key) = expr_key(lhs) {
        match l.meet(l_bound) {
            Some(refined) => {
                env.insert(key, refined);
            }
            None => return None,
        }
    } else if l.meet(l_bound).is_none() {
        return None;
    }
    if let Some(key) = expr_key(rhs) {
        match r.meet(r_bound) {
            Some(refined) => {
                env.insert(key, refined);
            }
            None => return None,
        }
    } else if r.meet(r_bound).is_none() {
        return None;
    }
    Some(env)
}

/// The environment key an expression reads, when it is a plain variable
/// or `this.field`.
fn expr_key(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Ident(name, _) => Some(name.clone()),
        Expr::Field { recv, name, .. } if matches!(recv.as_ref(), Expr::This(_)) => {
            Some(format!("this.{name}"))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::ast::Item;
    use wasabi_lang::project::Project;

    /// Analyses the single method `C.run` of `src`.
    fn analyze(src: &str) -> MethodAbs {
        let p = Project::compile("t", vec![("t.jav", src)]).expect("compile");
        for file in &p.files {
            for item in &file.items {
                let Item::Class(class) = item else { continue };
                if class.name != "C" {
                    continue;
                }
                for method in &class.methods {
                    if method.name == "run" {
                        return analyze_method(&p.index, "C", method);
                    }
                }
            }
        }
        panic!("C.run not found");
    }

    fn only_loop(abs: &MethodAbs) -> &LoopObs {
        assert_eq!(abs.loops.len(), 1, "expected one loop");
        abs.loops.values().next().unwrap()
    }

    #[test]
    fn bounded_counter_loop_attempts_are_exact() {
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        let obs = only_loop(&abs);
        assert_eq!(obs.attempts, Interval { lo: 0, hi: 5 });
        assert_eq!(obs.counter.as_deref(), Some("retry"));
        assert!(obs.counter_updated);
        assert!(!obs.guard_unreachable);
    }

    #[test]
    fn field_bound_propagates_through_the_index() {
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               field maxRetries = 7;\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < this.maxRetries; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        assert_eq!(only_loop(&abs).attempts, Interval { lo: 0, hi: 7 });
    }

    #[test]
    fn config_default_zero_makes_the_guard_unreachable() {
        let abs = analyze(
            "exception E;\n\
             config \"app.retry.max\" default 0;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < getConfig(\"app.retry.max\"); retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        let obs = only_loop(&abs);
        assert!(obs.guard_unreachable);
        assert_eq!(obs.attempts, Interval::constant(0));
    }

    #[test]
    fn stuck_counter_is_detected() {
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var retries = 0;\n\
                 while (retries < 5) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        let obs = only_loop(&abs);
        assert_eq!(obs.counter.as_deref(), Some("retries"));
        assert!(!obs.counter_updated);
        assert!(obs.attempts.unbounded_above());
    }

    #[test]
    fn uncapped_multiplicative_backoff_diverges() {
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 10;\n\
                 var retry = 0;\n\
                 while (true) {\n\
                   try { return this.op(); }\n\
                   catch (E e) { sleep(delay); delay = delay * 2; retry = retry + 1; }\n\
                 }\n\
               }\n\
             }\n",
        );
        let obs = only_loop(&abs);
        assert!(obs.head_interval("delay").unbounded_above());
        assert_eq!(obs.growths.len(), 1);
        assert_eq!(obs.growths[0].var, "delay");
        assert_eq!(obs.growths[0].factor, Interval::constant(2));
        let sleep = obs
            .sleeps
            .iter()
            .find(|s| s.vars.contains(&"delay".to_string()))
            .expect("sleep(delay) observed");
        assert!(sleep.ms.unbounded_above());
    }

    #[test]
    fn min_capped_backoff_narrows_back_to_the_cap() {
        // The shard-supervisor shape: multiplicative growth under a
        // `min(.., cap)` must NOT diverge — narrowing recovers the cap.
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               field capMs = 1000;\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 25;\n\
                 for (var retry = 0; retry < 16; retry = retry + 1) {\n\
                   try { return this.op(); }\n\
                   catch (E e) { sleep(delay); delay = min(delay * 2, this.capMs); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        let obs = only_loop(&abs);
        let delay = obs.head_interval("delay");
        assert!(
            !delay.unbounded_above(),
            "capped growth must stay bounded, got {delay}"
        );
        assert_eq!(delay, Interval { lo: 25, hi: 1000 });
    }

    #[test]
    fn guard_capped_backoff_narrows_back_to_the_cap() {
        // The `if (delay > cap) { delay = cap; }` idiom must also narrow.
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 10;\n\
                 for (var retry = 0; retry < 50; retry = retry + 1) {\n\
                   try { return this.op(); }\n\
                   catch (E e) {\n\
                     sleep(delay);\n\
                     delay = delay * 2;\n\
                     if (delay > 4000) { delay = 4000; }\n\
                   }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        let obs = only_loop(&abs);
        let delay = obs.head_interval("delay");
        assert!(
            !delay.unbounded_above(),
            "if-guarded growth must stay bounded, got {delay}"
        );
        assert!(delay.hi <= 4000, "cap respected, got {delay}");
    }

    #[test]
    fn interval_arithmetic_saturates_to_infinity() {
        let big = Interval::constant(i64::MAX / 2);
        assert_eq!(big.mul(Interval::constant(4)).hi, POS_INF);
        assert_eq!(
            Interval::constant(3).add(Interval::top()).hi,
            POS_INF
        );
        assert_eq!(
            Interval { lo: 2, hi: POS_INF }.mul(Interval::constant(2)).hi,
            POS_INF
        );
    }

    #[test]
    fn widening_then_narrowing_is_stable_across_nested_loops() {
        let abs = analyze(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var total = 0;\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   for (var inner = 0; inner < 4; inner = inner + 1) {\n\
                     try { this.op(); } catch (E e) { sleep(5); }\n\
                     total = total + 1;\n\
                   }\n\
                 }\n\
                 return total;\n\
               }\n\
             }\n",
        );
        assert_eq!(abs.loops.len(), 2);
        let attempts: Vec<Interval> = abs.loops.values().map(|o| o.attempts).collect();
        assert!(attempts.contains(&Interval { lo: 0, hi: 3 }));
        assert!(attempts.contains(&Interval { lo: 0, hi: 4 }));
    }
}
