//! Static WHEN-bug checks on retry loops: missing delay and missing cap.
//!
//! These are syntactic checks, faithful to what a query-based analysis can
//! see. The delay check is intraprocedural by default — a loop that delegates
//! sleeping to a helper method defined in another file is (wrongly) flagged,
//! reproducing the paper's single-file false-positive mode — and can be run
//! one level interprocedurally.

use crate::cfg::{Atom, Cfg};
use crate::loops::RetryLoop;
use crate::resolve::ProjectIndex;
use wasabi_lang::ast::{BinOp, Expr, Stmt};

/// How the delay check resolves helper methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayScope {
    /// Only `sleep` statements directly inside the loop count.
    Intraprocedural,
    /// Calls to methods that (transitively, one level) contain a `sleep`
    /// also count.
    OneLevelInterprocedural,
}

/// A static WHEN verdict for one retry loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhenVerdict {
    /// Whether a delay (sleep) was found on the loop's retry path.
    pub has_delay: bool,
    /// Whether a cap (bounded attempts / explicit exit comparison) was found.
    pub has_cap: bool,
}

/// Checks one retry loop for delay and cap evidence.
pub fn check_when(
    index: &ProjectIndex<'_>,
    retry_loop: &RetryLoop,
    delay_scope: DelayScope,
) -> Option<WhenVerdict> {
    let loop_site = index
        .loops()
        .iter()
        .find(|l| l.file == retry_loop.file && l.loop_id == retry_loop.loop_id)?;
    let cfg = Cfg::build(&loop_site.method.body);
    let mut has_delay = false;
    for block in cfg.blocks_in_loop(retry_loop.loop_id) {
        for atom in &cfg.blocks[block.0 as usize].atoms {
            match atom {
                Atom::Sleep { .. } => has_delay = true,
                Atom::Call {
                    method, recv_this, ..
                } if delay_scope == DelayScope::OneLevelInterprocedural => {
                    if let Some((_, decl)) =
                        index.resolve_callee(loop_site.class, method, *recv_this)
                    {
                        if body_contains_sleep(&decl.body) {
                            has_delay = true;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let has_cap = loop_has_cap(loop_site.stmt);
    Some(WhenVerdict { has_delay, has_cap })
}

/// Whether a method body contains a `sleep` statement anywhere.
pub fn body_contains_sleep(body: &wasabi_lang::ast::Block) -> bool {
    let mut found = false;
    wasabi_lang::ast::walk_stmts(body, &mut |stmt| {
        if matches!(stmt, Stmt::Sleep { .. }) {
            found = true;
        }
        true
    });
    found
}

/// Whether the loop is syntactically bounded: a comparison in its condition,
/// or an in-body comparison guarding an exit (`break`/`return`/`throw`).
pub fn loop_has_cap(loop_stmt: &Stmt) -> bool {
    let (cond, body) = match loop_stmt {
        Stmt::While { cond, body, .. } => (Some(cond), body),
        Stmt::For { cond, body, .. } => (cond.as_ref(), body),
        _ => return false,
    };
    if let Some(cond) = cond {
        if expr_has_comparison(cond) {
            return true;
        }
    }
    // Look for `if (<comparison>) { ...exit... }` inside the body.
    let mut capped = false;
    wasabi_lang::ast::walk_stmts(body, &mut |stmt| {
        if let Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } = stmt
        {
            if expr_has_comparison(cond)
                && (block_exits(then_blk)
                    || else_blk.as_ref().map(block_exits).unwrap_or(false))
            {
                capped = true;
            }
        }
        true
    });
    capped
}

fn expr_has_comparison(expr: &Expr) -> bool {
    let mut found = false;
    wasabi_lang::ast::walk_expr(expr, &mut |e| {
        if let Expr::Binary { op, .. } = e {
            if matches!(op, BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq) {
                found = true;
            }
        }
    });
    found
}

/// Whether a block contains an exit statement (`break`/`return`/`throw`).
pub fn block_exits(block: &wasabi_lang::ast::Block) -> bool {
    let mut exits = false;
    wasabi_lang::ast::walk_stmts(block, &mut |stmt| {
        if matches!(
            stmt,
            Stmt::Break { .. } | Stmt::Return { .. } | Stmt::Throw { .. }
        ) {
            exits = true;
        }
        true
    });
    exits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::{find_retry_loops, LoopQueryOptions};
    use wasabi_lang::project::Project;

    fn verdicts(src: &str, scope: DelayScope) -> Vec<WhenVerdict> {
        let p = Project::compile("t", vec![("t.jav", src)]).expect("compile");
        let idx = ProjectIndex::build(&p);
        let loops = find_retry_loops(&idx, &LoopQueryOptions::default());
        loops
            .iter()
            .map(|l| check_when(&idx, l, scope).expect("loop found"))
            .collect()
    }

    #[test]
    fn capped_and_delayed_loop_is_clean() {
        let v = verdicts(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(100); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
            DelayScope::Intraprocedural,
        );
        assert_eq!(v, vec![WhenVerdict { has_delay: true, has_cap: true }]);
    }

    #[test]
    fn uncapped_undelayed_loop_is_flagged() {
        let v = verdicts(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) { log(\"retry\"); }\n\
                 }\n\
               }\n\
             }",
            DelayScope::Intraprocedural,
        );
        assert_eq!(v, vec![WhenVerdict { has_delay: false, has_cap: false }]);
    }

    #[test]
    fn in_body_attempt_check_counts_as_cap() {
        let v = verdicts(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run(maxRetries) {\n\
                 var attempts = 0;\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) {\n\
                     attempts = attempts + 1;\n\
                     if (attempts > maxRetries) { throw new E(\"gave up\"); }\n\
                     sleep(50);\n\
                   }\n\
                 }\n\
               }\n\
             }",
            DelayScope::Intraprocedural,
        );
        assert_eq!(v, vec![WhenVerdict { has_delay: true, has_cap: true }]);
    }

    #[test]
    fn helper_sleep_is_missed_intraprocedurally_but_found_one_level() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method backoff(retryCount) { sleep(100 * retryCount); }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { this.backoff(retry); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let intra = verdicts(src, DelayScope::Intraprocedural);
        assert!(!intra[0].has_delay, "single-file view misses the helper sleep");
        let inter = verdicts(src, DelayScope::OneLevelInterprocedural);
        assert!(inter[0].has_delay, "one-level resolution finds it");
    }

    #[test]
    fn negative_config_cap_shape_still_counts_as_capped() {
        // The HDFS-15439 shape: the comparison exists, so static analysis
        // sees a cap; the bug (negative config ⇒ never equal) only manifests
        // dynamically.
        let v = verdicts(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var max = getConfig(\"mover.retry.max\");\n\
                 for (var retry = 0; retry < max; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
            DelayScope::Intraprocedural,
        );
        assert!(v[0].has_cap);
    }
}
