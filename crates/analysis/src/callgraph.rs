//! Deterministic whole-program call graph over the compile-once
//! [`ProgramIndex`](wasabi_lang::index::ProgramIndex).
//!
//! Calls are resolved through the same flattened dispatch tables the
//! interpreter executes, so static reasoning and dynamic dispatch can no
//! longer disagree (the `resolve.rs` name-matching split-brain):
//!
//! - **this-calls** (`this.m()` / implicit receiver) resolve through the
//!   dispatch table of the declaring class *and every subclass of it* —
//!   at run time `this` may be any subtype, so the target set
//!   over-approximates dynamic dispatch exactly.
//! - **typed receivers** (`new C().m()`, locals assigned `new C(...)`,
//!   fields initialised `new C(...)`) resolve through `C`'s table alone.
//! - **unknown receivers** fall back to the set of distinct dispatch
//!   targets for the method name across all classes; a unique target
//!   resolves, anything else stays a may-set.
//!
//! Everything is computed from dense ids in declaration order — no hash
//! iteration escapes into results — so the graph is byte-stable across
//! runs and worker counts.

use std::collections::HashMap;
use wasabi_lang::index::{ClassId, FieldInit, LExpr, LStmt, ProgramIndex, Slot};
use wasabi_lang::intern::Symbol;
use wasabi_lang::project::{CallSite, Project};

/// One call expression with its resolved may-target set.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// The static call site (file + span), as carried by the lowered IR.
    pub site: CallSite,
    /// Called method name.
    pub method: Symbol,
    /// May-target method indices, sorted and deduped. Empty when the name
    /// resolves on no class (e.g. methods of runtime builtin values).
    pub targets: Vec<u32>,
}

/// The whole-program call graph: per-method resolved call sites and the
/// flattened callee adjacency used by SCC/fixpoint passes.
#[derive(Debug)]
pub struct CallGraph {
    /// `calls[m]` — every call expression in method `m`, in lowering
    /// order.
    pub calls: Vec<Vec<ResolvedCall>>,
    /// `callees[m]` — union of target sets of `calls[m]`, sorted, deduped.
    pub callees: Vec<Vec<u32>>,
}

impl CallGraph {
    /// Builds the call graph for a compiled project.
    pub fn build(project: &Project) -> CallGraph {
        let index = &project.index;
        let field_types = infer_field_types(index);
        let mut calls = Vec::with_capacity(index.methods.len());
        let mut callees = Vec::with_capacity(index.methods.len());
        for method in &index.methods {
            let locals = infer_local_types(&method.body);
            let mut resolver = CallResolver {
                index,
                field_types: &field_types,
                locals: &locals,
                owner: method.owner,
                out: Vec::new(),
            };
            resolver.walk_stmts(&method.body);
            let mut adjacent: Vec<u32> = resolver
                .out
                .iter()
                .flat_map(|c| c.targets.iter().copied())
                .collect();
            adjacent.sort_unstable();
            adjacent.dedup();
            calls.push(resolver.out);
            callees.push(adjacent);
        }
        CallGraph { calls, callees }
    }

    /// Number of methods (nodes).
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Whether the graph has no methods.
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }
}

/// Flow-insensitive `(class, field) -> concrete class` typing: a field
/// whose every initialiser and every `this.f = new C(...)` assignment
/// agrees on one class gets that type; any conflict poisons it.
fn infer_field_types(index: &ProgramIndex) -> HashMap<(ClassId, Symbol), ClassId> {
    // `None` marks a poisoned (conflicting) entry.
    let mut types: HashMap<(ClassId, Symbol), Option<ClassId>> = HashMap::new();
    let mut record = |key: (ClassId, Symbol), class: ClassId| match types.entry(key) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(Some(class));
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if *e.get() != Some(class) {
                e.insert(None);
            }
        }
    };
    for (cidx, class) in index.classes.iter().enumerate() {
        let cid = ClassId(cidx as u32);
        for FieldInit { slot, expr } in &class.inits {
            if let LExpr::NewObj { class: c, .. } = expr {
                // Field initialisers address layout slots; map back to the
                // field name through the layout.
                if let Some((sym, _)) = class.layout.slots().find(|&(_, s)| s == *slot) {
                    record((cid, sym), *c);
                }
            }
        }
    }
    for method in &index.methods {
        walk_assignments(&method.body, &mut |name, value| {
            if let LExpr::NewObj { class: c, .. } = value {
                record((method.owner, name), *c);
            }
        });
    }
    types
        .into_iter()
        .filter_map(|(k, v)| v.map(|c| (k, c)))
        .collect()
}

/// Visits every `this.name = value` / implicit-field assignment in a body.
fn walk_assignments(stmts: &[LStmt], visit: &mut dyn FnMut(Symbol, &LExpr)) {
    for stmt in stmts {
        match stmt {
            LStmt::AssignField {
                recv: LExpr::This,
                name,
                value,
            } => visit(*name, value),
            LStmt::If {
                then_blk, else_blk, ..
            } => {
                walk_assignments(then_blk, visit);
                if let Some(e) = else_blk {
                    walk_assignments(e, visit);
                }
            }
            LStmt::While { body, .. } | LStmt::For { body, .. } => walk_assignments(body, visit),
            LStmt::Switch { cases, default, .. } => {
                for (_, body) in cases {
                    walk_assignments(body, visit);
                }
                if let Some(d) = default {
                    walk_assignments(d, visit);
                }
            }
            LStmt::Try {
                body,
                catches,
                finally,
            } => {
                walk_assignments(body, visit);
                for c in catches {
                    walk_assignments(&c.body, visit);
                }
                if let Some(f) = finally {
                    walk_assignments(f, visit);
                }
            }
            _ => {}
        }
    }
}

/// Flow-insensitive local typing: slots only ever assigned `new C(...)`
/// for a single `C` get that type.
fn infer_local_types(stmts: &[LStmt]) -> HashMap<Slot, ClassId> {
    let mut types: HashMap<Slot, Option<ClassId>> = HashMap::new();
    collect_local_types(stmts, &mut types);
    types
        .into_iter()
        .filter_map(|(k, v)| v.map(|c| (k, c)))
        .collect()
}

fn record_local_type(types: &mut HashMap<Slot, Option<ClassId>>, slot: Slot, value: &LExpr) {
    let class = match value {
        LExpr::NewObj { class, .. } => Some(*class),
        _ => None,
    };
    match types.entry(slot) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(class);
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if *e.get() != class {
                e.insert(None);
            }
        }
    }
}

fn collect_local_types(stmts: &[LStmt], types: &mut HashMap<Slot, Option<ClassId>>) {
    for stmt in stmts {
        match stmt {
            LStmt::Var { slot, init } => record_local_type(types, *slot, init),
            LStmt::AssignLocal { slot, value, .. } => record_local_type(types, *slot, value),
            LStmt::If {
                then_blk, else_blk, ..
            } => {
                collect_local_types(then_blk, types);
                if let Some(e) = else_blk {
                    collect_local_types(e, types);
                }
            }
            LStmt::While { body, .. } => collect_local_types(body, types),
            LStmt::For { init, body, .. } => {
                if let Some(i) = init {
                    collect_local_types(std::slice::from_ref(i), types);
                }
                collect_local_types(body, types);
            }
            LStmt::Switch { cases, default, .. } => {
                for (_, body) in cases {
                    collect_local_types(body, types);
                }
                if let Some(d) = default {
                    collect_local_types(d, types);
                }
            }
            LStmt::Try {
                body,
                catches,
                finally,
            } => {
                collect_local_types(body, types);
                for c in catches {
                    collect_local_types(&c.body, types);
                }
                if let Some(f) = finally {
                    collect_local_types(f, types);
                }
            }
            _ => {}
        }
    }
}

struct CallResolver<'a> {
    index: &'a ProgramIndex,
    field_types: &'a HashMap<(ClassId, Symbol), ClassId>,
    locals: &'a HashMap<Slot, ClassId>,
    owner: ClassId,
    out: Vec<ResolvedCall>,
}

impl<'a> CallResolver<'a> {
    /// The concrete class of a receiver expression, when statically known.
    fn static_class(&self, expr: &LExpr) -> Option<ClassId> {
        match expr {
            LExpr::This => Some(self.owner),
            LExpr::NewObj { class, .. } => Some(*class),
            LExpr::Local { slot, name } => self
                .locals
                .get(slot)
                .copied()
                .or_else(|| self.field_types.get(&(self.owner, *name)).copied()),
            LExpr::ImplicitField { name } => self.field_types.get(&(self.owner, *name)).copied(),
            LExpr::Field { recv, name } => {
                let recv_class = self.static_class(recv)?;
                self.field_types.get(&(recv_class, *name)).copied()
            }
            _ => None,
        }
    }

    fn resolve(&self, recv: Option<&LExpr>, method: Symbol) -> Vec<u32> {
        let mut targets = Vec::new();
        match recv {
            // Implicit or explicit `this`: at run time the receiver is the
            // declaring class or any subclass of it — exactly the classes
            // whose dispatch tables the interpreter would consult.
            None | Some(LExpr::This) => {
                for class in self.index.subtypes_of_class(self.owner) {
                    if let Some(midx) = self.index.resolve_dispatch(class, method) {
                        targets.push(midx);
                    }
                }
            }
            Some(expr) => match self.static_class(expr) {
                Some(class) => {
                    if let Some(midx) = self.index.resolve_dispatch(class, method) {
                        targets.push(midx);
                    }
                }
                None => {
                    // Unknown receiver type: any class answering to the
                    // name is a may-target.
                    for cidx in 0..self.index.classes.len() as u32 {
                        if let Some(midx) = self.index.resolve_dispatch(ClassId(cidx), method) {
                            targets.push(midx);
                        }
                    }
                }
            },
        }
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    fn walk_expr(&mut self, expr: &LExpr) {
        match expr {
            LExpr::Call {
                site,
                recv,
                method,
                args,
            } => {
                if let Some(r) = recv {
                    self.walk_expr(r);
                }
                for a in args {
                    self.walk_expr(a);
                }
                let targets = self.resolve(recv.as_deref(), *method);
                self.out.push(ResolvedCall {
                    site: *site,
                    method: *method,
                    targets,
                });
            }
            LExpr::Field { recv, .. } => self.walk_expr(recv),
            LExpr::GlobalCall { args, .. }
            | LExpr::NewExc { args, .. }
            | LExpr::NewObj { args, .. }
            | LExpr::NewUnknown { args, .. } => {
                for a in args {
                    self.walk_expr(a);
                }
            }
            LExpr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            LExpr::Unary { expr, .. } => self.walk_expr(expr),
            LExpr::InstanceOf { expr, .. } => self.walk_expr(expr),
            LExpr::Literal(_) | LExpr::Local { .. } | LExpr::ImplicitField { .. } | LExpr::This => {
            }
        }
    }

    fn walk_stmts(&mut self, stmts: &[LStmt]) {
        for stmt in stmts {
            match stmt {
                LStmt::Var { init, .. } => self.walk_expr(init),
                LStmt::AssignLocal { value, .. } => self.walk_expr(value),
                LStmt::AssignField { recv, value, .. } => {
                    self.walk_expr(recv);
                    self.walk_expr(value);
                }
                LStmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.walk_expr(cond);
                    self.walk_stmts(then_blk);
                    if let Some(e) = else_blk {
                        self.walk_stmts(e);
                    }
                }
                LStmt::While { cond, body } => {
                    self.walk_expr(cond);
                    self.walk_stmts(body);
                }
                LStmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    if let Some(i) = init {
                        self.walk_stmts(std::slice::from_ref(i));
                    }
                    if let Some(c) = cond {
                        self.walk_expr(c);
                    }
                    if let Some(u) = update {
                        self.walk_stmts(std::slice::from_ref(u));
                    }
                    self.walk_stmts(body);
                }
                LStmt::Switch {
                    scrutinee,
                    cases,
                    default,
                } => {
                    self.walk_expr(scrutinee);
                    for (_, body) in cases {
                        self.walk_stmts(body);
                    }
                    if let Some(d) = default {
                        self.walk_stmts(d);
                    }
                }
                LStmt::Try {
                    body,
                    catches,
                    finally,
                } => {
                    self.walk_stmts(body);
                    for c in catches {
                        self.walk_stmts(&c.body);
                    }
                    if let Some(f) = finally {
                        self.walk_stmts(f);
                    }
                }
                LStmt::Throw { expr } | LStmt::Log { expr } | LStmt::Expr { expr } => {
                    self.walk_expr(expr)
                }
                LStmt::Return { expr } => {
                    if let Some(e) = expr {
                        self.walk_expr(e);
                    }
                }
                LStmt::Sleep { ms } => self.walk_expr(ms),
                LStmt::Assert { cond, msg } => {
                    self.walk_expr(cond);
                    if let Some(m) = msg {
                        self.walk_expr(m);
                    }
                }
                LStmt::Break | LStmt::Continue => {}
            }
        }
    }
}

/// Strongly connected components of the callee graph, in reverse
/// topological order (callees before callers), with a dense
/// `component_of` lookup. Computed with an iterative Tarjan so deep call
/// chains cannot overflow the stack.
#[derive(Debug)]
pub struct Sccs {
    /// Components in reverse topological order; members sorted ascending.
    pub components: Vec<Vec<u32>>,
    /// `component_of[m]` — index into `components` for method `m`.
    pub component_of: Vec<u32>,
}

/// Computes SCCs of `callees` (adjacency by method index).
pub fn sccs(callees: &[Vec<u32>]) -> Sccs {
    let n = callees.len();
    let mut index_of = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut components: Vec<Vec<u32>> = Vec::new();
    let mut component_of = vec![0u32; n];
    let mut next_index = 0u32;

    // Explicit DFS frames: (node, next-child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index_of[start as usize] != u32::MAX {
            continue;
        }
        frames.push((start, 0));
        index_of[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < callees[v as usize].len() {
                let w = callees[v as usize][*child];
                *child += 1;
                if index_of[w as usize] == u32::MAX {
                    index_of[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index_of[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index_of[v as usize] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component_of[w as usize] = components.len() as u32;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    Sccs {
        components,
        component_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    fn project(src: &str) -> Project {
        Project::compile("t", vec![("t.jav", src)]).expect("compile")
    }

    fn method_idx(p: &Project, class: &str, name: &str) -> u32 {
        let cid = p.index.class_by_name(class).expect("class");
        let sym = p.index.interner.lookup(name).expect("name");
        p.index.resolve_dispatch(cid, sym).expect("dispatch")
    }

    #[test]
    fn this_calls_resolve_through_dispatch_including_overrides() {
        let p = project(
            "class Base {\n\
               method helper() { return 1; }\n\
               method run() { return this.helper(); }\n\
             }\n\
             class Derived extends Base {\n\
               method helper() { return 2; }\n\
             }",
        );
        let cg = CallGraph::build(&p);
        let run = method_idx(&p, "Base", "run");
        let base_helper = method_idx(&p, "Base", "helper");
        let derived_helper = method_idx(&p, "Derived", "helper");
        assert_ne!(base_helper, derived_helper);
        // `this.helper()` inside Base.run may dispatch to either override:
        // the runtime receiver can be a Derived instance.
        assert_eq!(cg.callees[run as usize], vec![base_helper, derived_helper]);
    }

    #[test]
    fn typed_receivers_resolve_precisely() {
        let p = project(
            "class Worker { method go() { return 1; } }\n\
             class Other { method go() { return 2; } }\n\
             class Main {\n\
               field w = new Worker();\n\
               method a() { var x = new Other(); return x.go(); }\n\
               method b() { return this.w.go(); }\n\
             }",
        );
        let cg = CallGraph::build(&p);
        let a = method_idx(&p, "Main", "a");
        let b = method_idx(&p, "Main", "b");
        let worker_go = method_idx(&p, "Worker", "go");
        let other_go = method_idx(&p, "Other", "go");
        assert_eq!(cg.callees[a as usize], vec![other_go]);
        assert_eq!(cg.callees[b as usize], vec![worker_go]);
    }

    #[test]
    fn unknown_receiver_falls_back_to_all_named_targets() {
        let p = project(
            "class A { method go() { return 1; } }\n\
             class B { method go() { return 2; } }\n\
             class Main { method run(x) { return x.go(); } }",
        );
        let cg = CallGraph::build(&p);
        let run = method_idx(&p, "Main", "run");
        assert_eq!(cg.callees[run as usize].len(), 2);
    }

    #[test]
    fn sccs_group_mutual_recursion_in_reverse_topo_order() {
        let p = project(
            "class C {\n\
               method a() { return this.b(); }\n\
               method b() { return this.a(); }\n\
               method leaf() { return 1; }\n\
               method top() { return this.a() + this.leaf(); }\n\
             }",
        );
        let cg = CallGraph::build(&p);
        let s = sccs(&cg.callees);
        let a = method_idx(&p, "C", "a");
        let b = method_idx(&p, "C", "b");
        let top = method_idx(&p, "C", "top");
        assert_eq!(
            s.component_of[a as usize], s.component_of[b as usize],
            "mutual recursion shares a component"
        );
        // Reverse topological: the a/b component precedes top's.
        assert!(s.component_of[a as usize] < s.component_of[top as usize]);
    }

    #[test]
    fn build_is_deterministic() {
        let src = "class A { method go() { return this.go(); } }\n\
                   class B extends A { method go() { return 2; } method other() { return new A().go(); } }";
        let p1 = project(src);
        let p2 = project(src);
        let render = |p: &Project| format!("{:?}", CallGraph::build(p).callees);
        assert_eq!(render(&p1), render(&p2));
    }
}
