#![forbid(unsafe_code)]
//! Static analysis for retry detection: the CodeQL substitute.
//!
//! This crate implements the query side of WASABI (§3.1.1 first technique and
//! §3.2.2 of the paper) over Javelin ASTs:
//!
//! - [`cfg`] — per-method control-flow graphs with deliberately
//!   over-approximate, syntactic edges;
//! - [`loops`] — the retry-loop query (catch-reaches-header + naming
//!   conventions) and retry-location triplet extraction;
//! - [`when`] — static missing-delay / missing-cap checks on retry loops;
//! - [`ifratio`] — application-wide retry-ratio analysis flagging
//!   inconsistent IF-retry policies;
//! - [`resolve`] — approximate static callee resolution and project indexes.
//!
//! # Examples
//!
//! ```
//! use wasabi_analysis::loops::{find_retry_loops, LoopQueryOptions};
//! use wasabi_analysis::resolve::ProjectIndex;
//! use wasabi_lang::project::Project;
//!
//! let src = r#"
//! exception ConnectException;
//! class Client {
//!     method connect() throws ConnectException { return 1; }
//!     method run() {
//!         for (var retry = 0; retry < 3; retry = retry + 1) {
//!             try { return this.connect(); } catch (ConnectException e) { sleep(100); }
//!         }
//!         return null;
//!     }
//! }
//! "#;
//! let project = Project::compile("demo", vec![("c.jav", src)]).unwrap();
//! let index = ProjectIndex::build(&project);
//! let loops = find_retry_loops(&index, &LoopQueryOptions::default());
//! assert_eq!(loops.len(), 1);
//! ```

pub mod cfg;
pub mod ifratio;
pub mod loops;
pub mod resolve;
pub mod when;

pub use ifratio::{if_ratio_reports, IfOptions, IfReport, OutlierKind};
pub use loops::{
    all_retry_locations, find_retry_loops, LoopQueryOptions, Mechanism, RetryLocation, RetryLoop,
};
pub use resolve::ProjectIndex;
pub use when::{check_when, DelayScope, WhenVerdict};
