#![forbid(unsafe_code)]
//! Static analysis for retry detection: the CodeQL substitute.
//!
//! This crate implements the query side of WASABI (§3.1.1 first technique and
//! §3.2.2 of the paper) over Javelin ASTs:
//!
//! - [`cfg`] — per-method control-flow graphs with deliberately
//!   over-approximate, syntactic edges;
//! - [`loops`] — the retry-loop query (catch-reaches-header + naming
//!   conventions) and retry-location triplet extraction;
//! - [`when`] — static missing-delay / missing-cap checks on retry loops;
//! - [`ifratio`] — application-wide retry-ratio analysis flagging
//!   inconsistent IF-retry policies;
//! - [`absint`] — per-method interval abstract interpretation of attempt
//!   counters and delay expressions (widening at loop heads, one
//!   narrowing pass), feeding the `W005`/`W006` policy checkers;
//! - [`lattice`] — the transient-vs-fatal exception classification
//!   behind the `W004` retry-on-non-retriable checker;
//! - [`resolve`] — dispatch-table-backed callee resolution and project
//!   indexes;
//! - [`callgraph`] — the deterministic interprocedural call graph
//!   (receiver typing + dispatch fanout over subtypes);
//! - [`summaries`] — per-method may-throw / may-sleep / may-retry /
//!   attempt-bound facts, solved by fixpoint over call-graph SCCs;
//! - [`checkers`] — the interprocedural lint (`W001`/`W002`/`W003` WHEN
//!   checks and the `A001` nested-retry amplification detector);
//! - [`diag`] — ordered diagnostics with canonical text/JSON rendering
//!   and baseline suppression.
//!
//! # Examples
//!
//! ```
//! use wasabi_analysis::loops::{find_retry_loops, LoopQueryOptions};
//! use wasabi_analysis::resolve::ProjectIndex;
//! use wasabi_lang::project::Project;
//!
//! let src = r#"
//! exception ConnectException;
//! class Client {
//!     method connect() throws ConnectException { return 1; }
//!     method run() {
//!         for (var retry = 0; retry < 3; retry = retry + 1) {
//!             try { return this.connect(); } catch (ConnectException e) { sleep(100); }
//!         }
//!         return null;
//!     }
//! }
//! "#;
//! let project = Project::compile("demo", vec![("c.jav", src)]).unwrap();
//! let index = ProjectIndex::build(&project);
//! let loops = find_retry_loops(&index, &LoopQueryOptions::default());
//! assert_eq!(loops.len(), 1);
//! ```

/// Checked dense-id indexing (the journal-cast convention): converting a
/// `u32` id for slice indexing panics with a message when the id does not
/// fit the address space, instead of silently wrapping into a
/// valid-looking small index.
pub(crate) fn idx(id: u32, what: &str) -> usize {
    usize::try_from(id).unwrap_or_else(|_| panic!("{what}: dense id {id} does not fit in usize"))
}

pub mod absint;
pub mod callgraph;
pub mod cfg;
pub mod lattice;
pub mod checkers;
pub mod diag;
pub mod ifratio;
pub mod loops;
pub mod patchsite;
pub mod resolve;
pub mod summaries;
pub mod when;

pub use absint::{analyze_method, Interval, LoopObs, MethodAbs};
pub use callgraph::{sccs, CallGraph, ResolvedCall, Sccs};
pub use lattice::{ExcLattice, Transience};
pub use checkers::{lint_project, LintOptions};
pub use diag::{render_json, render_text, Diagnostic, Severity};
pub use ifratio::{if_ratio_reports, IfOptions, IfReport, OutlierKind};
pub use loops::{
    all_retry_locations, find_retry_loops, LoopQueryOptions, Mechanism, RetryLocation, RetryLoop,
};
pub use resolve::ProjectIndex;
pub use summaries::{AttemptBound, MethodSummary, Summaries};
pub use when::{check_when, DelayScope, WhenVerdict};
