//! Callee resolution and project-wide indexes.
//!
//! Like the paper's CodeQL queries, resolution is *static and approximate*:
//! calls on `this` resolve through the enclosing class hierarchy; calls on
//! other receivers resolve only when the method name is unique across the
//! project. Unresolvable calls are skipped, which is a (realistic) source of
//! false negatives.

use std::collections::HashMap;
use wasabi_lang::ast::{Item, LoopId, MethodDecl, Stmt};
use wasabi_lang::project::{FileId, MethodId, Project};

/// Where a loop lives: file, enclosing class/method, and the loop statement.
#[derive(Debug, Clone, Copy)]
pub struct LoopSite<'p> {
    /// File the loop is in.
    pub file: FileId,
    /// Enclosing (coordinator) method.
    pub method: &'p MethodDecl,
    /// Enclosing class name.
    pub class: &'p str,
    /// The loop statement (`Stmt::While` or `Stmt::For`).
    pub stmt: &'p Stmt,
    /// The loop id.
    pub loop_id: LoopId,
}

/// Precomputed project-wide lookup structures.
pub struct ProjectIndex<'p> {
    project: &'p Project,
    /// Method name → declaring (class, decl) pairs.
    by_name: HashMap<&'p str, Vec<(&'p str, &'p MethodDecl)>>,
    /// All loops in the project.
    loops: Vec<LoopSite<'p>>,
}

impl<'p> ProjectIndex<'p> {
    /// Builds the index by walking every method in the project.
    pub fn build(project: &'p Project) -> Self {
        let mut by_name: HashMap<&str, Vec<(&str, &MethodDecl)>> = HashMap::new();
        let mut loops = Vec::new();
        for (fidx, file) in project.files.iter().enumerate() {
            for item in &file.items {
                let Item::Class(class) = item else { continue };
                for method in &class.methods {
                    by_name
                        .entry(method.name.as_str())
                        .or_default()
                        .push((class.name.as_str(), method));
                    wasabi_lang::ast::walk_stmts(&method.body, &mut |stmt| {
                        match stmt {
                            Stmt::While { id, .. } | Stmt::For { id, .. } => {
                                loops.push(LoopSite {
                                    file: FileId(fidx as u32),
                                    method,
                                    class: class.name.as_str(),
                                    stmt,
                                    loop_id: *id,
                                });
                            }
                            _ => {}
                        }
                        true
                    });
                }
            }
        }
        ProjectIndex {
            project,
            by_name,
            loops,
        }
    }

    /// The underlying project.
    pub fn project(&self) -> &'p Project {
        self.project
    }

    /// All loops in the project, in file/source order.
    pub fn loops(&self) -> &[LoopSite<'p>] {
        &self.loops
    }

    /// Resolves a called method statically.
    ///
    /// `recv_this` means the receiver is `this` (or implicit): resolve
    /// through `enclosing_class`'s hierarchy. Otherwise the name must be
    /// unique project-wide.
    pub fn resolve_callee(
        &self,
        enclosing_class: &str,
        method: &str,
        recv_this: bool,
    ) -> Option<(MethodId, &'p MethodDecl)> {
        if recv_this {
            return self
                .project
                .resolve_method(enclosing_class, method)
                .map(|(owner, decl)| (MethodId::new(owner, method), decl));
        }
        match self.by_name.get(method) {
            Some(candidates) if candidates.len() == 1 => {
                let (class, decl) = candidates[0];
                Some((MethodId::new(class, method), decl))
            }
            // Ambiguous or unknown: give up, like a purely syntactic query.
            _ => None,
        }
    }

    /// Methods invoked by `method` (resolved where possible) with their
    /// declared `throws` — the CodeQL follow-up step WASABI runs after the
    /// LLM flags a coordinator method (§3.1.1, second technique).
    pub fn invoked_with_throws(
        &self,
        class: &str,
        method: &MethodDecl,
    ) -> Vec<(wasabi_lang::project::CallSite, MethodId, Vec<String>)> {
        let file = match self.project.symbols.class(class) {
            Some(info) => info.file,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        wasabi_lang::ast::walk_exprs(&method.body, &mut |expr| {
            if let wasabi_lang::ast::Expr::Call {
                id, recv, method, ..
            } = expr
            {
                let recv_this = matches!(
                    recv.as_deref(),
                    None | Some(wasabi_lang::ast::Expr::This(_))
                );
                if let Some((callee, decl)) = self.resolve_callee(class, method, recv_this) {
                    out.push((
                        wasabi_lang::project::CallSite { file, call: *id },
                        callee,
                        decl.throws.clone(),
                    ));
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project(src: &str) -> Project {
        Project::compile("t", vec![("t.jav", src)]).expect("compile")
    }

    #[test]
    fn indexes_loops_across_methods() {
        let p = project(
            "class A { method m() { while (true) { break; } for (;;) { break; } } }\n\
             class B { method n() { while (false) { } } }",
        );
        let index = ProjectIndex::build(&p);
        assert_eq!(index.loops().len(), 3);
        assert_eq!(index.loops()[0].class, "A");
        assert_eq!(index.loops()[2].class, "B");
    }

    #[test]
    fn resolves_this_calls_through_hierarchy() {
        let p = project(
            "class Base { method helper() { return 1; } }\n\
             class Kid extends Base { method m() { this.helper(); } }",
        );
        let index = ProjectIndex::build(&p);
        let (id, _) = index.resolve_callee("Kid", "helper", true).expect("resolved");
        assert_eq!(id, MethodId::new("Base", "helper"));
    }

    #[test]
    fn unique_name_resolution_for_foreign_receivers() {
        let p = project(
            "class Conn { method close() { return 1; } }\n\
             class C { method m(conn) { conn.close(); } }",
        );
        let index = ProjectIndex::build(&p);
        let (id, _) = index.resolve_callee("C", "close", false).expect("resolved");
        assert_eq!(id, MethodId::new("Conn", "close"));
    }

    #[test]
    fn ambiguous_names_are_unresolved() {
        let p = project(
            "class A { method go() { return 1; } }\n\
             class B { method go() { return 2; } }\n\
             class C { method m(x) { x.go(); } }",
        );
        let index = ProjectIndex::build(&p);
        assert!(index.resolve_callee("C", "go", false).is_none());
    }

    #[test]
    fn invoked_with_throws_lists_call_sites() {
        let p = project(
            "exception ConnectException;\nexception IOException;\n\
             class C {\n\
               method connect() throws ConnectException { return 1; }\n\
               method fetch() throws IOException { return 2; }\n\
               method run() { this.connect(); this.fetch(); this.fetch(); }\n\
             }",
        );
        let index = ProjectIndex::build(&p);
        let run = p.resolve_method("C", "run").unwrap().1;
        let invoked = index.invoked_with_throws("C", run);
        assert_eq!(invoked.len(), 3);
        assert_eq!(invoked[0].1, MethodId::new("C", "connect"));
        assert_eq!(invoked[0].2, vec!["ConnectException"]);
        assert_eq!(invoked[1].2, vec!["IOException"]);
    }
}
