//! Callee resolution and project-wide indexes.
//!
//! Like the paper's CodeQL queries, resolution is *static and approximate*:
//! calls on `this` resolve through the enclosing class hierarchy; calls on
//! other receivers resolve only when the method name names a single
//! dispatch target across the project. Unresolvable calls are skipped,
//! which is a (realistic) source of false negatives.
//!
//! Resolution consults the compiled [`ProgramIndex`] dispatch tables — the
//! same tables the VM dispatches through — rather than a parallel
//! name-matching structure, so static targets can never drift from runtime
//! targets. [`ProjectIndex::resolve_callee`] keeps the historical
//! single-target contract (the statically enclosing class's view);
//! [`ProjectIndex::resolve_targets`] returns the full dispatch-consistent
//! may-set, which includes subclass overrides a `this` call can reach at
//! runtime.

use std::collections::HashMap;
use wasabi_lang::ast::{Item, LoopId, MethodDecl, Stmt};
use wasabi_lang::index::{ClassId, ProgramIndex};
use wasabi_lang::project::{FileId, MethodId, Project};

/// Where a loop lives: file, enclosing class/method, and the loop statement.
#[derive(Debug, Clone, Copy)]
pub struct LoopSite<'p> {
    /// File the loop is in.
    pub file: FileId,
    /// Enclosing (coordinator) method.
    pub method: &'p MethodDecl,
    /// Enclosing class name.
    pub class: &'p str,
    /// The loop statement (`Stmt::While` or `Stmt::For`).
    pub stmt: &'p Stmt,
    /// The loop id.
    pub loop_id: LoopId,
}

/// Precomputed project-wide lookup structures.
pub struct ProjectIndex<'p> {
    project: &'p Project,
    /// Method name → declaring (class, decl) pairs.
    by_name: HashMap<&'p str, Vec<(&'p str, &'p MethodDecl)>>,
    /// All loops in the project.
    loops: Vec<LoopSite<'p>>,
}

impl<'p> ProjectIndex<'p> {
    /// Builds the index by walking every method in the project.
    pub fn build(project: &'p Project) -> Self {
        let mut by_name: HashMap<&str, Vec<(&str, &MethodDecl)>> = HashMap::new();
        let mut loops = Vec::new();
        for (fidx, file) in project.files.iter().enumerate() {
            for item in &file.items {
                let Item::Class(class) = item else { continue };
                for method in &class.methods {
                    by_name
                        .entry(method.name.as_str())
                        .or_default()
                        .push((class.name.as_str(), method));
                    wasabi_lang::ast::walk_stmts(&method.body, &mut |stmt| {
                        match stmt {
                            Stmt::While { id, .. } | Stmt::For { id, .. } => {
                                loops.push(LoopSite {
                                    file: FileId(fidx as u32),
                                    method,
                                    class: class.name.as_str(),
                                    stmt,
                                    loop_id: *id,
                                });
                            }
                            _ => {}
                        }
                        true
                    });
                }
            }
        }
        ProjectIndex {
            project,
            by_name,
            loops,
        }
    }

    /// The underlying project.
    pub fn project(&self) -> &'p Project {
        self.project
    }

    /// All loops in the project, in file/source order.
    pub fn loops(&self) -> &[LoopSite<'p>] {
        &self.loops
    }

    /// Maps a compiled method index back to its AST declaration.
    fn compiled_target(&self, midx: u32) -> Option<(MethodId, &'p MethodDecl)> {
        let index: &ProgramIndex = &self.project.index;
        let compiled = &index.methods[midx as usize];
        let owner = index.classes[compiled.owner.0 as usize].name_str.as_str();
        let name = index.interner.resolve(compiled.name);
        self.by_name
            .get(name)?
            .iter()
            .find(|(class, _)| *class == owner)
            .map(|&(class, decl)| (MethodId::new(class, name), decl))
    }

    /// The single dispatch target for `method` anywhere in the program, if
    /// exactly one class hierarchy defines it.
    fn unique_foreign_target(&self, method: &str) -> Option<u32> {
        let index: &ProgramIndex = &self.project.index;
        let sym = index.interner.lookup(method)?;
        let mut target = None;
        for cid in (0..index.classes.len() as u32).map(ClassId) {
            match (index.resolve_dispatch(cid, sym), target) {
                (None, _) => {}
                (Some(midx), None) => target = Some(midx),
                (Some(midx), Some(t)) if midx == t => {}
                // Two distinct targets: ambiguous, give up like a purely
                // syntactic query.
                (Some(_), Some(_)) => return None,
            }
        }
        target
    }

    /// Resolves a called method statically to a single target.
    ///
    /// `recv_this` means the receiver is `this` (or implicit): resolve
    /// through `enclosing_class`'s dispatch table. Otherwise the name must
    /// map to a single dispatch target project-wide. This is the
    /// historical point query — a `this` call resolves to the statically
    /// enclosing class's view and ignores subclass overrides; use
    /// [`ProjectIndex::resolve_targets`] for the dispatch-consistent set.
    pub fn resolve_callee(
        &self,
        enclosing_class: &str,
        method: &str,
        recv_this: bool,
    ) -> Option<(MethodId, &'p MethodDecl)> {
        let index: &ProgramIndex = &self.project.index;
        if recv_this {
            let cid = index.class_by_name(enclosing_class)?;
            let sym = index.interner.lookup(method)?;
            return self.compiled_target(index.resolve_dispatch(cid, sym)?);
        }
        self.compiled_target(self.unique_foreign_target(method)?)
    }

    /// Every method a call could dispatch to at runtime.
    ///
    /// For `this` calls the receiver may be any subtype of the enclosing
    /// class, so every override in the hierarchy below it is a possible
    /// target. Foreign receivers keep the unique-target rule. Targets are
    /// returned in compiled-method order, deduplicated.
    pub fn resolve_targets(
        &self,
        enclosing_class: &str,
        method: &str,
        recv_this: bool,
    ) -> Vec<(MethodId, &'p MethodDecl)> {
        let index: &ProgramIndex = &self.project.index;
        let mut mids: Vec<u32> = Vec::new();
        if recv_this {
            let (Some(cid), Some(sym)) = (
                index.class_by_name(enclosing_class),
                index.interner.lookup(method),
            ) else {
                return Vec::new();
            };
            for sub in index.subtypes_of_class(cid) {
                if let Some(midx) = index.resolve_dispatch(sub, sym) {
                    mids.push(midx);
                }
            }
        } else if let Some(midx) = self.unique_foreign_target(method) {
            mids.push(midx);
        }
        mids.sort_unstable();
        mids.dedup();
        mids.into_iter()
            .filter_map(|m| self.compiled_target(m))
            .collect()
    }

    /// Methods invoked by `method` (resolved where possible) with their
    /// declared `throws` — the CodeQL follow-up step WASABI runs after the
    /// LLM flags a coordinator method (§3.1.1, second technique).
    pub fn invoked_with_throws(
        &self,
        class: &str,
        method: &MethodDecl,
    ) -> Vec<(wasabi_lang::project::CallSite, MethodId, Vec<String>)> {
        let file = match self.project.symbols.class(class) {
            Some(info) => info.file,
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        wasabi_lang::ast::walk_exprs(&method.body, &mut |expr| {
            if let wasabi_lang::ast::Expr::Call {
                id, recv, method, ..
            } = expr
            {
                let recv_this = matches!(
                    recv.as_deref(),
                    None | Some(wasabi_lang::ast::Expr::This(_))
                );
                for (callee, decl) in self.resolve_targets(class, method, recv_this) {
                    out.push((
                        wasabi_lang::project::CallSite { file, call: *id },
                        callee,
                        decl.throws.clone(),
                    ));
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn project(src: &str) -> Project {
        Project::compile("t", vec![("t.jav", src)]).expect("compile")
    }

    #[test]
    fn indexes_loops_across_methods() {
        let p = project(
            "class A { method m() { while (true) { break; } for (;;) { break; } } }\n\
             class B { method n() { while (false) { } } }",
        );
        let index = ProjectIndex::build(&p);
        assert_eq!(index.loops().len(), 3);
        assert_eq!(index.loops()[0].class, "A");
        assert_eq!(index.loops()[2].class, "B");
    }

    #[test]
    fn resolves_this_calls_through_hierarchy() {
        let p = project(
            "class Base { method helper() { return 1; } }\n\
             class Kid extends Base { method m() { this.helper(); } }",
        );
        let index = ProjectIndex::build(&p);
        let (id, _) = index.resolve_callee("Kid", "helper", true).expect("resolved");
        assert_eq!(id, MethodId::new("Base", "helper"));
    }

    #[test]
    fn unique_name_resolution_for_foreign_receivers() {
        let p = project(
            "class Conn { method close() { return 1; } }\n\
             class C { method m(conn) { conn.close(); } }",
        );
        let index = ProjectIndex::build(&p);
        let (id, _) = index.resolve_callee("C", "close", false).expect("resolved");
        assert_eq!(id, MethodId::new("Conn", "close"));
    }

    #[test]
    fn ambiguous_names_are_unresolved() {
        let p = project(
            "class A { method go() { return 1; } }\n\
             class B { method go() { return 2; } }\n\
             class C { method m(x) { x.go(); } }",
        );
        let index = ProjectIndex::build(&p);
        assert!(index.resolve_callee("C", "go", false).is_none());
    }

    #[test]
    fn this_call_targets_include_subclass_overrides() {
        // The split-brain divergence this reroute pins down: the old
        // name-matching resolver saw only the statically enclosing
        // hierarchy's declaration for a `this` call, but at runtime the
        // receiver can be a subclass whose override throws something else
        // entirely. The point query keeps the historical single-target
        // answer; the dispatch-table may-set includes the override.
        let p = project(
            "exception BaseError;\n\
             exception KidError;\n\
             class Base {\n\
               method process() throws BaseError { return 1; }\n\
               method run() { return this.process(); }\n\
             }\n\
             class Kid extends Base {\n\
               method process() throws KidError { return 2; }\n\
             }",
        );
        let index = ProjectIndex::build(&p);
        let (id, decl) = index.resolve_callee("Base", "process", true).expect("resolved");
        assert_eq!(id, MethodId::new("Base", "process"));
        assert_eq!(decl.throws, vec!["BaseError"]);
        let targets: Vec<MethodId> = index
            .resolve_targets("Base", "process", true)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(
            targets,
            vec![MethodId::new("Base", "process"), MethodId::new("Kid", "process")]
        );
        // From Kid's point of view only the override is reachable.
        let from_kid: Vec<MethodId> = index
            .resolve_targets("Kid", "process", true)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(from_kid, vec![MethodId::new("Kid", "process")]);
    }

    #[test]
    fn invoked_with_throws_lists_call_sites() {
        let p = project(
            "exception ConnectException;\nexception IOException;\n\
             class C {\n\
               method connect() throws ConnectException { return 1; }\n\
               method fetch() throws IOException { return 2; }\n\
               method run() { this.connect(); this.fetch(); this.fetch(); }\n\
             }",
        );
        let index = ProjectIndex::build(&p);
        let run = p.resolve_method("C", "run").unwrap().1;
        let invoked = index.invoked_with_throws("C", run);
        assert_eq!(invoked.len(), 3);
        assert_eq!(invoked[0].1, MethodId::new("C", "connect"));
        assert_eq!(invoked[0].2, vec!["ConnectException"]);
        assert_eq!(invoked[1].2, vec!["IOException"]);
    }
}
