//! Per-method interprocedural summaries, computed as a fixpoint over the
//! call graph's SCC condensation.
//!
//! Each method gets a [`MethodSummary`]:
//!
//! - **may-throw** — the set of declared exception types that can escape
//!   the method: its `throws` clause, explicit `throw new E(..)` sites not
//!   covered by an enclosing catch, rethrown catch bindings, and every
//!   callee's may-throw set filtered through the try/catch context of the
//!   call site. The set is an over-approximation under exception
//!   subtyping: anything the method actually raises is a subtype of some
//!   member.
//! - **may-sleep** — whether a `sleep(..)` statement is reachable through
//!   any call chain (no catch filtering: delays count wherever they
//!   live).
//! - **may-retry / attempt bound** — whether the method (or anything it
//!   transitively calls) contains a retry loop, and the local loop's
//!   attempt bound when it does.
//!
//! # Determinism
//!
//! Components are processed level by level over the condensation DAG
//! (level = longest path to a leaf). Two components on the same level
//! cannot call each other, so every cross-component read touches a
//! finalized summary from a strictly lower level; within a component the
//! fixpoint iterates members in ascending method order until stable. The
//! worker threads that split a level's components among themselves
//! therefore compute identical values in any interleaving — `--jobs 1`
//! and `--jobs 4` produce byte-identical summaries.

use crate::callgraph::{sccs, CallGraph, ResolvedCall};
use crate::idx;
use std::collections::{BTreeSet, HashMap};
use wasabi_lang::ast::BinOp;
use wasabi_lang::index::{ExcId, LExpr, LStmt, ProgramIndex, Slot};
use wasabi_lang::project::{CallSite, Project};

/// Worst-case attempt bound of a retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptBound {
    /// Bounded by a statically known count.
    Bounded(u64),
    /// A cap exists but its value is not statically known.
    Capped,
    /// No attempt cap found.
    Unbounded,
}

impl AttemptBound {
    /// Multiplies two bounds (worst-case product of nested retries).
    pub fn multiply(self, other: AttemptBound) -> AttemptBound {
        match (self, other) {
            (AttemptBound::Unbounded, _) | (_, AttemptBound::Unbounded) => AttemptBound::Unbounded,
            (AttemptBound::Capped, _) | (_, AttemptBound::Capped) => AttemptBound::Capped,
            (AttemptBound::Bounded(a), AttemptBound::Bounded(b)) => {
                AttemptBound::Bounded(a.saturating_mul(b))
            }
        }
    }
}

impl std::fmt::Display for AttemptBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptBound::Bounded(n) => write!(f, "{n}"),
            AttemptBound::Capped => write!(f, "capped(?)"),
            AttemptBound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// The interprocedural facts computed for one compiled method.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MethodSummary {
    /// Exception types that may escape the method.
    pub may_throw: BTreeSet<ExcId>,
    /// Whether a `sleep` is reachable through the method.
    pub may_sleep: bool,
    /// Whether the method body itself contains a retry loop.
    pub has_retry_loop: bool,
    /// Whether a retry loop is reachable through the method.
    pub may_retry: bool,
    /// Attempt bound of the method's own retry loop(s); worst case when
    /// there are several. `None` when the method has no retry loop.
    pub attempts: Option<AttemptBound>,
    /// Whether the method body itself contains an ordering comparison
    /// (`<`, `<=`, `>`, `>=`) — a local fact (not propagated) used to
    /// recognise cap checks delegated to helpers.
    pub has_comparison: bool,
}

/// Summaries for every compiled method, indexed by method index.
#[derive(Debug)]
pub struct Summaries {
    /// `methods[m]` — summary for method index `m`.
    pub methods: Vec<MethodSummary>,
}

impl Summaries {
    /// Computes all summaries. `local_retry` carries, per method index,
    /// the attempt bound of the retry loops found in that method by the
    /// loop query (empty slice when only throw/sleep facts are needed);
    /// `jobs` bounds the worker threads used per condensation level.
    pub fn compute(
        project: &Project,
        cg: &CallGraph,
        local_retry: &[(u32, AttemptBound)],
        jobs: usize,
    ) -> Summaries {
        let index = &project.index;
        let n = index.methods.len();
        let mut retry_bounds: Vec<Option<AttemptBound>> = vec![None; n];
        for &(midx, bound) in local_retry {
            let slot = &mut retry_bounds[idx(midx, "retry method")];
            *slot = Some(match *slot {
                // Several loops in one method: keep the worst case.
                Some(existing) => existing.max_of(bound),
                None => bound,
            });
        }

        let scc = sccs(&cg.callees);
        // Level = longest path to a leaf component. Components arrive in
        // reverse topological order, so every callee component has a
        // smaller index and its level is already final.
        let mut levels = vec![0u32; scc.components.len()];
        for (ci, members) in scc.components.iter().enumerate() {
            let mut level = 0;
            for &m in members {
                for &callee in &cg.callees[idx(m, "scc member")] {
                    let cc = idx(scc.component_of[idx(callee, "callee method")], "component");
                    if cc != ci {
                        level = level.max(levels[cc] + 1);
                    }
                }
            }
            levels[ci] = level;
        }
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); idx(max_level, "scc level") + 1];
        for (ci, &level) in levels.iter().enumerate() {
            by_level[idx(level, "scc level")].push(ci);
        }

        let mut methods: Vec<MethodSummary> = vec![MethodSummary::default(); n];
        let jobs = jobs.max(1);
        for level in &by_level {
            if level.is_empty() {
                continue;
            }
            let chunk = level.len().div_ceil(jobs);
            let results: Vec<(u32, MethodSummary)> = if jobs == 1 || level.len() == 1 {
                solve_components(index, cg, &scc.components, level, &retry_bounds, &methods)
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = level
                        .chunks(chunk)
                        .map(|part| {
                            let methods = &methods;
                            let retry_bounds = &retry_bounds;
                            let components = &scc.components;
                            scope.spawn(move || {
                                solve_components(
                                    index,
                                    cg,
                                    components,
                                    part,
                                    retry_bounds,
                                    methods,
                                )
                            })
                        })
                        .collect();
                    let mut out = Vec::new();
                    for handle in handles {
                        out.extend(handle.join().expect("summary worker panicked"));
                    }
                    out
                })
            };
            for (midx, summary) in results {
                methods[idx(midx, "solved method")] = summary;
            }
        }
        Summaries { methods }
    }

    /// Union of the may-throw sets of a call's targets.
    pub fn targets_may_throw(&self, call: &ResolvedCall) -> BTreeSet<ExcId> {
        let mut out = BTreeSet::new();
        for &t in &call.targets {
            out.extend(self.methods[idx(t, "call target")].may_throw.iter().copied());
        }
        out
    }
}

impl AttemptBound {
    /// The worse (larger) of two bounds.
    fn max_of(self, other: AttemptBound) -> AttemptBound {
        match (self, other) {
            (AttemptBound::Unbounded, _) | (_, AttemptBound::Unbounded) => AttemptBound::Unbounded,
            (AttemptBound::Capped, _) | (_, AttemptBound::Capped) => AttemptBound::Capped,
            (AttemptBound::Bounded(a), AttemptBound::Bounded(b)) => AttemptBound::Bounded(a.max(b)),
        }
    }
}

/// Solves the fixpoint for a slice of same-level components. Only reads
/// `finalized` entries from strictly lower levels (plus the local overlay
/// for in-component recursion), so the result is independent of how
/// components are distributed across workers.
fn solve_components(
    index: &ProgramIndex,
    cg: &CallGraph,
    components: &[Vec<u32>],
    which: &[usize],
    retry_bounds: &[Option<AttemptBound>],
    finalized: &[MethodSummary],
) -> Vec<(u32, MethodSummary)> {
    let mut out = Vec::new();
    for &ci in which {
        let members = &components[ci];
        let mut overlay: HashMap<u32, MethodSummary> = members
            .iter()
            .map(|&m| (m, MethodSummary::default()))
            .collect();
        loop {
            let mut changed = false;
            for &m in members {
                let next = transfer(index, cg, m, retry_bounds, finalized, &overlay);
                let current = overlay.get_mut(&m).expect("overlay member");
                if *current != next {
                    *current = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for &m in members {
            out.push((m, overlay.remove(&m).expect("overlay member")));
        }
    }
    out
}

/// One application of the summary transfer function for method `midx`.
fn transfer(
    index: &ProgramIndex,
    cg: &CallGraph,
    midx: u32,
    retry_bounds: &[Option<AttemptBound>],
    finalized: &[MethodSummary],
    overlay: &HashMap<u32, MethodSummary>,
) -> MethodSummary {
    let method = &index.methods[idx(midx, "method")];
    let call_targets: HashMap<CallSite, &[u32]> = cg.calls[idx(midx, "method")]
        .iter()
        .map(|c| (c.site, c.targets.as_slice()))
        .collect();
    let mut walker = BodyWalker {
        index,
        overlay,
        finalized,
        call_targets: &call_targets,
        handlers: Vec::new(),
        bindings: HashMap::new(),
        may_throw: method.throws.iter().copied().collect(),
        may_sleep: false,
        may_retry: false,
        has_comparison: false,
    };
    walker.stmts(&method.body);
    let attempts = retry_bounds[idx(midx, "method")];
    MethodSummary {
        may_throw: walker.may_throw,
        may_sleep: walker.may_sleep,
        has_retry_loop: attempts.is_some(),
        may_retry: attempts.is_some() || walker.may_retry,
        attempts,
        has_comparison: walker.has_comparison,
    }
}

struct BodyWalker<'a> {
    index: &'a ProgramIndex,
    overlay: &'a HashMap<u32, MethodSummary>,
    finalized: &'a [MethodSummary],
    call_targets: &'a HashMap<CallSite, &'a [u32]>,
    /// Stack of enclosing catch-clause type lists (innermost last); only
    /// the clauses protecting the *current* position are on the stack.
    handlers: Vec<Vec<ExcId>>,
    /// Catch-binding slots in scope, for typing `throw e;` rethrows.
    bindings: HashMap<Slot, ExcId>,
    may_throw: BTreeSet<ExcId>,
    may_sleep: bool,
    may_retry: bool,
    has_comparison: bool,
}

impl<'a> BodyWalker<'a> {
    /// The current summary of method `m`: in-component overlay first,
    /// else the finalized lower-level result.
    fn summary_of(&self, m: u32) -> &MethodSummary {
        self.overlay.get(&m).unwrap_or(&self.finalized[idx(m, "method")])
    }

    /// Records that exception `exc` is raised at the current position; it
    /// escapes unless an enclosing catch clause covers it.
    fn raise(&mut self, exc: ExcId) {
        let handled = self
            .handlers
            .iter()
            .flatten()
            .any(|&h| self.index.is_exc_subtype(exc, h));
        if !handled {
            self.may_throw.insert(exc);
        }
    }

    /// The top exception type, used when a rethrown value cannot be typed.
    fn throwable(&self) -> Option<ExcId> {
        self.index.exc_by_name("Throwable")
    }

    fn expr(&mut self, expr: &LExpr) {
        match expr {
            LExpr::Call {
                site, recv, args, ..
            } => {
                if let Some(r) = recv {
                    self.expr(r);
                }
                for a in args {
                    self.expr(a);
                }
                if let Some(targets) = self.call_targets.get(site) {
                    let mut thrown: Vec<ExcId> = Vec::new();
                    let mut sleeps = false;
                    let mut retries = false;
                    for &t in *targets {
                        let summary = self.summary_of(t);
                        sleeps |= summary.may_sleep;
                        retries |= summary.may_retry;
                        thrown.extend(summary.may_throw.iter().copied());
                    }
                    self.may_sleep |= sleeps;
                    self.may_retry |= retries;
                    for exc in thrown {
                        self.raise(exc);
                    }
                }
            }
            LExpr::Field { recv, .. } => self.expr(recv),
            LExpr::GlobalCall { args, .. }
            | LExpr::NewExc { args, .. }
            | LExpr::NewObj { args, .. }
            | LExpr::NewUnknown { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            LExpr::Binary { op, lhs, rhs } => {
                if matches!(op, BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq) {
                    self.has_comparison = true;
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            LExpr::Unary { expr, .. } | LExpr::InstanceOf { expr, .. } => self.expr(expr),
            LExpr::Literal(_) | LExpr::Local { .. } | LExpr::ImplicitField { .. } | LExpr::This => {
            }
        }
    }

    fn stmts(&mut self, stmts: &[LStmt]) {
        for stmt in stmts {
            match stmt {
                LStmt::Var { init, .. } => self.expr(init),
                LStmt::AssignLocal { value, .. } => self.expr(value),
                LStmt::AssignField { recv, value, .. } => {
                    self.expr(recv);
                    self.expr(value);
                }
                LStmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.expr(cond);
                    self.stmts(then_blk);
                    if let Some(e) = else_blk {
                        self.stmts(e);
                    }
                }
                LStmt::While { cond, body } => {
                    self.expr(cond);
                    self.stmts(body);
                }
                LStmt::For {
                    init,
                    cond,
                    update,
                    body,
                } => {
                    if let Some(i) = init {
                        self.stmts(std::slice::from_ref(i));
                    }
                    if let Some(c) = cond {
                        self.expr(c);
                    }
                    if let Some(u) = update {
                        self.stmts(std::slice::from_ref(u));
                    }
                    self.stmts(body);
                }
                LStmt::Switch {
                    scrutinee,
                    cases,
                    default,
                } => {
                    self.expr(scrutinee);
                    for (_, body) in cases {
                        self.stmts(body);
                    }
                    if let Some(d) = default {
                        self.stmts(d);
                    }
                }
                LStmt::Try {
                    body,
                    catches,
                    finally,
                } => {
                    // The protected body runs under this try's clauses.
                    self.handlers
                        .push(catches.iter().map(|c| c.exc).collect());
                    self.stmts(body);
                    self.handlers.pop();
                    // Catch bodies run under the *outer* context only; the
                    // binding slot types rethrows inside the body.
                    for c in catches {
                        let shadowed = self.bindings.insert(c.binding, c.exc);
                        self.stmts(&c.body);
                        match shadowed {
                            Some(prev) => {
                                self.bindings.insert(c.binding, prev);
                            }
                            None => {
                                self.bindings.remove(&c.binding);
                            }
                        }
                    }
                    if let Some(f) = finally {
                        self.stmts(f);
                    }
                }
                LStmt::Throw { expr } => {
                    self.expr(expr);
                    let raised = match expr {
                        LExpr::NewExc { exc, .. } => Some(*exc),
                        LExpr::Local { slot, .. } => self
                            .bindings
                            .get(slot)
                            .copied()
                            .or_else(|| self.throwable()),
                        _ => self.throwable(),
                    };
                    if let Some(exc) = raised {
                        self.raise(exc);
                    }
                }
                LStmt::Return { expr } => {
                    if let Some(e) = expr {
                        self.expr(e);
                    }
                }
                LStmt::Sleep { ms } => {
                    self.expr(ms);
                    self.may_sleep = true;
                }
                LStmt::Log { expr } | LStmt::Expr { expr } => self.expr(expr),
                LStmt::Assert { cond, msg } => {
                    self.expr(cond);
                    if let Some(m) = msg {
                        self.expr(m);
                    }
                }
                LStmt::Break | LStmt::Continue => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    fn project(src: &str) -> Project {
        Project::compile("t", vec![("t.jav", src)]).expect("compile")
    }

    fn summaries(p: &Project, jobs: usize) -> Summaries {
        let cg = CallGraph::build(p);
        Summaries::compute(p, &cg, &[], jobs)
    }

    fn midx(p: &Project, class: &str, name: &str) -> usize {
        let cid = p.index.class_by_name(class).expect("class");
        let sym = p.index.interner.lookup(name).expect("name");
        idx(p.index.resolve_dispatch(cid, sym).expect("dispatch"), "dispatch")
    }

    fn exc(p: &Project, name: &str) -> ExcId {
        p.index.exc_by_name(name).expect("exception")
    }

    #[test]
    fn may_throw_propagates_through_calls_and_catches() {
        let p = project(
            "exception NetError;\n\
             exception DiskError;\n\
             class C {\n\
               method low() { throw new NetError(\"n\"); }\n\
               method mid() { throw new DiskError(\"d\"); }\n\
               method both() { this.low(); this.mid(); return 1; }\n\
               method filtered() {\n\
                 try { this.both(); } catch (NetError e) { log(e); }\n\
                 return 1;\n\
               }\n\
             }",
        );
        let s = summaries(&p, 1);
        let both = &s.methods[midx(&p, "C", "both")];
        assert!(both.may_throw.contains(&exc(&p, "NetError")));
        assert!(both.may_throw.contains(&exc(&p, "DiskError")));
        let filtered = &s.methods[midx(&p, "C", "filtered")];
        assert!(!filtered.may_throw.contains(&exc(&p, "NetError")));
        assert!(filtered.may_throw.contains(&exc(&p, "DiskError")));
    }

    #[test]
    fn rethrown_binding_keeps_its_catch_type() {
        let p = project(
            "exception NetError;\n\
             class C {\n\
               method low() throws NetError { return 1; }\n\
               method wrap() {\n\
                 try { this.low(); } catch (NetError e) { log(\"x\"); throw e; }\n\
                 return 1;\n\
               }\n\
             }",
        );
        let s = summaries(&p, 1);
        let wrap = &s.methods[midx(&p, "C", "wrap")];
        assert!(wrap.may_throw.contains(&exc(&p, "NetError")));
    }

    #[test]
    fn may_sleep_crosses_two_call_levels() {
        let p = project(
            "class C {\n\
               method pause() { sleep(50); }\n\
               method backoff() { this.pause(); }\n\
               method run() { this.backoff(); return 1; }\n\
               method quiet() { return 1; }\n\
             }",
        );
        let s = summaries(&p, 1);
        assert!(s.methods[midx(&p, "C", "run")].may_sleep);
        assert!(!s.methods[midx(&p, "C", "quiet")].may_sleep);
    }

    #[test]
    fn recursive_cycle_reaches_fixpoint() {
        let p = project(
            "exception NetError;\n\
             class C {\n\
               method a(n) { if (n > 0) { this.b(n - 1); } return 1; }\n\
               method b(n) { if (n > 2) { throw new NetError(\"x\"); } this.a(n); return 2; }\n\
             }",
        );
        let s = summaries(&p, 1);
        assert!(s.methods[midx(&p, "C", "a")]
            .may_throw
            .contains(&exc(&p, "NetError")));
        assert!(s.methods[midx(&p, "C", "b")]
            .may_throw
            .contains(&exc(&p, "NetError")));
    }

    #[test]
    fn jobs_do_not_change_summaries() {
        let src = "exception NetError;\n\
             exception DiskError;\n\
             class A { method x() { throw new NetError(\"a\"); } }\n\
             class B { method y() { new A().x(); sleep(5); return 1; } }\n\
             class C {\n\
               method r1() { new B().y(); return this.r2(); }\n\
               method r2() { if (true) { return this.r1(); } throw new DiskError(\"c\"); }\n\
             }";
        let p = project(src);
        let s1 = summaries(&p, 1);
        let s4 = summaries(&p, 4);
        assert_eq!(s1.methods, s4.methods);
    }
}
