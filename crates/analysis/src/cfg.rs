//! Control-flow graphs for Javelin methods.
//!
//! The CFG is deliberately built the way a query engine like CodeQL sees
//! code: structured statements are lowered to basic blocks with
//! over-approximate edges (both branches of every `if`, an edge from the try
//! entry into every catch handler). This keeps the analysis *syntactic* — a
//! catch block that sets a boolean flag which later forces a `break` still
//! "reaches the loop header" here, reproducing the paper's known IF-analysis
//! false positive (§4.3).

use wasabi_lang::ast::{Block as AstBlock, CallId, Expr, LoopId, Stmt};
use wasabi_lang::span::Span;

/// Index of a basic block within a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A flow-relevant element inside a basic block.
#[derive(Debug, Clone)]
pub enum Atom {
    /// A user-method call site.
    Call {
        /// Call id within the file.
        id: CallId,
        /// Called method name.
        method: String,
        /// Receiver class hint: `Some(class)` when the receiver is `this`
        /// (or implicit), `None` when it must be resolved by name.
        recv_this: bool,
        /// Source span of the call.
        span: Span,
    },
    /// A `sleep(...)` statement (a delay API call).
    Sleep {
        /// Source span.
        span: Span,
    },
    /// A `throw` statement of the given (syntactic) exception type, if the
    /// thrown expression is a `new E(...)`; rethrows are `None`.
    Throw {
        /// Exception type, when syntactically evident.
        exc_type: Option<String>,
        /// Source span.
        span: Span,
    },
}

/// A basic block.
#[derive(Debug, Clone, Default)]
pub struct BasicBlock {
    /// Flow-relevant atoms in order.
    pub atoms: Vec<Atom>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Loops enclosing this block, outermost first.
    pub loops: Vec<LoopId>,
    /// Set when this block is the header of a loop.
    pub loop_header: Option<LoopId>,
    /// Set when this block is the entry of a `catch (E ...)` handler.
    pub catch_entry: Option<String>,
}

/// A method's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Builds the CFG of a method body.
    pub fn build(body: &AstBlock) -> Cfg {
        let mut builder = Builder {
            blocks: vec![BasicBlock::default()],
        };
        let entry = BlockId(0);
        let ctx = Ctx {
            break_to: None,
            continue_to: None,
            loops: Vec::new(),
        };
        builder.lower_block(body, entry, &ctx);
        Cfg {
            blocks: builder.blocks,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// All blocks reachable from `from` (inclusive) following successor
    /// edges.
    pub fn reachable_from(&self, from: BlockId) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        let mut out = Vec::new();
        while let Some(block) = stack.pop() {
            let idx = block.0 as usize;
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            out.push(block);
            for succ in &self.blocks[idx].succs {
                if !seen[succ.0 as usize] {
                    stack.push(*succ);
                }
            }
        }
        out
    }

    /// Whether the header block of `loop_id` is reachable from `from`.
    pub fn header_reachable_from(&self, from: BlockId, loop_id: LoopId) -> bool {
        self.reachable_from(from).into_iter().any(|b| {
            self.blocks[b.0 as usize].loop_header == Some(loop_id)
        })
    }

    /// Catch-entry blocks that lie inside `loop_id`, with their exception
    /// types.
    pub fn catches_in_loop(&self, loop_id: LoopId) -> Vec<(BlockId, &str)> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(idx, block)| {
                let ty = block.catch_entry.as_deref()?;
                if block.loops.contains(&loop_id) {
                    Some((BlockId(idx as u32), ty))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Blocks that lie inside `loop_id`.
    pub fn blocks_in_loop(&self, loop_id: LoopId) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(idx, block)| {
                if block.loops.contains(&loop_id) || block.loop_header == Some(loop_id) {
                    Some(BlockId(idx as u32))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[derive(Clone)]
struct Ctx {
    break_to: Option<BlockId>,
    continue_to: Option<BlockId>,
    loops: Vec<LoopId>,
}

struct Builder {
    blocks: Vec<BasicBlock>,
}

impl Builder {
    fn new_block(&mut self, ctx: &Ctx) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            loops: ctx.loops.clone(),
            ..BasicBlock::default()
        });
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        let succs = &mut self.blocks[from.0 as usize].succs;
        if !succs.contains(&to) {
            succs.push(to);
        }
    }

    fn push_atom(&mut self, block: BlockId, atom: Atom) {
        self.blocks[block.0 as usize].atoms.push(atom);
    }

    /// Collects call and sleep atoms from an expression into `block`.
    fn expr_atoms(&mut self, block: BlockId, expr: &Expr) {
        wasabi_lang::ast::walk_expr(expr, &mut |e| {
            if let Expr::Call {
                id,
                recv,
                method,
                span,
                ..
            } = e
            {
                let recv_this = matches!(recv.as_deref(), None | Some(Expr::This(_)));
                self.blocks[block.0 as usize].atoms.push(Atom::Call {
                    id: *id,
                    method: method.clone(),
                    recv_this,
                    span: *span,
                });
            }
        });
    }

    fn stmt_atoms(&mut self, block: BlockId, stmt: &Stmt) {
        match stmt {
            Stmt::Var { init, .. } => self.expr_atoms(block, init),
            Stmt::Assign { value, .. } => self.expr_atoms(block, value),
            Stmt::Sleep { ms, span } => {
                self.expr_atoms(block, ms);
                self.push_atom(block, Atom::Sleep { span: *span });
            }
            Stmt::Log { expr, .. } | Stmt::Expr { expr, .. } => self.expr_atoms(block, expr),
            Stmt::Assert { cond, msg, .. } => {
                self.expr_atoms(block, cond);
                if let Some(msg) = msg {
                    self.expr_atoms(block, msg);
                }
            }
            Stmt::Throw { expr, span } => {
                self.expr_atoms(block, expr);
                let exc_type = match expr {
                    Expr::New { class, .. } => Some(class.clone()),
                    _ => None,
                };
                self.push_atom(block, Atom::Throw {
                    exc_type,
                    span: *span,
                });
            }
            Stmt::Return { expr: Some(expr), .. } => self.expr_atoms(block, expr),
            _ => {}
        }
    }

    /// Lowers `stmts` starting in `current`; returns the block where control
    /// continues (possibly a fresh unreachable block after a terminator).
    fn lower_block(&mut self, block: &AstBlock, mut current: BlockId, ctx: &Ctx) -> BlockId {
        for stmt in &block.stmts {
            current = self.lower_stmt(stmt, current, ctx);
        }
        current
    }

    fn lower_stmt(&mut self, stmt: &Stmt, current: BlockId, ctx: &Ctx) -> BlockId {
        match stmt {
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expr_atoms(current, cond);
                let then_entry = self.new_block(ctx);
                let join = self.new_block(ctx);
                self.edge(current, then_entry);
                let then_end = self.lower_block(then_blk, then_entry, ctx);
                self.edge(then_end, join);
                match else_blk {
                    Some(else_blk) => {
                        let else_entry = self.new_block(ctx);
                        self.edge(current, else_entry);
                        let else_end = self.lower_block(else_blk, else_entry, ctx);
                        self.edge(else_end, join);
                    }
                    None => self.edge(current, join),
                }
                join
            }
            Stmt::While { id, cond, body, .. } => {
                let mut loops = ctx.loops.clone();
                loops.push(*id);
                let header_ctx = Ctx {
                    loops: loops.clone(),
                    ..ctx.clone()
                };
                let header = self.new_block(&header_ctx);
                self.blocks[header.0 as usize].loop_header = Some(*id);
                self.expr_atoms(header, cond);
                let after = self.new_block(ctx);
                let body_entry = self.new_block(&header_ctx);
                self.edge(current, header);
                self.edge(header, body_entry);
                self.edge(header, after);
                let body_ctx = Ctx {
                    break_to: Some(after),
                    continue_to: Some(header),
                    loops,
                };
                let body_end = self.lower_block(body, body_entry, &body_ctx);
                self.edge(body_end, header);
                after
            }
            Stmt::For {
                id,
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(init) = init {
                    self.stmt_atoms(current, init);
                }
                let mut loops = ctx.loops.clone();
                loops.push(*id);
                let header_ctx = Ctx {
                    loops: loops.clone(),
                    ..ctx.clone()
                };
                let header = self.new_block(&header_ctx);
                self.blocks[header.0 as usize].loop_header = Some(*id);
                if let Some(cond) = cond {
                    self.expr_atoms(header, cond);
                }
                let after = self.new_block(ctx);
                let body_entry = self.new_block(&header_ctx);
                let latch = self.new_block(&header_ctx);
                if let Some(update) = update {
                    self.stmt_atoms(latch, update);
                }
                self.edge(current, header);
                self.edge(header, body_entry);
                self.edge(header, after);
                self.edge(latch, header);
                let body_ctx = Ctx {
                    break_to: Some(after),
                    continue_to: Some(latch),
                    loops,
                };
                let body_end = self.lower_block(body, body_entry, &body_ctx);
                self.edge(body_end, latch);
                after
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
                ..
            } => {
                self.expr_atoms(current, scrutinee);
                let join = self.new_block(ctx);
                for (_, case_blk) in cases {
                    let entry = self.new_block(ctx);
                    self.edge(current, entry);
                    let end = self.lower_block(case_blk, entry, ctx);
                    self.edge(end, join);
                }
                match default {
                    Some(default) => {
                        let entry = self.new_block(ctx);
                        self.edge(current, entry);
                        let end = self.lower_block(default, entry, ctx);
                        self.edge(end, join);
                    }
                    None => self.edge(current, join),
                }
                join
            }
            Stmt::Try {
                body,
                catches,
                finally,
                ..
            } => {
                let body_entry = self.new_block(ctx);
                self.edge(current, body_entry);
                let join = self.new_block(ctx);
                let body_end = self.lower_block(body, body_entry, ctx);
                self.edge(body_end, join);
                for catch in catches {
                    let entry = self.new_block(ctx);
                    self.blocks[entry.0 as usize].catch_entry = Some(catch.exc_type.clone());
                    // Over-approximate exceptional edge: the whole try body
                    // may transfer to the handler.
                    self.edge(body_entry, entry);
                    let end = self.lower_block(&catch.body, entry, ctx);
                    self.edge(end, join);
                }
                match finally {
                    Some(finally) => {
                        let fin_entry = self.new_block(ctx);
                        self.edge(join, fin_entry);
                        self.lower_block(finally, fin_entry, ctx)
                    }
                    None => join,
                }
            }
            Stmt::Break { .. } => {
                if let Some(target) = ctx.break_to {
                    self.edge(current, target);
                }
                // Control never falls through; start a fresh block with no
                // predecessors for any trailing (unreachable) statements.
                self.new_block(ctx)
            }
            Stmt::Continue { .. } => {
                if let Some(target) = ctx.continue_to {
                    self.edge(current, target);
                }
                self.new_block(ctx)
            }
            Stmt::Return { .. } => {
                self.stmt_atoms(current, stmt);
                self.new_block(ctx)
            }
            Stmt::Throw { .. } => {
                self.stmt_atoms(current, stmt);
                self.new_block(ctx)
            }
            other => {
                self.stmt_atoms(current, other);
                current
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::ast::Item;
    use wasabi_lang::parser::parse_file;

    fn method_cfg(src: &str) -> Cfg {
        let items = parse_file(src).expect("parse");
        let Item::Class(class) = &items[items.len() - 1] else {
            panic!("last item should be a class");
        };
        Cfg::build(&class.methods[0].body)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = method_cfg("class C { method m() { var a = 1; var b = a + 2; return b; } }");
        // Entry plus the fresh block after `return`.
        assert_eq!(cfg.blocks.len(), 2);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn if_has_two_paths_to_join() {
        let cfg = method_cfg(
            "class C { method m(x) { if (x > 0) { log(\"a\"); } else { log(\"b\"); } return x; } }",
        );
        let entry = cfg.entry();
        assert_eq!(cfg.blocks[entry.0 as usize].succs.len(), 2);
    }

    #[test]
    fn loop_header_reachable_from_body() {
        let cfg = method_cfg(
            "class C { method m() { while (true) { log(\"x\"); } return 1; } }",
        );
        let header = cfg
            .blocks
            .iter()
            .position(|b| b.loop_header.is_some())
            .expect("header");
        // The body block loops back to the header.
        let body_blocks = cfg.blocks_in_loop(LoopId(0));
        assert!(body_blocks.len() >= 2);
        assert!(cfg.header_reachable_from(BlockId(header as u32), LoopId(0)));
    }

    #[test]
    fn catch_inside_loop_reaches_header_when_falling_through() {
        let cfg = method_cfg(
            "exception E;\n\
             class C { method m() {\n\
               for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                 try { this.connect(); return 1; } catch (E e) { log(\"again\"); }\n\
               }\n\
               return 0;\n\
             } }",
        );
        let catches = cfg.catches_in_loop(LoopId(0));
        assert_eq!(catches.len(), 1);
        assert!(cfg.header_reachable_from(catches[0].0, LoopId(0)));
    }

    #[test]
    fn catch_that_breaks_does_not_reach_header() {
        let cfg = method_cfg(
            "exception E;\n\
             class C { method m() {\n\
               for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                 try { this.connect(); return 1; } catch (E e) { break; }\n\
               }\n\
               return 0;\n\
             } }",
        );
        let catches = cfg.catches_in_loop(LoopId(0));
        assert_eq!(catches.len(), 1);
        assert!(!cfg.header_reachable_from(catches[0].0, LoopId(0)));
    }

    #[test]
    fn catch_that_returns_does_not_reach_header() {
        let cfg = method_cfg(
            "exception E;\n\
             class C { method m() {\n\
               while (true) {\n\
                 try { this.connect(); } catch (E e) { return null; }\n\
               }\n\
             } }",
        );
        let catches = cfg.catches_in_loop(LoopId(0));
        assert!(!cfg.header_reachable_from(catches[0].0, LoopId(0)));
    }

    #[test]
    fn boolean_flag_break_still_counts_as_reaching() {
        // The known syntactic blind spot (paper §4.3): the catch sets a flag
        // that later always breaks, but the CFG keeps both if-edges.
        let cfg = method_cfg(
            "exception FileNotFoundException extends Exception;\n\
             class C { method m() {\n\
               var caught = false;\n\
               while (true) {\n\
                 try { this.open(); } catch (FileNotFoundException e) { caught = true; }\n\
                 if (caught) { break; }\n\
               }\n\
             } }",
        );
        let catches = cfg.catches_in_loop(LoopId(0));
        assert!(cfg.header_reachable_from(catches[0].0, LoopId(0)));
    }

    #[test]
    fn continue_in_catch_reaches_header() {
        let cfg = method_cfg(
            "exception E;\n\
             class C { method m() {\n\
               for (var retry = 0; retry < 9; retry = retry + 1) {\n\
                 try { this.go(); } catch (E e) { continue; }\n\
                 break;\n\
               }\n\
             } }",
        );
        let catches = cfg.catches_in_loop(LoopId(0));
        assert!(cfg.header_reachable_from(catches[0].0, LoopId(0)));
    }

    #[test]
    fn call_atoms_capture_sites_and_receivers() {
        let cfg = method_cfg(
            "class C { method m(o) { this.a(); o.b(); c(); } }",
        );
        let mut calls = Vec::new();
        for block in &cfg.blocks {
            for atom in &block.atoms {
                if let Atom::Call {
                    method, recv_this, ..
                } = atom
                {
                    calls.push((method.clone(), *recv_this));
                }
            }
        }
        assert_eq!(
            calls,
            vec![
                ("a".to_string(), true),
                ("b".to_string(), false),
                ("c".to_string(), true),
            ]
        );
    }

    #[test]
    fn sleep_atoms_inside_loops() {
        let cfg = method_cfg(
            "class C { method m() { while (true) { sleep(100); } } }",
        );
        let in_loop = cfg.blocks_in_loop(LoopId(0));
        let has_sleep = in_loop.iter().any(|b| {
            cfg.blocks[b.0 as usize]
                .atoms
                .iter()
                .any(|a| matches!(a, Atom::Sleep { .. }))
        });
        assert!(has_sleep);
    }

    #[test]
    fn nested_loops_track_loop_stack() {
        let cfg = method_cfg(
            "class C { method m() { while (true) { while (false) { log(\"x\"); } } } }",
        );
        let inner_blocks = cfg.blocks_in_loop(LoopId(1));
        assert!(!inner_blocks.is_empty());
        // Inner-loop body blocks are also inside the outer loop.
        let inner_body = inner_blocks
            .iter()
            .find(|b| cfg.blocks[b.0 as usize].loops.len() == 2)
            .expect("inner body block");
        assert_eq!(cfg.blocks[inner_body.0 as usize].loops, vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn throw_atom_records_syntactic_type() {
        let cfg = method_cfg(
            "exception E;\nclass C { method m(e2) throws E { if (true) { throw new E(\"x\"); } throw e2; } }",
        );
        let mut throws = Vec::new();
        for block in &cfg.blocks {
            for atom in &block.atoms {
                if let Atom::Throw { exc_type, .. } = atom {
                    throws.push(exc_type.clone());
                }
            }
        }
        assert_eq!(throws, vec![Some("E".to_string()), None]);
    }

    /// Shared exceptional-edge invariants: every successor edge is in
    /// bounds, every catch-entry block has at least one predecessor (the
    /// exceptional edge from the try body), and every catch entry is
    /// reachable from the method entry.
    fn assert_exceptional_invariants(cfg: &Cfg, context: &str) {
        let n = cfg.blocks.len();
        let mut preds = vec![0usize; n];
        for block in &cfg.blocks {
            for succ in &block.succs {
                assert!((succ.0 as usize) < n, "{context}: edge out of bounds");
                preds[succ.0 as usize] += 1;
            }
        }
        let reachable: std::collections::HashSet<BlockId> =
            cfg.reachable_from(cfg.entry()).into_iter().collect();
        for (i, block) in cfg.blocks.iter().enumerate() {
            if block.catch_entry.is_some() {
                assert!(
                    preds[i] > 0,
                    "{context}: catch entry {i} has no exceptional predecessor"
                );
                assert!(
                    reachable.contains(&BlockId(i as u32)),
                    "{context}: catch entry {i} unreachable from method entry"
                );
            }
        }
    }

    #[test]
    fn catch_entries_have_exceptional_predecessors() {
        let cfg = method_cfg(
            "exception E;\nexception F;\nclass C { method m() {\n\
                 try {\n\
                   try { this.a(); } catch (E e) { log(\"inner\"); }\n\
                   this.b();\n\
                 } catch (F f) { log(\"outer\"); }\n\
                 return 1;\n\
             } }",
        );
        let entries = cfg
            .blocks
            .iter()
            .filter(|b| b.catch_entry.is_some())
            .count();
        assert_eq!(entries, 2);
        assert_exceptional_invariants(&cfg, "nested try/catch");
    }

    #[test]
    fn catch_after_throwing_body_keeps_invariants() {
        // The try body unconditionally throws; the handler must still be
        // wired from inside the body, not from the (dead) fallthrough.
        let cfg = method_cfg(
            "exception E;\nclass C { method m() {\n\
                 while (true) {\n\
                   try { throw new E(\"x\"); } catch (E e) { log(\"again\"); }\n\
                 }\n\
             } }",
        );
        assert_exceptional_invariants(&cfg, "throwing body");
        let catches = cfg.catches_in_loop(LoopId(0));
        assert_eq!(catches.len(), 1);
        assert!(cfg.header_reachable_from(catches[0].0, LoopId(0)));
    }

    #[test]
    fn finally_and_multi_catch_keep_invariants() {
        let cfg = method_cfg(
            "exception E;\nexception F;\nclass C { method m(x) {\n\
                 try {\n\
                   if (x > 0) { this.a(); } else { this.b(); }\n\
                 } catch (E e) { return 1; }\n\
                 catch (F f) { log(\"f\"); }\n\
                 finally { log(\"cleanup\"); }\n\
                 return 2;\n\
             } }",
        );
        let entries: Vec<&str> = cfg
            .blocks
            .iter()
            .filter_map(|b| b.catch_entry.as_deref())
            .collect();
        assert_eq!(entries, vec!["E", "F"]);
        assert_exceptional_invariants(&cfg, "multi-catch with finally");
    }
}
