//! Diagnostic → patch-site mapping for the repair loop.
//!
//! `wasabi repair` consumes lint diagnostics, which anchor a finding at a
//! `(file, line, col)` plus a coordinator method string. To synthesize a
//! patch we need the thing the diagnostic is *about*: the retry loop's
//! statement span inside its source file. This module re-runs the loop
//! query and matches diagnostics back to concrete loops:
//!
//! - **W001/W002** anchor at the retry loop's own span, so the match is
//!   coordinator string + anchor position ([`patch_site_for`]).
//! - **A001** anchors at the *outer* loop; the inner loop is recovered
//!   from the diagnostic chain ([`amp_sites_for`]): cross-method chains
//!   end at the inner retrying method (`chain.last()`), while same-method
//!   nesting (`chain[0] == chain[1]`) means the inner loop is the retry
//!   loop whose span sits strictly inside the outer's in the same method.

use crate::diag::Diagnostic;
use crate::loops::{find_retry_loops, LoopQueryOptions, RetryLoop};
use crate::resolve::ProjectIndex;
use wasabi_lang::ast::LoopId;
use wasabi_lang::project::{FileId, MethodId, Project};
use wasabi_lang::span::Span;

/// A concrete loop a repair template can splice around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchSite {
    /// File containing the loop.
    pub file: FileId,
    /// Path of that file (as `Project` stores it).
    pub file_path: String,
    /// Coordinator method containing the loop.
    pub method: MethodId,
    /// Loop id within the file.
    pub loop_id: LoopId,
    /// Source span of the whole loop statement.
    pub span: Span,
}

fn site_from(project: &Project, rl: &RetryLoop) -> PatchSite {
    PatchSite {
        file: rl.file,
        file_path: project.files[rl.file.0 as usize].path.clone(),
        method: rl.coordinator.clone(),
        loop_id: rl.loop_id,
        span: rl.span,
    }
}

/// All retry loops, with the keyword filter relaxed as a fallback so
/// inner loops of interprocedural findings still resolve even when their
/// own naming evidence is weaker than the anchor loop's.
fn query_loops(project: &Project, options: &LoopQueryOptions) -> Vec<RetryLoop> {
    let index = ProjectIndex::build(project);
    let mut loops = find_retry_loops(&index, options);
    if options.keyword_filter {
        let relaxed = LoopQueryOptions {
            keyword_filter: false,
            ..options.clone()
        };
        for rl in find_retry_loops(&index, &relaxed) {
            let dup = loops
                .iter()
                .any(|have| have.file == rl.file && have.loop_id == rl.loop_id);
            if !dup {
                loops.push(rl);
            }
        }
    }
    loops
}

fn anchor_matches(project: &Project, rl: &RetryLoop, diag: &Diagnostic) -> bool {
    let file = &project.files[rl.file.0 as usize];
    if file.path != diag.file || rl.coordinator.to_string() != diag.coordinator {
        return false;
    }
    let pos = file.line_map().line_col(rl.span.start);
    pos.line == diag.line && pos.col == diag.col
}

/// Resolves the retry loop a `W001`/`W002` diagnostic anchors at.
///
/// Matching is by coordinator string plus the anchor `(file, line, col)`,
/// so it is stable under re-lints as long as the loop's own text has not
/// moved; repair re-lints after every splice precisely so the diagnostic
/// it maps carries current positions.
pub fn patch_site_for(
    project: &Project,
    diag: &Diagnostic,
    options: &LoopQueryOptions,
) -> Option<PatchSite> {
    query_loops(project, options)
        .iter()
        .find(|rl| anchor_matches(project, rl, diag))
        .map(|rl| site_from(project, rl))
}

/// Resolves both loops of an `A001` retry-amplification diagnostic:
/// `(outer, inner)`.
///
/// The outer loop is the diagnostic's own anchor. The inner loop is the
/// chain's terminal hop: for a cross-method chain, the (sorted-first)
/// retry loop of the method named by `chain.last()`; for same-method
/// nesting, the retry loop whose span is strictly contained in the
/// outer's.
pub fn amp_sites_for(
    project: &Project,
    diag: &Diagnostic,
    options: &LoopQueryOptions,
) -> Option<(PatchSite, PatchSite)> {
    let loops = query_loops(project, options);
    let outer = loops.iter().find(|rl| anchor_matches(project, rl, diag))?;
    let same_method = diag.chain.len() >= 2 && diag.chain.iter().all(|hop| *hop == diag.chain[0]);
    let inner = if same_method {
        loops.iter().find(|rl| {
            rl.file == outer.file
                && rl.coordinator == outer.coordinator
                && rl.span.start > outer.span.start
                && rl.span.end <= outer.span.end
        })?
    } else {
        let target = diag.chain.last()?;
        loops
            .iter()
            .find(|rl| rl.coordinator.to_string() == *target)?
    };
    Some((site_from(project, outer), site_from(project, inner)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::{lint_project, LintOptions};
    use wasabi_lang::project::Project;

    fn lint(sources: Vec<(&str, &str)>) -> (Project, Vec<Diagnostic>) {
        let project = Project::compile("patchsite", sources).expect("compile");
        let result = lint_project(&project, &LintOptions::default());
        (project, result.diagnostics)
    }

    #[test]
    fn w_diagnostics_map_back_to_their_loop_span() {
        let (project, diags) = lint(vec![(
            "Flaky.jav",
            "exception IOException;\n\
             class Flaky {\n\
               method fetch() throws IOException {\n\
                 for (var retry = 0; true; retry = retry + 1) {\n\
                   try { return this.pull(); } catch (IOException e) { }\n\
                 }\n\
               }\n\
               method pull() throws IOException { return 1; }\n\
             }",
        )]);
        let w001 = diags.iter().find(|d| d.code == "W001").expect("W001");
        let site = patch_site_for(&project, w001, &LoopQueryOptions::default()).expect("site");
        assert_eq!(site.method.to_string(), "Flaky.fetch");
        assert_eq!(site.file_path, "Flaky.jav");
        let text = &project.files[site.file.0 as usize].source
            [site.span.start as usize..site.span.end as usize];
        assert!(text.starts_with("for ("), "span covers the loop: {text}");
    }

    #[test]
    fn amp_cross_method_resolves_inner_loop_from_chain() {
        let (project, diags) = lint(vec![(
            "Amp.jav",
            "exception IOException;\n\
             class Amp {\n\
               method outer() throws IOException {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.inner(); } catch (IOException e) { }\n\
                 }\n\
                 throw new IOException(\"outer exhausted\");\n\
               }\n\
               method inner() throws IOException {\n\
                 for (var retries = 0; retries < 4; retries = retries + 1) {\n\
                   try { return this.leaf(); } catch (IOException e) { }\n\
                 }\n\
                 throw new IOException(\"inner exhausted\");\n\
               }\n\
               method leaf() throws IOException { return 1; }\n\
             }",
        )]);
        let a001 = diags.iter().find(|d| d.code == "A001").expect("A001");
        let (outer, inner) =
            amp_sites_for(&project, a001, &LoopQueryOptions::default()).expect("sites");
        assert_eq!(outer.method.to_string(), "Amp.outer");
        assert_eq!(inner.method.to_string(), "Amp.inner");
        assert_ne!(outer.span, inner.span);
    }

    #[test]
    fn amp_same_method_resolves_contained_inner_loop() {
        let (project, diags) = lint(vec![(
            "Nest.jav",
            "exception IOException;\n\
             class Nest {\n\
               method run() throws IOException {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try {\n\
                     for (var retries = 0; retries < 4; retries = retries + 1) {\n\
                       try { return this.leaf(); } catch (IOException e) { }\n\
                     }\n\
                     throw new IOException(\"inner exhausted\");\n\
                   } catch (IOException e) { }\n\
                 }\n\
                 throw new IOException(\"outer exhausted\");\n\
               }\n\
               method leaf() throws IOException { return 1; }\n\
             }",
        )]);
        let a001 = diags.iter().find(|d| d.code == "A001").expect("A001");
        let (outer, inner) =
            amp_sites_for(&project, a001, &LoopQueryOptions::default()).expect("sites");
        assert_eq!(outer.method, inner.method);
        assert!(inner.span.start > outer.span.start && inner.span.end <= outer.span.end);
    }
}
