//! Interprocedural lint checkers over retry loops.
//!
//! [`lint_project`] runs the retry-loop query, builds the dispatch-table
//! call graph and per-method summaries, and reports through
//! [`diag`](crate::diag):
//!
//! - **W001 missing cap** — no comparison bounds the loop, either in its
//!   condition/body or in a helper the exit test calls.
//! - **W002 missing delay** — no `sleep` is reachable on the retry path,
//!   including transitively through helpers called from the catch block
//!   (the interprocedural upgrade that kills the single-file
//!   false-positive mode of [`when`](crate::when)).
//! - **W003 different exception** — a call retried by the loop may
//!   transitively throw an exception no catch clause of the loop matches,
//!   so one attempt can abort the whole retry policy.
//! - **A001 nested-retry amplification** — the loop body transitively
//!   reaches another retry loop (same method, helper, or another class);
//!   attempts multiply, and the finding reports the call chain and the
//!   worst-case attempt product.
//! - **W004 retry on non-retriable** — a catch that reaches the loop
//!   header retries an exception the [`lattice`](crate::lattice)
//!   classifies fatal; retrying re-runs the same doomed operation.
//! - **W005 unbounded backoff growth** — the
//!   [`absint`](crate::absint) interval of a slept-on delay variable
//!   diverges under a multiplicative self-update with no cap, or an
//!   `i64` overflow is reachable within the attempt bound.
//! - **W006 ineffective cap** — the interval fixpoint proves the
//!   attempt guard cannot do its job: at most one attempt, a counter
//!   nothing updates, or a config default that makes the guard
//!   unreachable.
//! - **I001 IF-ratio outlier** (info, opt-out via
//!   [`LintOptions::ifratio`]) — the loop's retry decision for an
//!   exception contradicts the application-wide majority policy
//!   (§3.2.2); retried-fatal outliers already reported by W004 are
//!   subsumed.
//!
//! Amplification chains only follow calls with a *unique* resolved
//! target, so a fan-out through an ambiguous receiver cannot fabricate a
//! chain; may-facts (throws, sleeps) use the full may-target sets.

use crate::absint::{self, MethodAbs};
use crate::callgraph::CallGraph;
use crate::cfg::{Atom, Cfg};
use crate::diag::{sort_diagnostics, Diagnostic, Severity};
use crate::idx;
use crate::ifratio::{if_ratio_reports, IfOptions, OutlierKind};
use crate::lattice::{ExcLattice, Transience};
use crate::loops::{find_retry_loops, LoopQueryOptions, RetryLoop};
use crate::resolve::{LoopSite, ProjectIndex};
use crate::summaries::{AttemptBound, MethodSummary, Summaries};
use crate::when::loop_has_cap;
use std::collections::{BTreeSet, HashMap, VecDeque};
use wasabi_lang::ast::{BinOp, Expr, Literal, Stmt};
use wasabi_lang::index::{ClassId, ExcId, LExpr, ProgramIndex};
use wasabi_lang::project::{CallSite, Project};

/// Options for a lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Worker threads for the summary fixpoint (output is identical for
    /// any value).
    pub jobs: usize,
    /// Retry-loop query options.
    pub loops: LoopQueryOptions,
    /// Emit `I001` IF-ratio outlier diagnostics (on by default; the
    /// `--no-ifratio` CLI flag clears it).
    pub ifratio: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            jobs: 1,
            loops: LoopQueryOptions::default(),
            ifratio: true,
        }
    }
}

/// Everything the checkers computed for one retry loop; exposed so other
/// layers (overlap accounting, tests) can reuse the classification.
#[derive(Debug, Clone)]
pub struct LoopFacts {
    /// The retry loop.
    pub retry_loop: RetryLoop,
    /// Compiled-method index of the coordinator.
    pub midx: u32,
    /// Whether a cap was found (intraprocedural or helper).
    pub has_cap: bool,
    /// Whether a delay was found (transitively).
    pub has_delay: bool,
    /// The loop's own attempt bound.
    pub bound: AttemptBound,
    /// Interval of body executions inferred by the abstract
    /// interpretation (`None` when the coordinator was not analyzable).
    pub attempts: Option<absint::Interval>,
}

/// The result of [`lint_project`]: sorted diagnostics plus per-loop facts.
#[derive(Debug)]
pub struct LintResult {
    /// Sorted diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Facts per analyzed retry loop, in query order.
    pub loops: Vec<LoopFacts>,
}

/// Runs every checker over the project and returns sorted diagnostics.
pub fn lint_project(project: &Project, options: &LintOptions) -> LintResult {
    let pindex = ProjectIndex::build(project);
    let retry_loops = find_retry_loops(&pindex, &options.loops);
    let cg = CallGraph::build(project);
    let index = &project.index;

    // Coordinator method indices and local attempt bounds feed the
    // summary fixpoint (may-retry / attempt facts).
    let mut loop_info: Vec<(usize, u32, AttemptBound)> = Vec::new(); // (loop idx, midx, bound)
    let mut local_retry: Vec<(u32, AttemptBound)> = Vec::new();
    for (li, rl) in retry_loops.iter().enumerate() {
        let Some(site) = find_site(&pindex, rl) else {
            continue;
        };
        let Some(midx) = method_index(index, &rl.coordinator.class, &rl.coordinator.name) else {
            continue;
        };
        let bound = loop_bound(index, site);
        loop_info.push((li, midx, bound));
        local_retry.push((midx, bound));
    }
    local_retry.sort_by_key(|&(m, _)| m);
    let summaries = Summaries::compute(project, &cg, &local_retry, options.jobs);

    // Unique-target adjacency for amplification chains.
    let precise: Vec<Vec<u32>> = cg
        .calls
        .iter()
        .map(|calls| {
            let mut out: Vec<u32> = calls
                .iter()
                .filter(|c| c.targets.len() == 1)
                .map(|c| c.targets[0])
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();

    let lattice = ExcLattice::build(index);
    let mut diags = Vec::new();
    let mut facts = Vec::new();
    // Retried-fatal findings, kept so I001 does not re-report them.
    let mut w004_found: Vec<(String, String)> = Vec::new(); // (coordinator, caught type)
    let mut cfgs: HashMap<(String, String), Cfg> = HashMap::new();
    let mut abss: HashMap<(String, String), MethodAbs> = HashMap::new();
    for &(li, midx, bound) in &loop_info {
        let rl = &retry_loops[li];
        let site = find_site(&pindex, rl).expect("site resolved above");
        let key = (site.class.to_string(), site.method.name.clone());
        let abs = abss
            .entry(key.clone())
            .or_insert_with(|| absint::analyze_method(index, site.class, site.method));
        let obs = abs.loops.get(&rl.loop_id).cloned();
        let cfg = cfgs
            .entry(key)
            .or_insert_with(|| Cfg::build(&site.method.body));
        let site_targets: HashMap<CallSite, &[u32]> = cg.calls[idx(midx, "coordinator method")]
            .iter()
            .map(|c| (c.site, c.targets.as_slice()))
            .collect();

        // Atoms inside the loop: delay evidence, retried-call targets.
        let mut has_delay = false;
        let mut loop_calls: Vec<CallSite> = Vec::new();
        for block in cfg.blocks_in_loop(rl.loop_id) {
            for atom in &cfg.blocks[idx(block.0, "cfg block")].atoms {
                match atom {
                    Atom::Sleep { .. } => has_delay = true,
                    Atom::Call { id, .. } => {
                        let call_site = CallSite {
                            file: rl.file,
                            call: *id,
                        };
                        if let Some(targets) = site_targets.get(&call_site) {
                            if targets
                                .iter()
                                .any(|&t| summaries.methods[idx(t, "callee method")].may_sleep)
                            {
                                has_delay = true;
                            }
                        }
                        loop_calls.push(call_site);
                    }
                    Atom::Throw { .. } => {}
                }
            }
        }
        let has_cap = loop_has_cap(site.stmt)
            || helper_cap(site.stmt, rl.file, &site_targets, &summaries);
        let anchor = || anchor_at(project, rl);

        if !has_cap {
            diags.push(Diagnostic {
                message: "retry loop has no attempt cap".to_string(),
                ..diag_base("W001", rl, anchor())
            });
        }
        if !has_delay {
            diags.push(Diagnostic {
                message: "retry loop has no delay before re-attempting (checked transitively)"
                    .to_string(),
                ..diag_base("W002", rl, anchor())
            });
        }

        // W004: a header-reaching catch retries an exception the lattice
        // classifies fatal; a retry re-runs the same doomed operation.
        let mut fatal_seen: BTreeSet<&str> = BTreeSet::new();
        for caught in &rl.reaching_catches {
            if lattice.classify_name(index, caught) == Transience::Fatal
                && fatal_seen.insert(caught.as_str())
            {
                w004_found.push((rl.coordinator.to_string(), caught.clone()));
                diags.push(Diagnostic {
                    message: format!(
                        "retry loop retries {caught}, which the exception lattice \
                         classifies as fatal (non-retriable)"
                    ),
                    ..diag_base("W004", rl, anchor())
                });
            }
        }

        if let Some(obs) = &obs {
            // W005: a slept-on delay variable diverges — multiplicative
            // self-update with no cap, or an i64 overflow reachable
            // within the attempt bound.
            let mut growth_seen: BTreeSet<&str> = BTreeSet::new();
            for sleep in &obs.sleeps {
                for var in &sleep.vars {
                    let Some(growth) = obs.growths.iter().find(|g| g.var == *var) else {
                        continue;
                    };
                    if !obs.head_interval(var).unbounded_above() {
                        continue; // narrowing proved a cap
                    }
                    let message = if obs.attempts.unbounded_above() {
                        format!(
                            "backoff delay `{}` grows by x{} per retry with no cap; \
                             the delay interval diverges",
                            var,
                            display_endpoint(growth.factor.lo)
                        )
                    } else if delay_overflows(
                        obs.entry_interval(var),
                        growth.factor,
                        obs.attempts.hi,
                    ) {
                        format!(
                            "backoff delay `{}` grows by x{} per retry; saturating i64 \
                             overflow is reachable within the {}-attempt bound",
                            var,
                            display_endpoint(growth.factor.lo),
                            obs.attempts.hi
                        )
                    } else {
                        continue;
                    };
                    if growth_seen.insert(var.as_str()) {
                        diags.push(Diagnostic {
                            message,
                            ..diag_base("W005", rl, anchor())
                        });
                    }
                }
            }

            // W006: the attempt cap cannot do its job.
            let ineffective = if obs.guard_unreachable {
                Some(
                    "attempt guard is unreachable: the bound is at or below the \
                     counter's start value (a zero config default does this), so no \
                     attempt is ever made"
                        .to_string(),
                )
            } else if obs.attempts.hi <= 1 {
                Some(format!(
                    "attempt cap permits at most {} attempt(s); the loop never \
                     actually retries",
                    obs.attempts.hi.max(0)
                ))
            } else {
                match (&obs.counter, obs.counter_updated) {
                    (Some(counter), false) => Some(format!(
                        "attempt cap compares `{counter}`, but nothing in the loop \
                         updates it; the bound can never trip"
                    )),
                    _ => None,
                }
            };
            if let Some(message) = ineffective {
                diags.push(Diagnostic {
                    message,
                    ..diag_base("W006", rl, anchor())
                });
            }
        }

        // W003: retried callee may throw something no catch matches.
        let catch_ids: Vec<ExcId> = cfg
            .catches_in_loop(rl.loop_id)
            .into_iter()
            .filter_map(|(_, ty)| index.exc_by_name(ty))
            .collect();
        let mut reported: BTreeSet<ExcId> = BTreeSet::new();
        for call_site in &loop_calls {
            let Some(targets) = site_targets.get(call_site) else {
                continue;
            };
            for &t in *targets {
                for &exc in &summaries.methods[idx(t, "callee method")].may_throw {
                    let covered = catch_ids.iter().any(|&c| {
                        index.is_exc_subtype(exc, c) || index.is_exc_subtype(c, exc)
                    });
                    if !covered && reported.insert(exc) {
                        diags.push(Diagnostic {
                            message: format!(
                                "retried call {} may throw {}, which no catch in the loop matches",
                                index.method_display(t),
                                index.exceptions[idx(exc.0, "exception")].name_str
                            ),
                            ..diag_base("W003", rl, anchor())
                        });
                    }
                }
            }
        }

        // A001 (cross-method): a call inside the loop reaches a method
        // with its own retry loop.
        let mut amplified: BTreeSet<u32> = BTreeSet::new();
        for call_site in &loop_calls {
            let Some(targets) = site_targets.get(call_site) else {
                continue;
            };
            // Chains demand unique resolution at every hop, including
            // the first.
            if targets.len() != 1 {
                continue;
            }
            for (inner, chain) in reachable_retries(targets[0], midx, &precise, &summaries.methods)
            {
                if !amplified.insert(inner) {
                    continue;
                }
                let inner_bound = summaries.methods[idx(inner, "inner retry method")]
                    .attempts
                    .unwrap_or(AttemptBound::Capped);
                let product = bound.multiply(inner_bound);
                let mut hops = vec![rl.coordinator.to_string()];
                hops.extend(chain.iter().map(|&h| index.method_display(h)));
                diags.push(Diagnostic {
                    message: format!(
                        "retry loop reaches another retry loop in {}; worst-case attempts {} x {} = {}",
                        index.method_display(inner),
                        bound,
                        inner_bound,
                        product
                    ),
                    chain: hops,
                    ..diag_base("A001", rl, anchor())
                });
            }
        }

        facts.push(LoopFacts {
            retry_loop: rl.clone(),
            midx,
            has_cap,
            has_delay,
            bound,
            attempts: obs.as_ref().map(|o| o.attempts),
        });
    }

    // A001 (same method): one retry loop nested inside another.
    for (i, &(li, midx, outer_bound)) in loop_info.iter().enumerate() {
        let outer = &retry_loops[li];
        for &(lj, mj, inner_bound) in &loop_info[i + 1..] {
            if midx != mj {
                continue;
            }
            let inner = &retry_loops[lj];
            let site = find_site(&pindex, outer).expect("site resolved above");
            let cfg = Cfg::build(&site.method.body);
            let nested = cfg
                .blocks_in_loop(inner.loop_id)
                .iter()
                .any(|b| cfg.blocks[idx(b.0, "cfg block")].loops.contains(&outer.loop_id));
            if !nested {
                continue;
            }
            let product = outer_bound.multiply(inner_bound);
            diags.push(Diagnostic {
                message: format!(
                    "retry loop nests another retry loop in the same method; worst-case attempts {} x {} = {}",
                    outer_bound, inner_bound, product
                ),
                chain: vec![outer.coordinator.to_string(), inner.coordinator.to_string()],
                ..diag_base("A001", outer, anchor_at(project, outer))
            });
        }
    }

    // I001: application-wide IF-ratio outliers, promoted from the score
    // path into suppressible info diagnostics.
    if options.ifratio {
        let if_options = IfOptions {
            loop_options: options.loops.clone(),
            ..IfOptions::default()
        };
        let symbols = &project.symbols;
        for report in if_ratio_reports(&pindex, &if_options) {
            for outlier in &report.outliers {
                // A retried-fatal outlier is already W004's finding.
                let subsumed = report.kind == OutlierKind::MostlyNotRetried
                    && w004_found.iter().any(|(coord, caught)| {
                        *coord == outlier.coordinator.to_string()
                            && symbols.is_exception_subtype(&report.exception, caught)
                    });
                if subsumed {
                    continue;
                }
                let file = &project.files[idx(outlier.file.0, "outlier file")];
                let pos = file.line_map().line_col(outlier.span.start);
                let policy = match report.kind {
                    OutlierKind::MostlyRetried => format!(
                        "retried in {}/{} retry loops project-wide but not retried here",
                        report.r, report.n
                    ),
                    OutlierKind::MostlyNotRetried => format!(
                        "retried here but in only {}/{} retry loops project-wide",
                        report.r, report.n
                    ),
                };
                diags.push(Diagnostic {
                    code: "I001",
                    severity: Severity::Info,
                    file: file.path.clone(),
                    line: pos.line,
                    col: pos.col,
                    coordinator: outlier.coordinator.to_string(),
                    message: format!(
                        "inconsistent retry policy: {} is {}",
                        report.exception, policy
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    sort_diagnostics(&mut diags);
    LintResult {
        diagnostics: diags,
        loops: facts,
    }
}

/// Formats an interval endpoint for messages (`?` for an infinity).
fn display_endpoint(v: i64) -> String {
    if v == absint::NEG_INF || v == absint::POS_INF {
        "?".to_string()
    } else {
        v.to_string()
    }
}

/// Whether `base * factor^attempts` can overflow `i64`. Uses the upper
/// endpoints (worst case); 64 doublings always overflow, so iteration is
/// capped there.
fn delay_overflows(base: absint::Interval, factor: absint::Interval, attempts: i64) -> bool {
    if factor.hi == absint::POS_INF {
        return true;
    }
    let mut value = if base.hi == absint::POS_INF || base.hi < 1 {
        1i64
    } else {
        base.hi
    };
    for _ in 0..attempts.clamp(0, 64) {
        match value.checked_mul(factor.hi) {
            Some(next) => value = next,
            None => return true,
        }
    }
    false
}

fn find_site<'p>(pindex: &'p ProjectIndex<'p>, rl: &RetryLoop) -> Option<&'p LoopSite<'p>> {
    pindex
        .loops()
        .iter()
        .find(|l| l.file == rl.file && l.loop_id == rl.loop_id)
}

fn method_index(index: &ProgramIndex, class: &str, name: &str) -> Option<u32> {
    let cid = index.class_by_name(class)?;
    let sym = index.interner.lookup(name)?;
    index.resolve_dispatch(cid, sym)
}

fn diag_base(code: &'static str, rl: &RetryLoop, anchor: (String, u32, u32)) -> Diagnostic {
    let (file, line, col) = anchor;
    Diagnostic {
        code,
        severity: Severity::Warning,
        file,
        line,
        col,
        coordinator: rl.coordinator.to_string(),
        message: String::new(),
        chain: Vec::new(),
    }
}

fn anchor_at(project: &Project, rl: &RetryLoop) -> (String, u32, u32) {
    let file = &project.files[idx(rl.file.0, "loop file")];
    let pos = file.line_map().line_col(rl.span.start);
    (file.path.clone(), pos.line, pos.col)
}

/// Breadth-first search for retrying methods reachable from `start`
/// through unique-target calls, stopping at the first retrying method on
/// each path. Returns `(method, chain-from-start)` pairs in ascending
/// method order.
fn reachable_retries(
    start: u32,
    origin: u32,
    precise: &[Vec<u32>],
    summaries: &[MethodSummary],
) -> Vec<(u32, Vec<u32>)> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut queue: VecDeque<(u32, Vec<u32>)> = VecDeque::new();
    seen.insert(start);
    queue.push_back((start, vec![start]));
    while let Some((m, chain)) = queue.pop_front() {
        if summaries[idx(m, "method summary")].has_retry_loop && m != origin {
            out.push((m, chain));
            // Deeper nesting is that method's own finding.
            continue;
        }
        for &next in &precise[idx(m, "method summary")] {
            if next == origin || !seen.insert(next) {
                continue;
            }
            let mut chain = chain.clone();
            chain.push(next);
            queue.push_back((next, chain));
        }
    }
    out.sort_by_key(|&(m, _)| m);
    out
}

/// Whether the loop's exit test delegates the cap comparison to a helper:
/// `if (this.policy.exceeded(n)) { throw ... }` counts when the helper's
/// body contains a comparison.
fn helper_cap(
    loop_stmt: &Stmt,
    file: wasabi_lang::project::FileId,
    site_targets: &HashMap<CallSite, &[u32]>,
    summaries: &Summaries,
) -> bool {
    let body = match loop_stmt {
        Stmt::While { body, .. } | Stmt::For { body, .. } => body,
        _ => return false,
    };
    let mut capped = false;
    wasabi_lang::ast::walk_stmts(body, &mut |stmt| {
        if let Stmt::If { cond, then_blk, else_blk, .. } = stmt {
            let exits = crate::when::block_exits(then_blk)
                || else_blk
                    .as_ref()
                    .map(crate::when::block_exits)
                    .unwrap_or(false);
            if exits {
                wasabi_lang::ast::walk_expr(cond, &mut |e| {
                    if let Expr::Call { id, .. } = e {
                        let call_site = CallSite { file, call: *id };
                        if let Some(targets) = site_targets.get(&call_site) {
                            if targets
                                .iter()
                                .any(|&t| summaries.methods[idx(t, "callee method")].has_comparison)
                            {
                                capped = true;
                            }
                        }
                    }
                });
            }
        }
        true
    });
    capped
}

/// Extracts the loop's worst-case attempt bound from its header.
fn loop_bound(index: &ProgramIndex, site: &LoopSite<'_>) -> AttemptBound {
    let cond = match site.stmt {
        Stmt::While { cond, .. } => Some(cond),
        Stmt::For { cond, .. } => cond.as_ref(),
        _ => None,
    };
    if let Some(cond) = cond {
        if let Some(bound) = comparison_bound(index, site.class, cond) {
            return bound;
        }
    }
    if loop_has_cap(site.stmt) {
        return AttemptBound::Capped;
    }
    AttemptBound::Unbounded
}

/// The first comparison in `expr`, turned into a bound when one side is a
/// statically known integer (literal, `this.field` initialiser, or
/// `getConfig` default).
fn comparison_bound(index: &ProgramIndex, class: &str, expr: &Expr) -> Option<AttemptBound> {
    let mut found: Option<AttemptBound> = None;
    wasabi_lang::ast::walk_expr(expr, &mut |e| {
        if found.is_some() {
            return;
        }
        if let Expr::Binary { op, lhs, rhs, .. } = e {
            let (limit, inclusive) = match op {
                BinOp::Lt => (rhs, false),
                BinOp::LtEq => (rhs, true),
                BinOp::Gt => (lhs, false),
                BinOp::GtEq => (lhs, true),
                _ => return,
            };
            let value = static_int(index, class, limit);
            found = Some(match value {
                Some(v) => {
                    let v = if inclusive { v.saturating_add(1) } else { v };
                    AttemptBound::Bounded(v.max(0) as u64)
                }
                None => AttemptBound::Capped,
            });
        }
    });
    found
}

/// Statically evaluates an integer expression: literals, `this.field`
/// with a literal initialiser, and `getConfig("key")` defaults.
fn static_int(index: &ProgramIndex, class: &str, expr: &Expr) -> Option<i64> {
    match expr {
        Expr::Literal(Literal::Int(n), _) => Some(*n),
        Expr::Field { recv, name, .. } if matches!(recv.as_ref(), Expr::This(_)) => {
            field_int(index, index.class_by_name(class)?, name)
        }
        Expr::Call { method, args, .. } if method == "getConfig" && args.len() == 1 => {
            let Expr::Literal(Literal::Str(key), _) = &args[0] else {
                return None;
            };
            let id = index.config_by_name(key)?;
            match &index.configs[idx(id, "config")].default {
                Literal::Int(n) => Some(*n),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The literal integer initialiser of a field, if any.
fn field_int(index: &ProgramIndex, class: ClassId, name: &str) -> Option<i64> {
    let def = &index.classes[idx(class.0, "class")];
    let sym = index.interner.lookup(name)?;
    let slot = def.layout.slot(sym)?;
    // Last initialiser for the slot wins (subclass overrides).
    def.inits
        .iter()
        .rev()
        .find(|i| i.slot == slot as u32)
        .and_then(|i| match &i.expr {
            LExpr::Literal(Literal::Int(n)) => Some(*n),
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let p = Project::compile("t", vec![("t.jav", src)]).expect("compile");
        lint_project(&p, &LintOptions::default()).diagnostics
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_loop_produces_no_diagnostics() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(100); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn missing_cap_and_delay_are_reported() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) { log(\"retry\"); }\n\
                 }\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W001", "W002"]);
    }

    #[test]
    fn sleep_two_helpers_deep_flips_the_old_missing_delay_verdict() {
        // The known false-positive class in `when`: the catch block
        // delegates its backoff to a helper that delegates again, so even
        // one-level resolution misses the sleep and (wrongly) reports a
        // missing delay. The summary-based checker follows the whole
        // chain and stays quiet — pin both verdicts so the flip is
        // explicit.
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method pause() { sleep(50); }\n\
               method backoff(n) { this.pause(); }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { this.backoff(retry); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let p = Project::compile("t", vec![("t.jav", src)]).expect("compile");
        let pindex = crate::resolve::ProjectIndex::build(&p);
        let loops = find_retry_loops(&pindex, &LoopQueryOptions::default());
        assert_eq!(loops.len(), 1);
        let old = crate::when::check_when(
            &pindex,
            &loops[0],
            crate::when::DelayScope::OneLevelInterprocedural,
        )
        .expect("loop found");
        assert!(!old.has_delay, "old check misses the two-level helper sleep");
        let diags = lint_project(&p, &LintOptions::default()).diagnostics;
        assert!(diags.is_empty(), "summary-based check finds it: {diags:?}");
    }

    #[test]
    fn different_exception_is_reported_with_w003() {
        let diags = lint(
            "exception NetError;\n\
             exception DiskError;\n\
             class C {\n\
               method op() throws NetError, DiskError { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (NetError e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W003"]);
        assert!(diags[0].message.contains("DiskError"));
    }

    #[test]
    fn transitive_throw_is_seen_by_w003() {
        let diags = lint(
            "exception NetError;\n\
             exception DiskError;\n\
             class C {\n\
               method low() { throw new DiskError(\"d\"); }\n\
               method op() throws NetError { this.low(); return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (NetError e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W003"]);
        assert!(diags[0].message.contains("DiskError"));
    }

    #[test]
    fn amplification_with_keywords_reports_chain_and_product() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method inner() throws E {\n\
                 for (var retry = 0; retry < 4; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(5); }\n\
                 }\n\
                 throw new E(\"gave up\");\n\
               }\n\
               method run() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try { return this.inner(); } catch (E e) { sleep(50); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        let amp: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "A001").collect();
        assert_eq!(amp.len(), 1, "diags: {diags:?}");
        assert_eq!(amp[0].chain, vec!["C.run", "C.inner"]);
        assert!(amp[0].message.contains("3 x 4 = 12"), "got: {}", amp[0].message);
    }

    #[test]
    fn plain_nested_loop_is_not_amplification() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method push(i) { return i; }\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try {\n\
                     for (var i = 0; i < 4; i = i + 1) { this.push(i); }\n\
                     return this.op();\n\
                   } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert!(codes(&diags).iter().all(|&c| c != "A001"), "diags: {diags:?}");
    }

    #[test]
    fn same_method_nested_retry_is_amplification() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try {\n\
                     for (var retry = 0; retry < 4; retry = retry + 1) {\n\
                       try { return this.op(); } catch (E e) { sleep(5); }\n\
                     }\n\
                     throw new E(\"inner exhausted\");\n\
                   } catch (E e) { sleep(50); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        let amp: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "A001").collect();
        assert_eq!(amp.len(), 1, "diags: {diags:?}");
        assert!(amp[0].message.contains("3 x 4 = 12"), "got: {}", amp[0].message);
    }

    #[test]
    fn helper_cap_counts_as_capped() {
        let diags = lint(
            "exception E;\n\
             class Budget { field max = 5; method exceeded(n) { return n >= this.max; } }\n\
             class C {\n\
               field budget = new Budget();\n\
               field attempts = 0;\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 while (true) {\n\
                   try { return this.op(); } catch (E e) {\n\
                     this.attempts = this.attempts + 1;\n\
                     if (this.budget.exceeded(this.attempts)) { throw new E(\"retries over\"); }\n\
                     sleep(20);\n\
                   }\n\
                 }\n\
               }\n\
             }",
        );
        assert!(codes(&diags).iter().all(|&c| c != "W001"), "diags: {diags:?}");
    }

    #[test]
    fn retry_on_fatal_exception_is_reported_with_w004() {
        let diags = lint(
            "exception FileExistsException;\n\
             class C {\n\
               method op() throws FileExistsException { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (FileExistsException e) { sleep(100); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W004"]);
        assert!(diags[0].message.contains("FileExistsException"));
    }

    #[test]
    fn retry_on_transient_exception_stays_quiet() {
        let diags = lint(
            "exception SocketTimeoutException;\n\
             class C {\n\
               method op() throws SocketTimeoutException { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); } catch (SocketTimeoutException e) { sleep(100); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn uncapped_multiplicative_backoff_is_reported_with_w005() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 10;\n\
                 var retries = 0;\n\
                 while (retries < 1000000000) {\n\
                   try { return this.op(); }\n\
                   catch (E e) { sleep(delay); delay = delay * 2; retries = retries + 1; }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W005"], "diags: {diags:?}");
        assert!(diags[0].message.contains("delay"), "got: {}", diags[0].message);
    }

    #[test]
    fn min_capped_backoff_is_not_w005() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               field capMs = 1000;\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 25;\n\
                 for (var retry = 0; retry < 16; retry = retry + 1) {\n\
                   try { return this.op(); }\n\
                   catch (E e) { sleep(delay); delay = min(delay * 2, this.capMs); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn overflowing_bounded_backoff_is_reported_with_w005() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 10;\n\
                 for (var retry = 0; retry < 200; retry = retry + 1) {\n\
                   try { return this.op(); }\n\
                   catch (E e) { sleep(delay); delay = delay * 3; }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W005"], "diags: {diags:?}");
        assert!(
            diags[0].message.contains("overflow"),
            "got: {}",
            diags[0].message
        );
    }

    #[test]
    fn small_bounded_backoff_growth_is_clean() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var delay = 10;\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return this.op(); }\n\
                   catch (E e) { sleep(delay); delay = delay * 2; }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert!(diags.is_empty(), "diags: {diags:?}");
    }

    #[test]
    fn stuck_counter_is_reported_with_w006() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var retries = 0;\n\
                 while (retries < 5) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W006"], "diags: {diags:?}");
        assert!(
            diags[0].message.contains("retries"),
            "got: {}",
            diags[0].message
        );
    }

    #[test]
    fn config_default_zero_guard_is_reported_with_w006() {
        let diags = lint(
            "exception E;\n\
             config \"app.retry.max\" default 0;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < getConfig(\"app.retry.max\"); retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W006"], "diags: {diags:?}");
        assert!(
            diags[0].message.contains("unreachable"),
            "got: {}",
            diags[0].message
        );
    }

    #[test]
    fn bound_of_one_is_reported_with_w006() {
        let diags = lint(
            "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 1; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }",
        );
        assert_eq!(codes(&diags), vec!["W006"], "diags: {diags:?}");
        assert!(
            diags[0].message.contains("at most 1"),
            "got: {}",
            diags[0].message
        );
    }

    #[test]
    fn ifratio_outliers_become_i001_and_respect_the_opt_out() {
        // Four loops can throw MetaException; only one retries it.
        let mut src = String::from(
            "exception MetaException;\n\
             exception Transient;\n\
             class Store { method op() throws MetaException { return 1; } }\n\
             class R {\n\
               method run(st) {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return st.op(); } catch (MetaException e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        for i in 0..3 {
            src.push_str(&format!(
                "class N{i} {{\n\
                   method flaky() throws Transient {{ return 1; }}\n\
                   method run(st) {{\n\
                     for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
                       try {{ st.op(); return this.flaky(); }}\n\
                       catch (Transient e) {{ sleep(10); }}\n\
                       catch (MetaException e) {{ break; }}\n\
                     }}\n\
                     return null;\n\
                   }}\n\
                 }}\n"
            ));
        }
        let p = Project::compile("t", vec![("t.jav", &src)]).expect("compile");
        let diags = lint_project(&p, &LintOptions::default()).diagnostics;
        let i001: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "I001").collect();
        assert_eq!(i001.len(), 1, "diags: {diags:?}");
        assert_eq!(i001[0].coordinator, "R.run");
        assert_eq!(i001[0].severity, Severity::Info);
        assert!(i001[0].message.contains("1/4"), "got: {}", i001[0].message);

        let mut opts = LintOptions::default();
        opts.ifratio = false;
        let diags = lint_project(&p, &opts).diagnostics;
        assert!(
            diags.iter().all(|d| d.code != "I001"),
            "opt-out must silence I001: {diags:?}"
        );
    }

    #[test]
    fn w004_subsumes_the_retried_fatal_i001_outlier() {
        // Four loops can throw IllegalStateException (fatal); only one
        // retries it: that loop gets W004 and must NOT also get I001.
        // IllegalStateException is a builtin (fatal-seeded) exception.
        let mut src = String::from(
            "exception Transient;\n\
             class Store { method op() throws IllegalStateException { return 1; } }\n\
             class R {\n\
               method run(st) {\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { return st.op(); } catch (IllegalStateException e) { sleep(10); }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        for i in 0..3 {
            src.push_str(&format!(
                "class N{i} {{\n\
                   method flaky() throws Transient {{ return 1; }}\n\
                   method run(st) {{\n\
                     for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
                       try {{ st.op(); return this.flaky(); }}\n\
                       catch (Transient e) {{ sleep(10); }}\n\
                       catch (IllegalStateException e) {{ break; }}\n\
                     }}\n\
                     return null;\n\
                   }}\n\
                 }}\n"
            ));
        }
        let p = Project::compile("t", vec![("t.jav", &src)]).expect("compile");
        let diags = lint_project(&p, &LintOptions::default()).diagnostics;
        assert!(
            diags.iter().any(|d| d.code == "W004" && d.coordinator == "R.run"),
            "diags: {diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.code != "I001"),
            "W004 must subsume the retried-fatal outlier: {diags:?}"
        );
    }

    #[test]
    fn output_is_identical_across_jobs() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method inner() throws E {\n\
                 while (true) { try { return this.op(); } catch (E e) { log(\"retry\"); } }\n\
               }\n\
               method run() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try { return this.inner(); } catch (E e) { }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let p = Project::compile("t", vec![("t.jav", src)]).expect("compile");
        let render = |jobs: usize| {
            let mut opts = LintOptions::default();
            opts.jobs = jobs;
            crate::diag::render_text(&lint_project(&p, &opts).diagnostics)
        };
        let one = render(1);
        assert_eq!(one, render(4));
        assert_eq!(one, render(1), "two consecutive runs");
    }
}
