//! IF-bug detection via application-wide retry ratios (§3.2.2).
//!
//! For each exception `E`, count the retry loops where `E` could be thrown
//! (`N_E`) and the subset where `E` is actually retried — covered by a catch
//! clause that reaches the loop header (`R_E`). Exceptions that are *almost
//! always* retried (ratio ≥ 2/3 but < 1) or *almost never* retried (ratio ≤
//! 1/3 but > 0) are reported, with the outlier loops attached.

use crate::cfg::{Atom, Cfg};
use crate::loops::{find_retry_loops, LoopQueryOptions, RetryLoop};
use crate::resolve::ProjectIndex;
use std::collections::BTreeMap;
use wasabi_lang::project::{FileId, MethodId};
use wasabi_lang::span::Span;

/// Which side of the ratio the outliers fall on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierKind {
    /// The exception is mostly retried; outliers do not retry it.
    MostlyRetried,
    /// The exception is mostly not retried; outliers do retry it.
    MostlyNotRetried,
}

/// One loop instance flagged as inconsistent with the application-wide
/// policy for its exception.
#[derive(Debug, Clone)]
pub struct IfOutlier {
    /// Coordinator method containing the loop.
    pub coordinator: MethodId,
    /// Whether this instance retries the exception.
    pub retried: bool,
    /// File containing the loop (diagnostic anchor).
    pub file: FileId,
    /// Source span of the loop (diagnostic anchor).
    pub span: Span,
}

/// Per-exception retry-ratio report.
#[derive(Debug, Clone)]
pub struct IfReport {
    /// The exception type.
    pub exception: String,
    /// Loops where the exception could be thrown.
    pub n: usize,
    /// Loops where the exception is retried.
    pub r: usize,
    /// Which policy the majority follows.
    pub kind: OutlierKind,
    /// The minority (inconsistent) loop instances.
    pub outliers: Vec<IfOutlier>,
}

impl IfReport {
    /// The retry ratio `R_E / N_E`.
    pub fn ratio(&self) -> f64 {
        self.r as f64 / self.n as f64
    }
}

/// Options for the IF-ratio analysis.
#[derive(Debug, Clone)]
pub struct IfOptions {
    /// Minimum `N_E` for an exception to be considered (ratios over tiny
    /// samples are noise).
    pub min_sites: usize,
    /// Upper threshold: ratios at or above this (but below 1) flag
    /// non-retried outliers. The paper uses 2/3.
    pub hi: f64,
    /// Lower threshold: ratios at or below this (but above 0) flag retried
    /// outliers. The paper uses 1/3.
    pub lo: f64,
    /// Loop-query options used to find retry loops.
    pub loop_options: LoopQueryOptions,
}

impl Default for IfOptions {
    fn default() -> Self {
        IfOptions {
            min_sites: 3,
            hi: 2.0 / 3.0,
            lo: 1.0 / 3.0,
            loop_options: LoopQueryOptions::default(),
        }
    }
}

/// Per-loop view of one exception: could it be thrown, and is it retried?
#[derive(Debug, Clone)]
struct LoopExceptionUse {
    coordinator: MethodId,
    retried: bool,
    file: FileId,
    span: Span,
}

/// Runs the IF-ratio analysis across the project.
pub fn if_ratio_reports(index: &ProjectIndex<'_>, options: &IfOptions) -> Vec<IfReport> {
    let loops = find_retry_loops(index, &options.loop_options);
    let mut uses: BTreeMap<String, Vec<LoopExceptionUse>> = BTreeMap::new();
    for retry_loop in &loops {
        for (exception, retried) in loop_exceptions(index, retry_loop) {
            uses.entry(exception).or_default().push(LoopExceptionUse {
                coordinator: retry_loop.coordinator.clone(),
                retried,
                file: retry_loop.file,
                span: retry_loop.span,
            });
        }
    }
    let mut out = Vec::new();
    for (exception, instances) in uses {
        let n = instances.len();
        if n < options.min_sites {
            continue;
        }
        let r = instances.iter().filter(|u| u.retried).count();
        let ratio = r as f64 / n as f64;
        let (kind, outlier_filter): (OutlierKind, fn(&LoopExceptionUse) -> bool) =
            if ratio >= options.hi && r < n {
                (OutlierKind::MostlyRetried, |u| !u.retried)
            } else if ratio <= options.lo && r > 0 {
                (OutlierKind::MostlyNotRetried, |u| u.retried)
            } else {
                continue;
            };
        let outliers = instances
            .iter()
            .filter(|u| outlier_filter(u))
            .map(|u| IfOutlier {
                coordinator: u.coordinator.clone(),
                retried: u.retried,
                file: u.file,
                span: u.span,
            })
            .collect();
        out.push(IfReport {
            exception,
            n,
            r,
            kind,
            outliers,
        });
    }
    out
}

/// Exceptions that could be thrown inside `retry_loop` (from callee
/// signatures and syntactic throws), each with whether a header-reaching
/// catch covers it.
fn loop_exceptions(
    index: &ProjectIndex<'_>,
    retry_loop: &RetryLoop,
) -> Vec<(String, bool)> {
    let Some(loop_site) = index
        .loops()
        .iter()
        .find(|l| l.file == retry_loop.file && l.loop_id == retry_loop.loop_id)
    else {
        return Vec::new();
    };
    let cfg = Cfg::build(&loop_site.method.body);
    let symbols = &index.project().symbols;
    let mut thrown: Vec<String> = Vec::new();
    for block in cfg.blocks_in_loop(retry_loop.loop_id) {
        for atom in &cfg.blocks[block.0 as usize].atoms {
            match atom {
                Atom::Call {
                    method, recv_this, ..
                } => {
                    if let Some((_, decl)) =
                        index.resolve_callee(loop_site.class, method, *recv_this)
                    {
                        thrown.extend(decl.throws.iter().cloned());
                    }
                }
                Atom::Throw {
                    exc_type: Some(ty), ..
                } => thrown.push(ty.clone()),
                _ => {}
            }
        }
    }
    thrown.sort();
    thrown.dedup();
    thrown
        .into_iter()
        .map(|exception| {
            let retried = retry_loop.reaching_catches.iter().any(|caught| {
                symbols.is_exception_subtype(&exception, caught)
            });
            (exception, retried)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    /// Builds N retry loops that retry KeeperException and M that do not.
    fn keeper_project(retried: usize, not_retried: usize) -> Project {
        let mut src = String::from(
            "exception KeeperException;\n\
             class Zk { method op() throws KeeperException { return 1; } }\n",
        );
        for i in 0..retried {
            src.push_str(&format!(
                "class R{i} {{\n\
                   method run(zk) {{\n\
                     for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
                       try {{ return zk.op(); }} catch (KeeperException e) {{ sleep(10); }}\n\
                     }}\n\
                     return null;\n\
                   }}\n\
                 }}\n"
            ));
        }
        for i in 0..not_retried {
            // A retry loop (some other exception retried) where
            // KeeperException could be thrown but is NOT caught-and-retried:
            // its catch breaks out.
            src.push_str(&format!(
                "exception Transient{i};\n\
                 class N{i} {{\n\
                   method flaky() throws Transient{i} {{ return 1; }}\n\
                   method run(zk) {{\n\
                     for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
                       try {{ zk.op(); return this.flaky(); }}\n\
                       catch (Transient{i} e) {{ sleep(10); }}\n\
                       catch (KeeperException e) {{ break; }}\n\
                     }}\n\
                     return null;\n\
                   }}\n\
                 }}\n"
            ));
        }
        Project::compile("zk", vec![("zk.jav", src)]).expect("compile")
    }

    #[test]
    fn mostly_retried_exception_flags_non_retrying_outlier() {
        let p = keeper_project(5, 1);
        let idx = ProjectIndex::build(&p);
        let reports = if_ratio_reports(&idx, &IfOptions::default());
        let keeper = reports
            .iter()
            .find(|r| r.exception == "KeeperException")
            .expect("KeeperException report");
        assert_eq!((keeper.n, keeper.r), (6, 5));
        assert_eq!(keeper.kind, OutlierKind::MostlyRetried);
        assert_eq!(keeper.outliers.len(), 1);
        assert_eq!(keeper.outliers[0].coordinator, MethodId::new("N0", "run"));
    }

    #[test]
    fn mostly_not_retried_exception_flags_retrying_outlier() {
        let p = keeper_project(1, 5);
        let idx = ProjectIndex::build(&p);
        let reports = if_ratio_reports(&idx, &IfOptions::default());
        let keeper = reports
            .iter()
            .find(|r| r.exception == "KeeperException")
            .expect("KeeperException report");
        assert_eq!((keeper.n, keeper.r), (6, 1));
        assert_eq!(keeper.kind, OutlierKind::MostlyNotRetried);
        assert_eq!(keeper.outliers.len(), 1);
        assert_eq!(keeper.outliers[0].coordinator, MethodId::new("R0", "run"));
    }

    #[test]
    fn consistent_policy_produces_no_report() {
        let p = keeper_project(6, 0);
        let idx = ProjectIndex::build(&p);
        let reports = if_ratio_reports(&idx, &IfOptions::default());
        assert!(
            !reports.iter().any(|r| r.exception == "KeeperException"),
            "uniformly retried exception should not be an outlier"
        );
    }

    #[test]
    fn small_samples_are_ignored() {
        let p = keeper_project(1, 1);
        let idx = ProjectIndex::build(&p);
        let reports = if_ratio_reports(&idx, &IfOptions::default());
        assert!(!reports.iter().any(|r| r.exception == "KeeperException"));
    }

    #[test]
    fn boolean_flag_blindness_counts_flag_break_as_retried() {
        // The paper's one IF false positive (§4.3): the catch sets a flag
        // that always breaks, so the exception is never actually retried,
        // but syntactic reachability counts it as retried.
        let mut src = String::from(
            "exception FileNotFoundException;\n\
             class Fs { method open() throws FileNotFoundException { return 1; } }\n",
        );
        // Three loops that genuinely do not retry it.
        for i in 0..3 {
            src.push_str(&format!(
                "exception T{i};\n\
                 class N{i} {{\n\
                   method flaky() throws T{i} {{ return 1; }}\n\
                   method run(fs) {{\n\
                     for (var retry = 0; retry < 5; retry = retry + 1) {{\n\
                       try {{ fs.open(); return this.flaky(); }}\n\
                       catch (T{i} e) {{ sleep(10); }}\n\
                       catch (FileNotFoundException e) {{ return null; }}\n\
                     }}\n\
                     return null;\n\
                   }}\n\
                 }}\n"
            ));
        }
        // One loop with the boolean-flag pattern.
        src.push_str(
            "class Flag {\n\
               method run(fs) {\n\
                 var failed = false;\n\
                 for (var retry = 0; retry < 5; retry = retry + 1) {\n\
                   try { fs.open(); }\n\
                   catch (FileNotFoundException e) { failed = true; }\n\
                   if (failed) { break; }\n\
                 }\n\
                 return null;\n\
               }\n\
             }\n",
        );
        let p = Project::compile("fs", vec![("fs.jav", src)]).expect("compile");
        let idx = ProjectIndex::build(&p);
        let reports = if_ratio_reports(&idx, &IfOptions::default());
        let fnf = reports
            .iter()
            .find(|r| r.exception == "FileNotFoundException")
            .expect("report");
        // Declared retried in 1/4 although it is never actually retried —
        // the false positive the paper describes.
        assert_eq!((fnf.n, fnf.r), (4, 1));
        assert_eq!(fnf.kind, OutlierKind::MostlyNotRetried);
        assert_eq!(fnf.outliers[0].coordinator, MethodId::new("Flag", "run"));
    }
}
