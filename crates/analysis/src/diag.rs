//! Unified lint diagnostics: stable codes, deterministic ordering, text
//! and JSON sinks, and baseline suppression.
//!
//! Every checker reports through [`Diagnostic`] so all surfaces (the
//! `wasabi lint` subcommand, the CI gate, tests) agree on one format.
//! Diagnostics sort by `(file, line, col, code, coordinator, message)` —
//! nothing scheduling-dependent enters the key, so output is
//! byte-identical across runs and worker counts.
//!
//! # Codes
//!
//! | code   | severity | meaning                                            |
//! |--------|----------|----------------------------------------------------|
//! | `W001` | warning  | retry loop has no attempt cap                      |
//! | `W002` | warning  | retry loop has no delay on the retry path          |
//! | `W003` | warning  | retried callee may throw an exception no catch matches |
//! | `W004` | warning  | retry on a non-retriable (lattice-fatal) exception |
//! | `W005` | warning  | unbounded or overflowing multiplicative backoff growth |
//! | `W006` | warning  | ineffective attempt cap (bound ≤ 1, stuck counter, or unreachable guard) |
//! | `A001` | warning  | nested retry amplification (multiplicative attempts) |
//! | `I001` | info     | IF-ratio outlier (condition retried against the study-wide distribution) |
//!
//! # Baselines
//!
//! A baseline file holds one [`Diagnostic::fingerprint`] per line
//! (`#`-prefixed lines are comments). Fingerprints deliberately omit
//! line/column so unrelated edits that shift code do not resurrect
//! suppressed findings.

use std::collections::BTreeSet;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational finding.
    Info,
    /// Likely bug; the lint gate fails on new ones.
    Warning,
    /// Definite defect.
    Error,
}

impl Severity {
    /// Lower-case label used by the text sink.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`W001`, `A001`, ...).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Path of the file the finding anchors to.
    pub file: String,
    /// 1-based line of the anchor span.
    pub line: u32,
    /// 1-based column of the anchor span.
    pub col: u32,
    /// Coordinator method (`Class.method`) the finding is about.
    pub coordinator: String,
    /// Human-readable message.
    pub message: String,
    /// Call chain (`Class.method` per hop) for interprocedural findings;
    /// empty otherwise.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Renders the finding as one text line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}:{}: {}[{}] {}: {}",
            self.file,
            self.line,
            self.col,
            self.severity.label(),
            self.code,
            self.coordinator,
            self.message
        );
        if !self.chain.is_empty() {
            out.push_str(" [chain: ");
            out.push_str(&self.chain.join(" -> "));
            out.push(']');
        }
        out
    }

    /// Position-independent identity used by baseline suppression.
    pub fn fingerprint(&self) -> String {
        let mut out = format!("{} {} {} {}", self.code, self.file, self.coordinator, self.message);
        if !self.chain.is_empty() {
            out.push_str(" chain:");
            out.push_str(&self.chain.join("->"));
        }
        out
    }
}

/// Sorts diagnostics into their canonical deterministic order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.code, &a.coordinator, &a.message, &a.chain).cmp(&(
            &b.file, b.line, b.col, b.code, &b.coordinator, &b.message, &b.chain,
        ))
    });
}

/// Renders all diagnostics as text, one line each, trailing newline per
/// line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

/// Renders all diagnostics as a JSON array (pretty, two-space indent,
/// stable field order).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"code\": {}", json_str(d.code)));
        out.push_str(&format!(", \"severity\": {}", json_str(d.severity.label())));
        out.push_str(&format!(", \"file\": {}", json_str(&d.file)));
        out.push_str(&format!(", \"line\": {}", d.line));
        out.push_str(&format!(", \"col\": {}", d.col));
        out.push_str(&format!(", \"coordinator\": {}", json_str(&d.coordinator)));
        out.push_str(&format!(", \"message\": {}", json_str(&d.message)));
        out.push_str(", \"chain\": [");
        for (j, hop) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(hop));
        }
        out.push_str("]}");
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a baseline file's contents into its fingerprint set.
pub fn parse_baseline(contents: &str) -> BTreeSet<String> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Renders a fingerprint baseline for `diags` (sorted, deduped).
pub fn render_baseline(diags: &[Diagnostic]) -> String {
    let prints: BTreeSet<String> = diags.iter().map(Diagnostic::fingerprint).collect();
    let mut out = String::from("# wasabi lint baseline: one suppressed-diagnostic fingerprint per line.\n");
    for p in prints {
        out.push_str(&p);
        out.push('\n');
    }
    out
}

/// Splits diagnostics into `(new, suppressed)` against a baseline.
pub fn apply_baseline(
    diags: Vec<Diagnostic>,
    baseline: &BTreeSet<String>,
) -> (Vec<Diagnostic>, usize) {
    let mut fresh = Vec::new();
    let mut suppressed = 0usize;
    for d in diags {
        if baseline.contains(&d.fingerprint()) {
            suppressed += 1;
        } else {
            fresh.push(d);
        }
    }
    (fresh, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, code: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            file: file.to_string(),
            line,
            col: 3,
            coordinator: "C.run".to_string(),
            message: msg.to_string(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn sort_is_total_and_stable() {
        let mut diags = vec![
            diag("b.jav", 1, "W001", "x"),
            diag("a.jav", 9, "W002", "y"),
            diag("a.jav", 9, "W001", "y"),
        ];
        sort_diagnostics(&mut diags);
        let rendered: Vec<String> = diags.iter().map(Diagnostic::render).collect();
        assert_eq!(
            rendered,
            vec![
                "a.jav:9:3: warning[W001] C.run: y",
                "a.jav:9:3: warning[W002] C.run: y",
                "b.jav:1:3: warning[W001] C.run: x",
            ]
        );
    }

    #[test]
    fn baseline_round_trips_and_suppresses() {
        let diags = vec![diag("a.jav", 1, "W001", "m"), diag("b.jav", 2, "W002", "n")];
        let baseline = parse_baseline(&render_baseline(&diags));
        // A line shift must not resurrect the finding.
        let shifted = vec![diag("a.jav", 50, "W001", "m"), diag("c.jav", 1, "W001", "new")];
        let (fresh, suppressed) = apply_baseline(shifted, &baseline);
        assert_eq!(suppressed, 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].file, "c.jav");
    }

    #[test]
    fn json_escapes_and_renders_chain() {
        let mut d = diag("a.jav", 1, "A001", "amplifies \"badly\"");
        d.chain = vec!["A.run".to_string(), "B.retry".to_string()];
        let json = render_json(&[d]);
        assert!(json.contains("\\\"badly\\\""));
        assert!(json.contains("\"chain\": [\"A.run\", \"B.retry\"]"));
        assert!(render_json(&[]).starts_with("[]"));
    }
}
