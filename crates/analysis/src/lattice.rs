//! Transient-vs-fatal exception lattice (retry-policy classification).
//!
//! Retrying is only sensible when the failure might go away on its own.
//! This module classifies every exception of a program as **transient**
//! (connectivity, timeouts — worth retrying), **fatal** (programming or
//! permanent-state errors — retrying cannot help), or **unknown**, by
//! seeding well-known type names and propagating the classification down
//! the declared exception hierarchy: a subtype inherits its closest
//! classified ancestor unless its own name is seeded.
//!
//! The lattice order is `Unknown ⊑ {Transient, Fatal}` with
//! `join(Transient, Fatal) = Unknown`: conflicting evidence degrades to
//! "don't know" rather than picking a side. The W004 checker only acts on
//! `Fatal`, so `Unknown` is always safe.

use wasabi_lang::index::{ExcId, ProgramIndex};

/// Retry-worthiness of an exception type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transience {
    /// The failure may heal by itself; retrying is a sensible policy.
    Transient,
    /// The failure is permanent (bad input, broken invariant, state that
    /// already exists); retrying burns attempts without hope.
    Fatal,
    /// No evidence either way.
    Unknown,
}

impl Transience {
    /// Lattice join: agreement keeps the class, conflict degrades to
    /// [`Transience::Unknown`].
    pub fn join(self, other: Transience) -> Transience {
        match (self, other) {
            (Transience::Unknown, x) | (x, Transience::Unknown) => x,
            (a, b) if a == b => a,
            _ => Transience::Unknown,
        }
    }
}

/// Exception names seeded transient: network, timeout, and coordination
/// failures the corpus applications retry as a matter of policy.
const TRANSIENT_SEEDS: [&str; 8] = [
    "ConnectException",
    "IOException",
    "KeeperException",
    "SocketException",
    "SocketTimeoutException",
    "TimeoutException",
    "TransportError",
    "UnavailableException",
];

/// Exception names seeded fatal: contract violations and permanent-state
/// errors where a retry re-runs the same doomed operation.
const FATAL_SEEDS: [&str; 9] = [
    "AccessControlException",
    "ArithmeticException",
    "AssertionError",
    "FileExistsException",
    "FileNotFoundException",
    "IllegalArgumentException",
    "IllegalStateException",
    "NullPointerException",
    "UnsupportedOperationException",
];

/// Dense per-[`ExcId`] classification for one program.
#[derive(Debug)]
pub struct ExcLattice {
    classes: Vec<Transience>,
}

impl ExcLattice {
    /// Classifies every exception of the program: own-name seeds win,
    /// otherwise the classification of the nearest classified ancestor is
    /// inherited, and the root stays [`Transience::Unknown`].
    pub fn build(index: &ProgramIndex) -> ExcLattice {
        let classes = (0..index.exceptions.len())
            .map(|id| classify_chain(index, ExcId(id as u32), 0))
            .collect();
        ExcLattice { classes }
    }

    /// Classification of `exc`.
    pub fn classify(&self, exc: ExcId) -> Transience {
        self.classes
            .get(exc.0 as usize)
            .copied()
            .unwrap_or(Transience::Unknown)
    }

    /// Classification of an exception by type name; unknown names (not in
    /// the program) fall back to the seed tables alone.
    pub fn classify_name(&self, index: &ProgramIndex, name: &str) -> Transience {
        match index.exc_by_name(name) {
            Some(id) => self.classify(id),
            None => seed_of(name),
        }
    }
}

/// Seed classification by exact type name.
fn seed_of(name: &str) -> Transience {
    if TRANSIENT_SEEDS.contains(&name) {
        Transience::Transient
    } else if FATAL_SEEDS.contains(&name) {
        Transience::Fatal
    } else {
        Transience::Unknown
    }
}

/// Walks the parent chain until a seeded name is found. Depth-capped so a
/// (rejected-at-compile-time) cyclic hierarchy cannot hang the analysis.
fn classify_chain(index: &ProgramIndex, exc: ExcId, depth: usize) -> Transience {
    if depth > 64 {
        return Transience::Unknown;
    }
    let def = &index.exceptions[exc.0 as usize];
    match seed_of(&def.name_str) {
        Transience::Unknown => match def.parent {
            Some(parent) => classify_chain(index, parent, depth + 1),
            None => Transience::Unknown,
        },
        seeded => seeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    fn lattice(src: &str) -> (Project, Vec<(String, Transience)>) {
        let p = Project::compile("t", vec![("t.jav", src)]).expect("compile");
        let lat = ExcLattice::build(&p.index);
        let classes = p
            .index
            .exceptions
            .iter()
            .enumerate()
            .map(|(i, def)| (def.name_str.clone(), lat.classify(ExcId(i as u32))))
            .collect();
        (p, classes)
    }

    fn class_of(classes: &[(String, Transience)], name: &str) -> Transience {
        classes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("{name} not classified"))
    }

    #[test]
    fn seeds_classify_directly() {
        let (_, classes) = lattice(
            "exception ConnectException;\n\
             exception FileExistsException;\n\
             exception MetaException;\n\
             class C { method m() { return 1; } }\n",
        );
        assert_eq!(
            class_of(&classes, "ConnectException"),
            Transience::Transient
        );
        assert_eq!(class_of(&classes, "FileExistsException"), Transience::Fatal);
        assert_eq!(class_of(&classes, "MetaException"), Transience::Unknown);
    }

    #[test]
    fn subtypes_inherit_the_nearest_classified_ancestor() {
        let (_, classes) = lattice(
            "exception TransportError;\n\
             exception WireException extends TransportError;\n\
             exception FileExistsException;\n\
             exception ShardFileExists extends FileExistsException;\n",
        );
        assert_eq!(class_of(&classes, "WireException"), Transience::Transient);
        assert_eq!(class_of(&classes, "ShardFileExists"), Transience::Fatal);
    }

    #[test]
    fn own_seed_overrides_the_parent() {
        // A "TimeoutException extends IllegalStateException" hierarchy is
        // odd, but the child's own seed must win over the fatal parent.
        let (_, classes) = lattice(
            "exception IllegalCapacityException;\n\
             exception TimeoutException extends IllegalCapacityException;\n",
        );
        assert_eq!(class_of(&classes, "TimeoutException"), Transience::Transient);
    }

    #[test]
    fn join_degrades_conflicts_to_unknown() {
        assert_eq!(
            Transience::Transient.join(Transience::Fatal),
            Transience::Unknown
        );
        assert_eq!(
            Transience::Fatal.join(Transience::Fatal),
            Transience::Fatal
        );
        assert_eq!(
            Transience::Unknown.join(Transience::Transient),
            Transience::Transient
        );
    }

    #[test]
    fn unknown_names_fall_back_to_seed_tables() {
        let (p, _) = lattice("exception MetaException;\n");
        let lat = ExcLattice::build(&p.index);
        assert_eq!(
            lat.classify_name(&p.index, "SocketTimeoutException"),
            Transience::Transient
        );
        assert_eq!(
            lat.classify_name(&p.index, "NullPointerException"),
            Transience::Fatal
        );
        assert_eq!(
            lat.classify_name(&p.index, "NoSuchThing"),
            Transience::Unknown
        );
    }
}
