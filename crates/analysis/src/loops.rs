//! The retry-loop query and retry-location extraction (§3.1.1, first
//! technique).
//!
//! A loop is a *retry loop* when (1) at least one catch block inside its body
//! can reach the loop header — exception-triggered re-execution — and (2) the
//! loop carries naming-convention evidence (a string literal, variable, or
//! method name containing "retry"/"retries"). The keyword filter can be
//! disabled to reproduce the paper's §4.4 ablation (3.5× more loops, mostly
//! non-retry).

use crate::cfg::{Atom, Cfg};
use crate::resolve::ProjectIndex;
use std::collections::HashMap;
use wasabi_lang::ast::{Expr, Literal, LoopId, Stmt};
use wasabi_lang::project::{CallSite, FileId, MethodId};
use wasabi_lang::span::Span;

/// Options for the retry-loop query.
#[derive(Debug, Clone)]
pub struct LoopQueryOptions {
    /// Require naming-convention evidence (the paper's keyword filter).
    pub keyword_filter: bool,
    /// Keywords to look for, matched case-insensitively as substrings.
    pub keywords: Vec<String>,
}

impl Default for LoopQueryOptions {
    fn default() -> Self {
        LoopQueryOptions {
            keyword_filter: true,
            keywords: vec!["retry".to_string(), "retries".to_string()],
        }
    }
}

/// A loop identified as (potentially) implementing retry.
#[derive(Debug, Clone)]
pub struct RetryLoop {
    /// File containing the loop.
    pub file: FileId,
    /// The coordinator method containing the loop.
    pub coordinator: MethodId,
    /// Loop id within the file.
    pub loop_id: LoopId,
    /// Source span of the loop.
    pub span: Span,
    /// Whether naming-convention evidence was found.
    pub keyword_evidence: bool,
    /// Exception types of catch clauses that can reach the loop header.
    pub reaching_catches: Vec<String>,
}

/// How a retry location was identified, and which code structure backs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// A retry loop found by control-flow analysis; carries the loop id.
    Loop(LoopId),
    /// A coordinator method flagged by the LLM (loop, queue, or state
    /// machine); no loop structure is attached.
    LlmFlagged,
}

/// A retry-location triplet: coordinator `C`, retried method `M`, and trigger
/// exception `E`, anchored at the call site of `M` inside `C`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RetryLocation {
    /// The call site of the retried method inside the coordinator.
    pub site: CallSite,
    /// Coordinator method (catches the error and re-executes).
    pub coordinator: MethodId,
    /// Retried method (re-executed on failure).
    pub retried: MethodId,
    /// Trigger exception type.
    pub exception: String,
    /// The structure the location belongs to.
    pub mechanism: Mechanism,
}

impl RetryLocation {
    /// A stable key identifying the retry *structure* this location belongs
    /// to — the paper counts at most one missing-cap/delay bug per structure.
    pub fn structure_key(&self) -> String {
        match self.mechanism {
            Mechanism::Loop(loop_id) => format!("{}:{}", self.site.file, loop_id),
            Mechanism::LlmFlagged => format!("llm:{}", self.coordinator),
        }
    }
}

/// Finds retry loops across the whole project.
pub fn find_retry_loops(index: &ProjectIndex<'_>, options: &LoopQueryOptions) -> Vec<RetryLoop> {
    let mut out = Vec::new();
    // Cache CFGs per (class, method) to avoid rebuilding for multi-loop
    // methods.
    let mut cfgs: HashMap<(String, String), Cfg> = HashMap::new();
    for site in index.loops() {
        let key = (site.class.to_string(), site.method.name.clone());
        let cfg = cfgs
            .entry(key)
            .or_insert_with(|| Cfg::build(&site.method.body));
        let reaching: Vec<String> = cfg
            .catches_in_loop(site.loop_id)
            .into_iter()
            .filter(|(block, _)| cfg.header_reachable_from(*block, site.loop_id))
            .map(|(_, ty)| ty.to_string())
            .collect();
        if reaching.is_empty() {
            continue;
        }
        let keyword_evidence = has_keyword_evidence(site.stmt, &options.keywords);
        if options.keyword_filter && !keyword_evidence {
            continue;
        }
        out.push(RetryLoop {
            file: site.file,
            coordinator: MethodId::new(site.class, &site.method.name),
            loop_id: site.loop_id,
            span: site.stmt.span(),
            keyword_evidence,
            reaching_catches: dedup(reaching),
        });
    }
    out
}

/// Extracts retry locations for one retry loop: every resolvable call inside
/// the loop whose declared `throws` includes an exception covered by a
/// header-reaching catch.
pub fn retry_locations(
    index: &ProjectIndex<'_>,
    retry_loop: &RetryLoop,
) -> Vec<RetryLocation> {
    let Some(loop_site) = index
        .loops()
        .iter()
        .find(|l| l.file == retry_loop.file && l.loop_id == retry_loop.loop_id)
    else {
        return Vec::new();
    };
    let cfg = Cfg::build(&loop_site.method.body);
    let symbols = &index.project().symbols;
    let mut out = Vec::new();
    for block in cfg.blocks_in_loop(retry_loop.loop_id) {
        for atom in &cfg.blocks[block.0 as usize].atoms {
            let Atom::Call {
                id,
                method,
                recv_this,
                ..
            } = atom
            else {
                continue;
            };
            // All dispatch-consistent targets: a `this` call may reach a
            // subclass override whose `throws` differ from the base's.
            for (callee, decl) in index.resolve_targets(loop_site.class, method, *recv_this) {
                for thrown in &decl.throws {
                    let covered = retry_loop.reaching_catches.iter().any(|caught| {
                        symbols.is_exception_subtype(thrown, caught)
                            || symbols.is_exception_subtype(caught, thrown)
                    });
                    if covered {
                        out.push(RetryLocation {
                            site: CallSite {
                                file: retry_loop.file,
                                call: *id,
                            },
                            coordinator: retry_loop.coordinator.clone(),
                            retried: callee.clone(),
                            exception: thrown.clone(),
                            mechanism: Mechanism::Loop(retry_loop.loop_id),
                        });
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| (a.site, &a.exception).cmp(&(b.site, &b.exception)));
    out.dedup();
    out
}

/// Finds all retry locations in the project, keyed by retry loop.
pub fn all_retry_locations(
    index: &ProjectIndex<'_>,
    options: &LoopQueryOptions,
) -> Vec<(RetryLoop, Vec<RetryLocation>)> {
    find_retry_loops(index, options)
        .into_iter()
        .map(|l| {
            let locations = retry_locations(index, &l);
            (l, locations)
        })
        .collect()
}

/// Whether the loop statement carries naming-convention evidence: a string
/// literal, variable name, or called-method name containing a keyword.
pub fn has_keyword_evidence(loop_stmt: &Stmt, keywords: &[String]) -> bool {
    let lowered: Vec<String> = keywords.iter().map(|k| k.to_lowercase()).collect();
    let matches = |text: &str| {
        let text = text.to_lowercase();
        lowered.iter().any(|k| text.contains(k.as_str()))
    };
    let mut found = false;
    let mut check_expr = |expr: &Expr| match expr {
        Expr::Literal(Literal::Str(s), _) if matches(s) => found = true,
        Expr::Ident(name, _) if matches(name) => found = true,
        Expr::Field { name, .. } if matches(name) => found = true,
        Expr::Call { method, .. } if matches(method) => found = true,
        _ => {}
    };
    // Wrap the loop statement in a synthetic block so the generic walkers
    // cover the header (condition, init, update) and the body uniformly.
    let block = wasabi_lang::ast::Block {
        stmts: vec![loop_stmt.clone()],
        span: loop_stmt.span(),
    };
    wasabi_lang::ast::walk_exprs(&block, &mut check_expr);
    if found {
        return true;
    }
    // `var retry = ...` declarations bind through statement names, not
    // expressions; check those too.
    wasabi_lang::ast::walk_stmts(&block, &mut |stmt| {
        match stmt {
            Stmt::Var { name, .. } if matches(name) => found = true,
            Stmt::Assign {
                target: wasabi_lang::ast::LValue::Var(name, _),
                ..
            } if matches(name) => found = true,
            _ => {}
        }
        true
    });
    found
}

fn dedup(mut items: Vec<String>) -> Vec<String> {
    items.sort();
    items.dedup();
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::project::Project;

    fn index(project: &Project) -> ProjectIndex<'_> {
        ProjectIndex::build(project)
    }

    const WEBHDFS: &str = "exception IOException;\n\
         exception AccessControlException extends IOException;\n\
         exception ConnectException extends IOException;\n\
         class WebHdfs {\n\
           field maxAttempts = 5;\n\
           method connect(url) throws AccessControlException, ConnectException { return url; }\n\
           method getResponse(conn) throws IOException { return conn; }\n\
           method run() {\n\
             for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
               try {\n\
                 var conn = this.connect(\"u\");\n\
                 return this.getResponse(conn);\n\
               } catch (AccessControlException e) {\n\
                 break;\n\
               } catch (ConnectException e) {\n\
               }\n\
               sleep(1000);\n\
             }\n\
             return null;\n\
           }\n\
         }";

    #[test]
    fn detects_webhdfs_style_retry_loop() {
        let p = Project::compile("t", vec![("w.jav", WEBHDFS)]).unwrap();
        let idx = index(&p);
        let loops = find_retry_loops(&idx, &LoopQueryOptions::default());
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.coordinator, MethodId::new("WebHdfs", "run"));
        assert!(l.keyword_evidence);
        // Only the ConnectException catch falls through to the header; the
        // AccessControlException catch breaks.
        assert_eq!(l.reaching_catches, vec!["ConnectException"]);
    }

    #[test]
    fn extracts_retry_location_triplets() {
        let p = Project::compile("t", vec![("w.jav", WEBHDFS)]).unwrap();
        let idx = index(&p);
        let loops = find_retry_loops(&idx, &LoopQueryOptions::default());
        let locations = retry_locations(&idx, &loops[0]);
        // connect throws ConnectException (covered). getResponse throws
        // IOException, a supertype of the caught ConnectException — also
        // covered under the over-approximate both-direction subtype check.
        assert_eq!(locations.len(), 2);
        let retried: Vec<String> = locations.iter().map(|l| l.retried.to_string()).collect();
        assert!(retried.contains(&"WebHdfs.connect".to_string()));
        assert!(retried.contains(&"WebHdfs.getResponse".to_string()));
        let exceptions: Vec<&str> = locations.iter().map(|l| l.exception.as_str()).collect();
        assert!(exceptions.contains(&"ConnectException"));
        assert!(exceptions.contains(&"IOException"));
    }

    #[test]
    fn keyword_filter_drops_unnamed_retry_loops() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var i = 0; i < 3; i = i + 1) {\n\
                   try { return this.op(); } catch (E e) { }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let idx = index(&p);
        assert!(find_retry_loops(&idx, &LoopQueryOptions::default()).is_empty());
        let mut no_filter = LoopQueryOptions::default();
        no_filter.keyword_filter = false;
        let loops = find_retry_loops(&idx, &no_filter);
        assert_eq!(loops.len(), 1);
        assert!(!loops[0].keyword_evidence);
    }

    #[test]
    fn non_retry_loop_with_keyword_but_no_reaching_catch_is_excluded() {
        // A lock-acquisition "retry": logs failure and exits — the catch
        // never reaches the header.
        let src = "exception LockException;\n\
             class C {\n\
               method tryLock() throws LockException { return true; }\n\
               method run() {\n\
                 for (var retries = 0; retries < 3; retries = retries + 1) {\n\
                   try { return this.tryLock(); } catch (LockException e) { log(\"failed\"); return false; }\n\
                 }\n\
                 return false;\n\
               }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let idx = index(&p);
        assert!(find_retry_loops(&idx, &LoopQueryOptions::default()).is_empty());
    }

    #[test]
    fn loop_without_try_catch_is_not_retry() {
        let src = "class C { method m(items) { for (var retry = 0; retry < 10; retry = retry + 1) { log(retry); } } }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let idx = index(&p);
        let mut no_filter = LoopQueryOptions::default();
        no_filter.keyword_filter = false;
        assert!(find_retry_loops(&idx, &no_filter).is_empty());
    }

    #[test]
    fn keyword_evidence_from_string_literal_and_method_name() {
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method shouldRetry() { return true; }\n\
               method a() { while (true) { try { this.op(); return 1; } catch (E e) { log(\"will retry\"); } } }\n\
               method b() { while (true) { try { this.op(); return 1; } catch (E e) { if (!this.shouldRetry()) { break; } } } }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let idx = index(&p);
        let loops = find_retry_loops(&idx, &LoopQueryOptions::default());
        assert_eq!(loops.len(), 2);
        assert!(loops.iter().all(|l| l.keyword_evidence));
    }

    #[test]
    fn while_loop_with_retry_counter_in_condition() {
        let src = "exception E;\n\
             class C {\n\
               field maxRetries = 4;\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 var attempts = 0;\n\
                 while (attempts < this.maxRetries) {\n\
                   try { return this.op(); } catch (E e) { attempts = attempts + 1; }\n\
                 }\n\
                 return null;\n\
               }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let idx = index(&p);
        let loops = find_retry_loops(&idx, &LoopQueryOptions::default());
        assert_eq!(loops.len(), 1, "field name `maxRetries` is keyword evidence");
    }

    #[test]
    fn ablation_finds_many_more_loops_without_filter() {
        // Three loops with catch-to-header flow, only one named retry.
        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method a() { while (true) { try { this.op(); } catch (E e) { } } }\n\
               method b() { var items = list(); for (var i = 0; i < items.size(); i = i + 1) { try { this.op(); } catch (E e) { } } }\n\
               method c() { for (var retry = 0; retry < 3; retry = retry + 1) { try { this.op(); } catch (E e) { } } }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let idx = index(&p);
        let with = find_retry_loops(&idx, &LoopQueryOptions::default());
        let mut opts = LoopQueryOptions::default();
        opts.keyword_filter = false;
        let without = find_retry_loops(&idx, &opts);
        assert_eq!(with.len(), 1);
        assert_eq!(without.len(), 3);
    }
}
