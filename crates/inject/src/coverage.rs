//! Coverage recording for the planner's profiling pass.

use std::collections::{HashMap, HashSet};
use wasabi_lang::project::CallSite;
use wasabi_vm::interceptor::{CallCtx, InterceptAction, Interceptor};

/// Interceptor that records which of a set of target call sites a run hits.
///
/// This is WASABI's profiling instrumentation: the planner instruments every
/// retry location and runs the whole suite once to learn which unit test
/// covers which location (§3.1.4).
#[derive(Debug, Default)]
pub struct CoverageRecorder {
    targets: HashSet<CallSite>,
    hits: HashMap<CallSite, u64>,
}

impl CoverageRecorder {
    /// Creates a recorder watching `targets`.
    pub fn new(targets: impl IntoIterator<Item = CallSite>) -> Self {
        CoverageRecorder {
            targets: targets.into_iter().collect(),
            hits: HashMap::new(),
        }
    }

    /// Sites hit at least once, in deterministic order.
    pub fn covered(&self) -> Vec<CallSite> {
        let mut sites: Vec<CallSite> = self.hits.keys().copied().collect();
        sites.sort();
        sites
    }

    /// Hit count for a site.
    pub fn hit_count(&self, site: CallSite) -> u64 {
        self.hits.get(&site).copied().unwrap_or(0)
    }

    /// Clears recorded hits (reused between tests).
    pub fn reset(&mut self) {
        self.hits.clear();
    }
}

impl Interceptor for CoverageRecorder {
    fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction {
        if self.targets.contains(&ctx.site) {
            *self.hits.entry(ctx.site).or_insert(0) += 1;
        }
        InterceptAction::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::ast::CallId;
    use wasabi_lang::intern::{Interner, MethodSym, NameTable};
    use wasabi_lang::project::{FileId, MethodId};

    fn site(call: u32) -> CallSite {
        CallSite {
            file: FileId(0),
            call: CallId(call),
        }
    }

    fn interner() -> Interner {
        let mut interner = Interner::new();
        for name in ["T", "t", "C", "m"] {
            interner.intern(name);
        }
        interner
    }

    fn sym(interner: &Interner, class: &str, name: &str) -> MethodSym {
        MethodSym {
            class: interner.lookup(class).unwrap(),
            name: interner.lookup(name).unwrap(),
        }
    }

    fn ctx<'a>(interner: &'a Interner, site: CallSite, stack: &'a [MethodSym]) -> CallCtx<'a> {
        CallCtx {
            site,
            caller: sym(interner, "T", "t"),
            callee: sym(interner, "C", "m"),
            stack,
            now_ms: 0,
            names: NameTable::new(interner, &[]),
        }
    }

    #[test]
    fn records_only_target_sites() {
        let mut recorder = CoverageRecorder::new([site(1), site(2)]);
        let interner = interner();
        let stack = [sym(&interner, "T", "t")];
        recorder.before_call(&ctx(&interner, site(1), &stack));
        recorder.before_call(&ctx(&interner, site(1), &stack));
        recorder.before_call(&ctx(&interner, site(9), &stack));
        assert_eq!(recorder.covered(), vec![site(1)]);
        assert_eq!(recorder.hit_count(site(1)), 2);
        assert_eq!(recorder.hit_count(site(2)), 0);
        assert_eq!(recorder.hit_count(site(9)), 0);
    }

    #[test]
    fn reset_clears_hits_but_keeps_targets() {
        let mut recorder = CoverageRecorder::new([site(1)]);
        let interner = interner();
        let stack = [sym(&interner, "T", "t")];
        recorder.before_call(&ctx(&interner, site(1), &stack));
        recorder.reset();
        assert!(recorder.covered().is_empty());
        recorder.before_call(&ctx(&interner, site(1), &stack));
        assert_eq!(recorder.hit_count(site(1)), 1);
    }

    #[test]
    fn coverage_runs_with_real_interpreter() {
        use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
        use wasabi_analysis::resolve::ProjectIndex;
        use wasabi_lang::project::Project;
        use wasabi_vm::runner::{run_test, RunOptions};

        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               test tCovers() { assert(this.run() == 1); }\n\
               test tSkips() { assert(true); }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let index = ProjectIndex::build(&p);
        let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
            .into_iter()
            .flat_map(|(_, locs)| locs)
            .collect();
        assert!(!locations.is_empty());
        let mut recorder = CoverageRecorder::new(locations.iter().map(|l| l.site));

        let run = run_test(
            &p,
            &MethodId::new("C", "tCovers"),
            &mut recorder,
            &RunOptions::default(),
        );
        assert!(run.outcome.is_pass());
        assert_eq!(recorder.covered().len(), 1);

        recorder.reset();
        let run = run_test(
            &p,
            &MethodId::new("C", "tSkips"),
            &mut recorder,
            &RunOptions::default(),
        );
        assert!(run.outcome.is_pass());
        assert!(recorder.covered().is_empty());
    }
}
