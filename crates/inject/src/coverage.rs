//! Coverage recording for the planner's profiling pass.

use std::collections::{BTreeMap, BTreeSet};
use wasabi_lang::project::CallSite;
use wasabi_vm::interceptor::{CallCtx, InterceptAction, Interceptor};

/// Interceptor that records which of a set of target call sites a run hits.
///
/// This is WASABI's profiling instrumentation: the planner instruments every
/// retry location and runs the whole suite once to learn which unit test
/// covers which location (§3.1.4).
///
/// Besides raw hit counts it records, per site, the display names of the
/// calling (coordinator-candidate) methods — the metrics layer's
/// per-location attribution. Names resolve through the interceptor
/// context's [`NameTable`](wasabi_lang::intern::NameTable), which degrades
/// runtime-minted symbols it cannot see to `<sN?>` markers instead of
/// panicking (a contained panic here used to masquerade as a run crash).
///
/// All internal collections are ordered (`BTreeMap`/`BTreeSet`), so
/// iteration — and anything derived from it, like the adaptive planner's
/// fingerprint feed — is deterministic without relying on downstream
/// sorts.
#[derive(Debug, Default)]
pub struct CoverageRecorder {
    targets: BTreeSet<CallSite>,
    hits: BTreeMap<CallSite, u64>,
    callers: BTreeMap<CallSite, BTreeSet<String>>,
}

impl CoverageRecorder {
    /// Creates a recorder watching `targets`.
    pub fn new(targets: impl IntoIterator<Item = CallSite>) -> Self {
        CoverageRecorder {
            targets: targets.into_iter().collect(),
            hits: BTreeMap::new(),
            callers: BTreeMap::new(),
        }
    }

    /// Sites hit at least once, in key order.
    pub fn covered(&self) -> Vec<CallSite> {
        self.hits.keys().copied().collect()
    }

    /// Hit count for a site.
    pub fn hit_count(&self, site: CallSite) -> u64 {
        self.hits.get(&site).copied().unwrap_or(0)
    }

    /// Display names (`Class.method`) of methods observed calling through
    /// a covered site, in deterministic order.
    pub fn callers_of(&self, site: CallSite) -> Vec<String> {
        self.callers
            .get(&site)
            .map(|names| names.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Clears recorded hits (reused between tests).
    pub fn reset(&mut self) {
        self.hits.clear();
        self.callers.clear();
    }
}

impl Interceptor for CoverageRecorder {
    fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction {
        if self.targets.contains(&ctx.site) {
            *self.hits.entry(ctx.site).or_insert(0) += 1;
            self.callers
                .entry(ctx.site)
                .or_default()
                .insert(ctx.names.method_display(ctx.caller));
        }
        InterceptAction::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_lang::ast::CallId;
    use wasabi_lang::intern::{Interner, MethodSym, NameTable};
    use wasabi_lang::project::{FileId, MethodId};

    fn site(call: u32) -> CallSite {
        CallSite {
            file: FileId(0),
            call: CallId(call),
        }
    }

    fn interner() -> Interner {
        let mut interner = Interner::new();
        for name in ["T", "t", "C", "m"] {
            interner.intern(name);
        }
        interner
    }

    fn sym(interner: &Interner, class: &str, name: &str) -> MethodSym {
        MethodSym {
            class: interner.lookup(class).unwrap(),
            name: interner.lookup(name).unwrap(),
        }
    }

    fn ctx<'a>(interner: &'a Interner, site: CallSite, stack: &'a [MethodSym]) -> CallCtx<'a> {
        CallCtx {
            site,
            caller: sym(interner, "T", "t"),
            callee: sym(interner, "C", "m"),
            stack,
            now_ms: 0,
            names: NameTable::new(interner, &[]),
        }
    }

    #[test]
    fn records_only_target_sites() {
        let mut recorder = CoverageRecorder::new([site(1), site(2)]);
        let interner = interner();
        let stack = [sym(&interner, "T", "t")];
        recorder.before_call(&ctx(&interner, site(1), &stack));
        recorder.before_call(&ctx(&interner, site(1), &stack));
        recorder.before_call(&ctx(&interner, site(9), &stack));
        assert_eq!(recorder.covered(), vec![site(1)]);
        assert_eq!(recorder.hit_count(site(1)), 2);
        assert_eq!(recorder.hit_count(site(2)), 0);
        assert_eq!(recorder.hit_count(site(9)), 0);
    }

    #[test]
    fn reset_clears_hits_but_keeps_targets() {
        let mut recorder = CoverageRecorder::new([site(1)]);
        let interner = interner();
        let stack = [sym(&interner, "T", "t")];
        recorder.before_call(&ctx(&interner, site(1), &stack));
        assert_eq!(recorder.callers_of(site(1)), vec!["T.t".to_string()]);
        recorder.reset();
        assert!(recorder.covered().is_empty());
        assert!(recorder.callers_of(site(1)).is_empty());
        recorder.before_call(&ctx(&interner, site(1), &stack));
        assert_eq!(recorder.hit_count(site(1)), 1);
    }

    /// Regression: a caller minted in a runtime overlay the recorder's
    /// name table cannot see (id past the frozen interner) must degrade to
    /// a `<sN?>` marker, not panic out of the profiling pass — the old
    /// resolution path indexed out of bounds.
    #[test]
    fn runtime_minted_caller_is_recorded_with_marker() {
        use wasabi_lang::intern::Symbol;

        let mut recorder = CoverageRecorder::new([site(1)]);
        let interner = interner();
        let foreign = MethodSym {
            class: Symbol(interner.len() as u32 + 2),
            name: interner.lookup("t").unwrap(),
        };
        let stack = [foreign];
        let ctx = CallCtx {
            site: site(1),
            caller: foreign,
            callee: sym(&interner, "C", "m"),
            stack: &stack,
            now_ms: 0,
            names: NameTable::new(&interner, &[]),
        };
        recorder.before_call(&ctx);
        assert_eq!(recorder.hit_count(site(1)), 1);
        assert_eq!(recorder.callers_of(site(1)), vec!["<s6?>.t".to_string()]);
    }

    #[test]
    fn coverage_runs_with_real_interpreter() {
        use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
        use wasabi_analysis::resolve::ProjectIndex;
        use wasabi_lang::project::Project;
        use wasabi_vm::runner::{run_test, RunOptions};

        let src = "exception E;\n\
             class C {\n\
               method op() throws E { return 1; }\n\
               method run() {\n\
                 for (var retry = 0; retry < 3; retry = retry + 1) {\n\
                   try { return this.op(); } catch (E e) { sleep(1); }\n\
                 }\n\
                 return null;\n\
               }\n\
               test tCovers() { assert(this.run() == 1); }\n\
               test tSkips() { assert(true); }\n\
             }";
        let p = Project::compile("t", vec![("c.jav", src)]).unwrap();
        let index = ProjectIndex::build(&p);
        let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
            .into_iter()
            .flat_map(|(_, locs)| locs)
            .collect();
        assert!(!locations.is_empty());
        let mut recorder = CoverageRecorder::new(locations.iter().map(|l| l.site));

        let run = run_test(
            &p,
            &MethodId::new("C", "tCovers"),
            &mut recorder,
            &RunOptions::default(),
        );
        assert!(run.outcome.is_pass());
        assert_eq!(recorder.covered().len(), 1);

        recorder.reset();
        let run = run_test(
            &p,
            &MethodId::new("C", "tSkips"),
            &mut recorder,
            &RunOptions::default(),
        );
        assert!(run.outcome.is_pass());
        assert!(recorder.covered().is_empty());
    }
}
