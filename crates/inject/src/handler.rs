//! The exception-throwing injection handler (paper Listing 5).

use std::collections::HashMap;
use wasabi_analysis::loops::RetryLocation;
use wasabi_lang::project::CallSite;
use wasabi_vm::interceptor::{CallCtx, InterceptAction, Interceptor};

/// One injection registration: throw `location.exception` at
/// `location.site`, up to `k` times.
#[derive(Debug, Clone)]
pub struct InjectionSpec {
    /// The retry location to inject at.
    pub location: RetryLocation,
    /// Maximum number of injections (the paper uses K = 1 and K = 100).
    pub k: u32,
}

impl InjectionSpec {
    /// Creates a spec.
    pub fn new(location: RetryLocation, k: u32) -> Self {
        InjectionSpec { location, k }
    }
}

/// Interceptor that throws trigger exceptions at registered retry locations.
///
/// Matching is by exact call site, which subsumes the paper's
/// (callee, caller) pointcut: a call site determines both. Counts are kept
/// per `(site, exception)` pair, mirroring the handler's hash table.
#[derive(Debug, Default)]
pub struct InjectionHandler {
    specs: HashMap<CallSite, InjectionSpec>,
    counts: HashMap<(CallSite, String), u32>,
}

impl InjectionHandler {
    /// Creates a handler with the given registrations.
    ///
    /// When several specs share a call site, the last one wins (the planner
    /// never schedules overlapping specs in one run).
    pub fn new(specs: Vec<InjectionSpec>) -> Self {
        InjectionHandler {
            specs: specs
                .into_iter()
                .map(|spec| (spec.location.site, spec))
                .collect(),
            counts: HashMap::new(),
        }
    }

    /// Convenience constructor for the common single-location run.
    pub fn single(location: RetryLocation, k: u32) -> Self {
        InjectionHandler::new(vec![InjectionSpec::new(location, k)])
    }

    /// Total number of exceptions thrown so far, across all sites.
    pub fn total_injected(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Number of exceptions thrown at a specific site.
    pub fn injected_at(&self, site: CallSite) -> u32 {
        self.counts
            .iter()
            .filter(|((s, _), _)| *s == site)
            .map(|(_, count)| *count)
            .sum()
    }

    /// Per-`(site, exception)` injection counts in deterministic order —
    /// the metrics layer's per-retry-location attribution (§7 needs to
    /// know *where* injections went, not just how many).
    pub fn injections_by_site(&self) -> Vec<(CallSite, String, u32)> {
        let mut rows: Vec<(CallSite, String, u32)> = self
            .counts
            .iter()
            .map(|((site, exception), count)| (*site, exception.clone(), *count))
            .collect();
        rows.sort();
        rows
    }
}

impl Interceptor for InjectionHandler {
    fn before_call(&mut self, ctx: &CallCtx<'_>) -> InterceptAction {
        let Some(spec) = self.specs.get(&ctx.site) else {
            return InterceptAction::Proceed;
        };
        let key = (ctx.site, spec.location.exception.clone());
        let count = self.counts.entry(key).or_insert(0);
        if *count < spec.k {
            *count += 1;
            InterceptAction::Throw {
                exc_type: spec.location.exception.clone(),
                message: format!(
                    "injected {} ({} of {}) at {} invoked from {}",
                    spec.location.exception,
                    *count,
                    spec.k,
                    ctx.names.method_display(ctx.callee),
                    ctx.names.method_display(ctx.caller)
                ),
            }
        } else {
            InterceptAction::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_analysis::loops::Mechanism;
    use wasabi_lang::ast::{CallId, LoopId};
    use wasabi_lang::intern::{Interner, MethodSym, NameTable};
    use wasabi_lang::project::{FileId, MethodId};

    fn location(call: u32, exception: &str) -> RetryLocation {
        RetryLocation {
            site: CallSite {
                file: FileId(0),
                call: CallId(call),
            },
            coordinator: MethodId::new("C", "run"),
            retried: MethodId::new("C", "op"),
            exception: exception.to_string(),
            mechanism: Mechanism::Loop(LoopId(0)),
        }
    }

    fn interner() -> Interner {
        let mut interner = Interner::new();
        for name in ["C", "run", "op"] {
            interner.intern(name);
        }
        interner
    }

    fn sym(interner: &Interner, class: &str, name: &str) -> MethodSym {
        MethodSym {
            class: interner.lookup(class).unwrap(),
            name: interner.lookup(name).unwrap(),
        }
    }

    fn ctx<'a>(interner: &'a Interner, site: CallSite, stack: &'a [MethodSym]) -> CallCtx<'a> {
        CallCtx {
            site,
            caller: sym(interner, "C", "run"),
            callee: sym(interner, "C", "op"),
            stack,
            now_ms: 0,
            names: NameTable::new(interner, &[]),
        }
    }

    #[test]
    fn throws_k_times_then_proceeds() {
        let loc = location(3, "E");
        let site = loc.site;
        let mut handler = InjectionHandler::single(loc, 2);
        let interner = interner();
        let stack = [sym(&interner, "C", "run")];
        for expected in 1..=2u32 {
            match handler.before_call(&ctx(&interner, site, &stack)) {
                InterceptAction::Throw { exc_type, message } => {
                    assert_eq!(exc_type, "E");
                    assert!(message.contains(&format!("({expected} of 2)")));
                    assert!(message.contains("at C.op invoked from C.run"));
                }
                other => panic!("expected throw, got {other:?}"),
            }
        }
        assert_eq!(
            handler.before_call(&ctx(&interner, site, &stack)),
            InterceptAction::Proceed
        );
        assert_eq!(handler.total_injected(), 2);
        assert_eq!(handler.injected_at(site), 2);
    }

    #[test]
    fn unregistered_sites_proceed() {
        let mut handler = InjectionHandler::single(location(3, "E"), 5);
        let other_site = CallSite {
            file: FileId(0),
            call: CallId(9),
        };
        let interner = interner();
        let stack = [sym(&interner, "C", "run")];
        assert_eq!(
            handler.before_call(&ctx(&interner, other_site, &stack)),
            InterceptAction::Proceed
        );
        assert_eq!(handler.total_injected(), 0);
    }

    #[test]
    fn multiple_specs_count_independently() {
        let a = location(1, "E1");
        let b = location(2, "E2");
        let (sa, sb) = (a.site, b.site);
        let mut handler = InjectionHandler::new(vec![
            InjectionSpec::new(a, 1),
            InjectionSpec::new(b, 1),
        ]);
        let interner = interner();
        let stack = [sym(&interner, "C", "run")];
        assert!(matches!(
            handler.before_call(&ctx(&interner, sa, &stack)),
            InterceptAction::Throw { .. }
        ));
        assert!(matches!(
            handler.before_call(&ctx(&interner, sb, &stack)),
            InterceptAction::Throw { .. }
        ));
        assert_eq!(handler.injected_at(sa), 1);
        assert_eq!(handler.injected_at(sb), 1);
        assert_eq!(
            handler.before_call(&ctx(&interner, sa, &stack)),
            InterceptAction::Proceed
        );
        assert_eq!(
            handler.injections_by_site(),
            vec![(sa, "E1".to_string(), 1), (sb, "E2".to_string(), 1)]
        );
    }

    /// Regression: a callee whose name was minted in an interpreter's
    /// runtime overlay (a "runtime-only" name, id past the frozen
    /// interner) used to panic inside the injection message formatting —
    /// `NameTable` indexed out of bounds — and the engine's panic
    /// containment then silently recorded the run as `Crashed`,
    /// corrupting campaign stats. The handler must throw with a degraded
    /// name marker instead.
    #[test]
    fn runtime_minted_callee_injects_without_panicking() {
        use wasabi_lang::intern::Symbol;

        let loc = location(3, "E");
        let site = loc.site;
        let mut handler = InjectionHandler::single(loc, 1);
        let interner = interner();
        // Mint a method name past the frozen range, with NO overlay in the
        // table the interceptor sees (the frozen-interner view).
        let runtime_name = Symbol(interner.len() as u32 + 5);
        let callee = MethodSym {
            class: interner.lookup("C").unwrap(),
            name: runtime_name,
        };
        let stack = [sym(&interner, "C", "run")];
        let ctx = CallCtx {
            site,
            caller: sym(&interner, "C", "run"),
            callee,
            stack: &stack,
            now_ms: 0,
            names: NameTable::new(&interner, &[]),
        };
        match handler.before_call(&ctx) {
            InterceptAction::Throw { exc_type, message } => {
                assert_eq!(exc_type, "E");
                assert!(
                    message.contains("C.<s8?>"),
                    "degraded marker expected in: {message}"
                );
            }
            other => panic!("expected throw, got {other:?}"),
        }
        assert_eq!(handler.total_injected(), 1);
    }
}
