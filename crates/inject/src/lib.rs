#![forbid(unsafe_code)]
//! Fault injection: the AspectJ-handler substitute (paper Listing 5).
//!
//! Two interceptors plug into the interpreter's call hook:
//!
//! - [`InjectionHandler`] throws a configured trigger exception at a retry
//!   location the first `K` times the call site executes, then lets the call
//!   proceed — exactly the paper's exception-throwing handler;
//! - [`CoverageRecorder`] records which retry locations a test exercises,
//!   used by the planner's profiling pass (§3.1.4).
//!
//! # Examples
//!
//! ```
//! use wasabi_analysis::loops::{Mechanism, RetryLocation};
//! use wasabi_inject::{InjectionHandler, InjectionSpec};
//! use wasabi_lang::ast::{CallId, LoopId};
//! use wasabi_lang::project::{CallSite, FileId, MethodId};
//!
//! let location = RetryLocation {
//!     site: CallSite { file: FileId(0), call: CallId(2) },
//!     coordinator: MethodId::new("Client", "run"),
//!     retried: MethodId::new("Client", "connect"),
//!     exception: "ConnectException".to_string(),
//!     mechanism: Mechanism::Loop(LoopId(0)),
//! };
//! let handler = InjectionHandler::new(vec![InjectionSpec::new(location, 100)]);
//! assert_eq!(handler.total_injected(), 0);
//! ```

pub mod coverage;
pub mod handler;

pub use coverage::CoverageRecorder;
pub use handler::{InjectionHandler, InjectionSpec};
