//! Structured campaign progress events.
//!
//! Workers never talk to an observer directly: they send events over an
//! `mpsc` channel and the campaign's coordinating thread replays them into
//! the observer in arrival order. Observers therefore need no internal
//! locking and may hold mutable state (`&mut self` methods).

use crate::campaign::{CampaignStats, RunOutcome};
use wasabi_planner::plan::RunKey;

/// One progress event from a running campaign.
#[derive(Debug)]
pub enum EngineEvent<'a> {
    /// The campaign is about to execute `total_runs` runs on `jobs` workers.
    Started {
        /// Number of runs in the campaign.
        total_runs: usize,
        /// Worker count.
        jobs: usize,
    },
    /// A worker picked up a run.
    RunStarted {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// The worker executing it.
        worker: usize,
    },
    /// A worker finished a run.
    RunFinished {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// The worker that executed it.
        worker: usize,
        /// How the run ended.
        outcome: &'a RunOutcome,
        /// Number of faults injected during the run.
        injections: u32,
        /// Number of oracle reports the run produced.
        reports: usize,
    },
    /// All runs finished; `stats` is the final aggregate.
    Finished {
        /// Final campaign statistics.
        stats: &'a CampaignStats,
    },
}

/// Receiver for campaign progress events.
///
/// Events arrive on one thread, in a deterministic order only for
/// `Started`/`Finished`; `RunStarted`/`RunFinished` interleave according to
/// real scheduling, so observers must not feed anything derived from their
/// arrival order back into campaign results.
pub trait EngineObserver {
    /// Called for every event.
    fn on_event(&mut self, event: &EngineEvent<'_>);
}

/// Ignores all events: the default for library callers.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl EngineObserver for NullObserver {
    fn on_event(&mut self, _event: &EngineEvent<'_>) {}
}

/// Prints campaign progress to stderr: a header, a line every
/// `every` completed runs (and for every timed-out run), and a summary.
#[derive(Debug)]
pub struct StderrProgress {
    every: usize,
    completed: usize,
    reports: usize,
}

impl StderrProgress {
    /// Reports every `every`-th completed run (clamped to at least 1).
    pub fn new(every: usize) -> Self {
        StderrProgress {
            every: every.max(1),
            completed: 0,
            reports: 0,
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new(25)
    }
}

impl EngineObserver for StderrProgress {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        match event {
            EngineEvent::Started { total_runs, jobs } => {
                eprintln!("[engine] campaign: {total_runs} runs on {jobs} worker(s)");
            }
            EngineEvent::RunStarted { .. } => {}
            EngineEvent::RunFinished {
                key,
                worker,
                outcome,
                reports,
                ..
            } => {
                self.completed += 1;
                self.reports += reports;
                let timed_out = matches!(outcome, RunOutcome::TimedOut);
                if timed_out || self.completed % self.every == 0 {
                    let note = if timed_out { " [timed out]" } else { "" };
                    eprintln!(
                        "[engine] {} runs done ({} report(s)) — last: {} @ {} K={} on worker {}{}",
                        self.completed, self.reports, key.test, key.site, key.k, worker, note
                    );
                }
            }
            EngineEvent::Finished { stats } => {
                eprintln!(
                    "[engine] done: {} runs, {} timed out, {} crashed, {} report(s), {} injections, {} ms wall",
                    stats.runs_total,
                    stats.timed_out,
                    stats.crashed,
                    stats.reports,
                    stats.injections,
                    stats.wall_ms
                );
            }
        }
    }
}

/// Collects the final campaign statistics as a JSON document
/// (`wasabi-util`'s writer; no external dependencies).
#[cfg(feature = "json-reports")]
#[derive(Debug, Default)]
pub struct JsonSummarySink {
    summary: Option<String>,
}

#[cfg(feature = "json-reports")]
impl JsonSummarySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonSummarySink::default()
    }

    /// The JSON summary, available once the campaign finished.
    pub fn summary(&self) -> Option<&str> {
        self.summary.as_deref()
    }
}

#[cfg(feature = "json-reports")]
impl EngineObserver for JsonSummarySink {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        use wasabi_util::Json;
        let EngineEvent::Finished { stats } = event else {
            return;
        };
        let value = Json::obj([
            ("runs_total", Json::from(stats.runs_total)),
            ("completed", Json::from(stats.completed)),
            ("timed_out", Json::from(stats.timed_out)),
            ("crashed", Json::from(stats.crashed)),
            ("rethrow_filtered", Json::from(stats.rethrow_filtered)),
            ("not_a_trigger", Json::from(stats.not_a_trigger)),
            ("reports", Json::from(stats.reports)),
            ("injections", Json::from(stats.injections as i64)),
            ("virtual_ms", Json::from(stats.virtual_ms as i64)),
            ("wall_ms", Json::from(stats.wall_ms as i64)),
            ("jobs", Json::from(stats.jobs)),
            (
                "worker_runs",
                Json::arr(stats.worker_runs.iter().map(|&n| Json::from(n))),
            ),
        ]);
        self.summary = Some(value.pretty());
    }
}

/// Fans one event stream out to two observers, so a caller can have both
/// progress lines and a JSON summary without writing a combinator.
pub struct Tee<'a, 'b> {
    /// First observer.
    pub first: &'a mut dyn EngineObserver,
    /// Second observer.
    pub second: &'b mut dyn EngineObserver,
}

impl EngineObserver for Tee<'_, '_> {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        self.first.on_event(event);
        self.second.on_event(event);
    }
}
