//! Structured campaign progress events.
//!
//! Workers never talk to an observer directly: they send events over an
//! `mpsc` channel and the campaign's coordinating thread replays them into
//! the observer in arrival order. Observers therefore need no internal
//! locking and may hold mutable state (`&mut self` methods).

use crate::campaign::{CampaignStats, RunOutcome};
use crate::metrics::{CampaignMetrics, RunTiming};
use wasabi_planner::plan::RunKey;

/// One progress event from a running campaign.
#[derive(Debug)]
pub enum EngineEvent<'a> {
    /// A named pipeline phase began (restore/profile/plan/run/report;
    /// emitters outside the campaign — compile, say — may add their own
    /// names). Emitted by `wasabi-core`'s dynamic pipeline, not by
    /// `run_campaign` itself.
    PhaseStarted {
        /// Phase name.
        name: &'a str,
    },
    /// The matching phase ended. Observers that track time (the metrics
    /// recorder) timestamp both edges through their own clock.
    PhaseFinished {
        /// Phase name.
        name: &'a str,
    },
    /// The campaign is about to execute `total_runs` runs on `jobs` workers.
    Started {
        /// Number of runs in the campaign.
        total_runs: usize,
        /// Worker count.
        jobs: usize,
        /// Runs prefilled from a resume journal (skipped, not executed).
        resumed: usize,
    },
    /// A worker picked up a run.
    RunStarted {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// The worker executing it.
        worker: usize,
    },
    /// An attempt crashed or timed out and the retry policy scheduled
    /// another one.
    RunRetried {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// The worker executing it.
        worker: usize,
        /// The attempt that just failed (1-based).
        attempt: u8,
        /// Backoff delay before the next attempt, in milliseconds.
        delay_ms: u64,
    },
    /// A worker finished a run.
    RunFinished {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// The worker that executed it.
        worker: usize,
        /// How the run ended.
        outcome: &'a RunOutcome,
        /// Number of faults injected during the run.
        injections: u32,
        /// Number of oracle reports the run produced.
        reports: usize,
        /// Attempts consumed (1 = no retries).
        attempts: u8,
        /// Interpreter steps the run consumed.
        steps: u64,
        /// Host-time breakdown for the run (scheduling-dependent).
        timing: &'a RunTiming,
    },
    /// A run's final attempt panicked; the panic was contained and the run
    /// recorded as [`RunOutcome::Crashed`]. Always paired with a
    /// `RunFinished` for the same index.
    RunCrashed {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// The worker that executed it.
        worker: usize,
        /// The contained panic payload.
        message: &'a str,
    },
    /// A run exhausted the retry policy on a transient failure and was
    /// quarantined (kept in the report, flagged). Paired with
    /// `RunFinished`.
    RunQuarantined {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The run's identity.
        key: &'a RunKey,
        /// Attempts consumed before giving up.
        attempts: u8,
        /// The final (still-failing) outcome.
        outcome: &'a RunOutcome,
    },
    /// A run's full [`RunRecord`](crate::campaign::RunRecord) was merged
    /// into the campaign, after retries/quarantine resolved and before any
    /// streaming spill. Unlike `RunFinished` (a progress signal), this
    /// event carries the complete record — oracle reports, filter flags,
    /// injection counts — so observers can feed results back into
    /// planning (the adaptive planner's fingerprint registry). Arrival
    /// order is scheduling-dependent; observers deriving campaign inputs
    /// from these events must re-merge by key.
    RunRecorded {
        /// Index of the run in campaign (key) order.
        index: usize,
        /// The completed record.
        record: &'a crate::campaign::RunRecord,
    },
    /// A worker thread died (its run panicked through containment, or the
    /// thread itself was killed); survivors drain its shard.
    WorkerLost {
        /// The dead worker.
        worker: usize,
        /// The run it was executing, if any — re-queued for the survivors.
        requeued: Option<&'a RunKey>,
    },
    /// The journal flushed an epoch marker to disk; `completed` records
    /// are now durable.
    CheckpointWritten {
        /// Records made durable so far this session.
        completed: usize,
    },
    /// All runs finished; `stats` is the final aggregate.
    Finished {
        /// Final campaign statistics.
        stats: &'a CampaignStats,
        /// Merged per-run distributions (see [`CampaignMetrics`] for the
        /// deterministic/timing split).
        metrics: &'a CampaignMetrics,
    },
}

/// Receiver for campaign progress events.
///
/// Events arrive on one thread, in a deterministic order only for
/// `Started`/`Finished`; everything in between interleaves according to
/// real scheduling, so observers must not feed anything derived from their
/// arrival order back into campaign results.
pub trait EngineObserver {
    /// Called for every event.
    fn on_event(&mut self, event: &EngineEvent<'_>);
}

/// Ignores all events: the default for library callers and `--quiet`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl EngineObserver for NullObserver {
    fn on_event(&mut self, _event: &EngineEvent<'_>) {}
}

/// Prints campaign progress to stderr, rate-limited by *completed-run
/// count* rather than per-event: a million-run campaign prints a bounded
/// number of progress lines, not a million. Exceptional events (a lost
/// worker) are printed immediately; per-run noise (timeouts, crashes,
/// retries) is only counted and folded into the periodic line and the
/// final summary.
#[derive(Debug)]
pub struct StderrProgress {
    every: usize,
    completed: usize,
    reports: usize,
    crashed: usize,
    retried: usize,
    quarantined: usize,
}

impl StderrProgress {
    /// Reports every `every`-th completed run. `every == 0` means
    /// auto-scale: pick `total_runs / 20` (≥ 1) when the campaign starts,
    /// so output is ~20 lines regardless of campaign size.
    pub fn new(every: usize) -> Self {
        StderrProgress {
            every,
            completed: 0,
            reports: 0,
            crashed: 0,
            retried: 0,
            quarantined: 0,
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new(0)
    }
}

impl EngineObserver for StderrProgress {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        match event {
            // Phase transitions are the metrics layer's concern; progress
            // output stays per-run.
            EngineEvent::PhaseStarted { .. } => {}
            EngineEvent::PhaseFinished { .. } => {}
            EngineEvent::Started {
                total_runs,
                jobs,
                resumed,
            } => {
                if self.every == 0 {
                    self.every = (*total_runs / 20).max(1);
                }
                let resume_note = if *resumed > 0 {
                    format!(" ({resumed} resumed from journal)")
                } else {
                    String::new()
                };
                eprintln!("[engine] campaign: {total_runs} runs on {jobs} worker(s){resume_note}");
            }
            EngineEvent::RunStarted { .. } => {}
            EngineEvent::RunRecorded { .. } => {}
            EngineEvent::RunRetried { .. } => self.retried += 1,
            EngineEvent::RunCrashed { .. } => self.crashed += 1,
            EngineEvent::RunQuarantined { .. } => self.quarantined += 1,
            EngineEvent::CheckpointWritten { .. } => {}
            EngineEvent::WorkerLost { worker, requeued } => {
                let requeue_note = match requeued {
                    Some(key) => format!("; re-queued {} @ {} K={}", key.test, key.site, key.k),
                    None => String::new(),
                };
                eprintln!("[engine] worker {worker} lost{requeue_note}");
            }
            EngineEvent::RunFinished { key, reports, .. } => {
                self.completed += 1;
                self.reports += reports;
                if self.completed.is_multiple_of(self.every.max(1)) {
                    let mut notes = String::new();
                    if self.crashed > 0 {
                        notes.push_str(&format!(", {} crashed", self.crashed));
                    }
                    if self.retried > 0 {
                        notes.push_str(&format!(", {} retried", self.retried));
                    }
                    if self.quarantined > 0 {
                        notes.push_str(&format!(", {} quarantined", self.quarantined));
                    }
                    eprintln!(
                        "[engine] {} runs done ({} report(s){}) — last: {} @ {} K={}",
                        self.completed, self.reports, notes, key.test, key.site, key.k
                    );
                }
            }
            EngineEvent::Finished { stats, .. } => {
                eprintln!(
                    "[engine] done: {} runs ({} resumed), {} timed out, {} failed, {} crashed, {} retried, {} quarantined, {} worker(s) lost, {} report(s), {} injections, {} ms wall",
                    stats.runs_total,
                    stats.resumed,
                    stats.timed_out,
                    stats.failed,
                    stats.crashed,
                    stats.retried,
                    stats.quarantined,
                    stats.workers_lost,
                    stats.reports,
                    stats.injections,
                    stats.wall_ms
                );
            }
        }
    }
}

/// Collects the final campaign statistics as a JSON document
/// (`wasabi-util`'s writer; no external dependencies). The document
/// carries `schema_version` ([`crate::journal::SCHEMA_VERSION`]) so
/// downstream consumers can detect format changes, and a `quarantine`
/// section listing runs that exhausted the retry policy, sorted by
/// `RunKey` so the document is deterministic regardless of scheduling.
#[cfg(feature = "json-reports")]
#[derive(Debug, Default)]
pub struct JsonSummarySink {
    quarantined: Vec<(RunKey, u8, &'static str)>,
    summary: Option<String>,
}

/// A [`RunOutcome`]'s stable kind string — the vocabulary shared by the
/// journal, the JSON summary, trace run spans, and the adaptive planner's
/// probe signals (`wasabi-core` builds `ProbeSignal`s from `RunRecorded`
/// events with it).
pub fn outcome_kind(outcome: &RunOutcome) -> &'static str {
    use wasabi_vm::trace::TestOutcome;
    match outcome {
        RunOutcome::TimedOut => "timed_out",
        RunOutcome::Crashed { .. } => "crashed",
        RunOutcome::Completed(TestOutcome::Passed) => "passed",
        RunOutcome::Completed(TestOutcome::AssertionFailed { .. }) => "assertion_failed",
        RunOutcome::Completed(TestOutcome::ExceptionEscaped { .. }) => "exception_escaped",
        RunOutcome::Completed(TestOutcome::Timeout { .. }) => "timeout",
        RunOutcome::Completed(TestOutcome::FuelExhausted) => "fuel_exhausted",
        RunOutcome::Completed(TestOutcome::WallClockExceeded) => "wall_clock_exceeded",
        RunOutcome::Completed(TestOutcome::VmFault { .. }) => "vm_fault",
    }
}

#[cfg(feature = "json-reports")]
impl JsonSummarySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonSummarySink::default()
    }

    /// The JSON summary, available once the campaign finished.
    pub fn summary(&self) -> Option<&str> {
        self.summary.as_deref()
    }
}

#[cfg(feature = "json-reports")]
impl EngineObserver for JsonSummarySink {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        use wasabi_util::Json;
        match event {
            EngineEvent::RunQuarantined {
                key,
                attempts,
                outcome,
                ..
            } => {
                self.quarantined
                    .push(((*key).clone(), *attempts, outcome_kind(outcome)));
            }
            EngineEvent::Finished { stats, metrics } => {
                self.quarantined.sort_by(|a, b| a.0.cmp(&b.0));
                let quarantine = Json::arr(self.quarantined.iter().map(|(key, attempts, kind)| {
                    Json::obj([
                        ("test", Json::from(key.test.to_string())),
                        ("site", Json::from(key.site.to_string())),
                        ("exception", Json::from(key.exception.as_str())),
                        ("k", Json::from(key.k)),
                        ("attempts", Json::from(u32::from(*attempts))),
                        ("outcome", Json::from(*kind)),
                    ])
                }));
                let value = Json::obj([
                    ("schema_version", Json::from(crate::journal::SCHEMA_VERSION)),
                    ("runs_total", Json::from(stats.runs_total)),
                    ("completed", Json::from(stats.completed)),
                    ("timed_out", Json::from(stats.timed_out)),
                    ("failed", Json::from(stats.failed)),
                    ("crashed", Json::from(stats.crashed)),
                    ("retried", Json::from(stats.retried)),
                    ("quarantined", Json::from(stats.quarantined)),
                    ("rethrow_filtered", Json::from(stats.rethrow_filtered)),
                    ("not_a_trigger", Json::from(stats.not_a_trigger)),
                    ("reports", Json::from(stats.reports)),
                    ("injections", Json::from(stats.injections as i64)),
                    ("virtual_ms", Json::from(stats.virtual_ms as i64)),
                    ("wall_ms", Json::from(stats.wall_ms as i64)),
                    ("jobs", Json::from(stats.jobs)),
                    (
                        "worker_runs",
                        Json::arr(stats.worker_runs.iter().map(|&n| Json::from(n))),
                    ),
                    ("supervisor_runs", Json::from(stats.supervisor_runs)),
                    ("workers_lost", Json::from(stats.workers_lost)),
                    ("resumed", Json::from(stats.resumed)),
                    ("quarantine", quarantine),
                    ("metrics", metrics.to_json()),
                ]);
                self.summary = Some(value.pretty());
            }
            _ => {}
        }
    }
}

/// Fans one event stream out to two observers, so a caller can have both
/// progress lines and a JSON summary without writing a combinator.
pub struct Tee<'a, 'b> {
    /// First observer.
    pub first: &'a mut dyn EngineObserver,
    /// Second observer.
    pub second: &'b mut dyn EngineObserver,
}

impl EngineObserver for Tee<'_, '_> {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        self.first.on_event(event);
        self.second.on_event(event);
    }
}

/// Fans one event stream out to any number of observers, in registration
/// order. The N-way generalization of [`Tee`] for callers whose observer
/// set is dynamic — the serve daemon attaches one bridge per live
/// subscriber on top of its own progress recorder.
#[derive(Default)]
pub struct FanOut<'a> {
    /// Observers, invoked in order for every event.
    pub observers: Vec<&'a mut dyn EngineObserver>,
}

impl<'a> FanOut<'a> {
    /// A fan-out over `observers`.
    pub fn new(observers: Vec<&'a mut dyn EngineObserver>) -> Self {
        FanOut { observers }
    }
}

impl EngineObserver for FanOut<'_> {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        for observer in self.observers.iter_mut() {
            observer.on_event(event);
        }
    }
}
