#![forbid(unsafe_code)]
//! The WASABI campaign engine: parallel execution of fault-injection
//! campaigns with a deterministic result merge.
//!
//! The paper's dynamic workflow is embarrassingly parallel — every
//! `{unit test, retry location, exception, K}` injection run is an
//! independent interpreter execution — and this crate owns running them:
//!
//! - [`queue::ShardedQueue`] — a work queue sharded per worker with
//!   stealing, built only on `std::sync::{Mutex, Condvar}`;
//! - [`campaign::run_campaign`] — a fixed-size `std::thread` worker pool
//!   with per-run interpreter isolation, an optional per-run wall-clock
//!   budget (graceful cancellation → [`RunOutcome::TimedOut`]), and a
//!   merge that orders results by [`wasabi_planner::plan::RunKey`] so
//!   reports are byte-identical for any `jobs` value;
//! - a **resilience layer**: per-run panic containment
//!   ([`RunOutcome::Crashed`]), a deterministic [`campaign::RetryPolicy`]
//!   with quarantine for runs that exhaust it, worker supervision
//!   (a dead worker's shard is drained by survivors), and a durable
//!   [`journal`] for checkpoint/resume — a resumed campaign's report is
//!   byte-identical to an uninterrupted one;
//! - [`observer::EngineObserver`] — structured progress events, with a
//!   stderr reporter ([`StderrProgress`]) and, behind the `json-reports`
//!   feature, a JSON summary sink ([`observer::JsonSummarySink`]);
//! - an **observability layer**: per-run host timings ([`RunTiming`]),
//!   log2-bucketed mergeable histograms ([`CampaignMetrics`], merged from
//!   per-worker collectors in index order), phase/run span recording
//!   ([`MetricsObserver`]), and a schema-versioned JSON-lines trace
//!   format ([`spans`]) behind `--trace-out` and `wasabi stats`.
//!
//! `wasabi-core`'s `run_dynamic` delegates here; serial execution is just
//! `jobs = 1` through the same code path.

pub mod campaign;
pub mod journal;
pub mod metrics;
pub mod observer;
pub mod queue;
pub mod shard;
pub mod spans;

pub use campaign::{
    run_campaign, CampaignOptions, CampaignResult, CampaignStats, ChaosConfig, RetryPolicy,
    RunOutcome, RunRecord,
};
pub use metrics::{CampaignMetrics, MetricsObserver, RunTiming};
pub use observer::{EngineEvent, EngineObserver, FanOut, NullObserver, StderrProgress, Tee};
pub use spans::{load_trace, render_stats, validate_trace, write_trace, TraceFile};

#[cfg(feature = "json-reports")]
pub use observer::JsonSummarySink;
