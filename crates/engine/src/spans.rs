//! Structured span export: the `--trace-out` JSON-lines trace file.
//!
//! A trace is one header line plus one line per closed span:
//!
//! ```text
//! {"kind":"wasabi-trace","schema_version":1,"app":"HD"}
//! {"span":"phase","name":"plan","start_us":10,"end_us":90}
//! {"span":"run","test":"C.t","site":"0:3","exc":"E","k":1,...}
//! ```
//!
//! Spans are written only after they close, so a well-formed trace never
//! contains a dangling open span; `wasabi stats` re-reads the file and
//! [`validate_trace`] cross-checks run spans against a campaign journal
//! (same keys, same attempt counts) — the CI smoke stage runs both.

use crate::campaign::RunRecord;
use crate::metrics::RunTiming;
use std::fmt::Write as _;
use std::path::Path;
use wasabi_util::Json;

/// Trace file `kind` marker.
pub const TRACE_KIND: &str = "wasabi-trace";
/// Trace schema version; bump on any incompatible line-shape change.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// One closed phase span (compile/restore/profile/plan/run/report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name.
    pub name: String,
    /// Clock-relative start, microseconds.
    pub start_us: u64,
    /// Clock-relative end, microseconds.
    pub end_us: u64,
}

impl PhaseSpan {
    /// The span's duration in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One closed per-run span with its identity, outcome, and timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpan {
    /// Test method, rendered `Class.method`.
    pub test: String,
    /// Call site, rendered as its display form.
    pub site: String,
    /// Injected exception type.
    pub exception: String,
    /// Injection budget K.
    pub k: u32,
    /// Worker that executed the run (`jobs` = the supervisor, inline).
    pub worker: usize,
    /// Outcome kind (the journal's outcome vocabulary).
    pub outcome: String,
    /// Attempts consumed.
    pub attempts: u8,
    /// Faults injected.
    pub injections: u32,
    /// Interpreter steps.
    pub steps: u64,
    /// Oracle reports produced.
    pub reports: usize,
    /// Clock-relative start, microseconds.
    pub start_us: u64,
    /// Clock-relative end, microseconds.
    pub end_us: u64,
    /// Host-time breakdown for the run.
    pub timing: RunTiming,
}

impl RunSpan {
    /// The span's identity tuple — matches a journal record's `RunKey`
    /// rendering.
    pub fn key_string(&self) -> String {
        format!("{} @ {} {} K={}", self.test, self.site, self.exception, self.k)
    }
}

/// A parsed trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceFile {
    /// Application label from the header (may be empty).
    pub app: String,
    /// Phase spans, in file order.
    pub phases: Vec<PhaseSpan>,
    /// Run spans, in file order.
    pub runs: Vec<RunSpan>,
}

fn phase_to_json(span: &PhaseSpan) -> Json {
    Json::obj([
        ("span", Json::from("phase")),
        ("name", Json::from(span.name.as_str())),
        ("start_us", Json::from(span.start_us)),
        ("end_us", Json::from(span.end_us)),
    ])
}

fn run_to_json(span: &RunSpan) -> Json {
    Json::obj([
        ("span", Json::from("run")),
        ("test", Json::from(span.test.as_str())),
        ("site", Json::from(span.site.as_str())),
        ("exc", Json::from(span.exception.as_str())),
        ("k", Json::from(span.k)),
        ("worker", Json::from(span.worker)),
        ("outcome", Json::from(span.outcome.as_str())),
        ("attempts", Json::from(u32::from(span.attempts))),
        ("injections", Json::from(span.injections)),
        ("steps", Json::from(span.steps)),
        ("reports", Json::from(span.reports)),
        ("start_us", Json::from(span.start_us)),
        ("end_us", Json::from(span.end_us)),
        ("queue_wait_us", Json::from(span.timing.queue_wait_us)),
        ("run_wall_us", Json::from(span.timing.run_wall_us)),
        ("interp_us", Json::from(span.timing.interp_us)),
        ("judge_us", Json::from(span.timing.judge_us)),
        ("backoff_ms", Json::from(span.timing.backoff_ms)),
    ])
}

/// Renders a full trace document (header plus one line per span).
pub fn render_trace(app: &str, phases: &[PhaseSpan], runs: &[RunSpan]) -> String {
    let mut text = String::new();
    let header = Json::obj([
        ("kind", Json::from(TRACE_KIND)),
        ("schema_version", Json::from(TRACE_SCHEMA_VERSION)),
        ("app", Json::from(app)),
    ]);
    let _ = writeln!(text, "{header}");
    for span in phases {
        let _ = writeln!(text, "{}", phase_to_json(span));
    }
    for span in runs {
        let _ = writeln!(text, "{}", run_to_json(span));
    }
    text
}

/// Writes a trace file atomically enough for our purposes (single write).
pub fn write_trace(
    path: &Path,
    app: &str,
    phases: &[PhaseSpan],
    runs: &[RunSpan],
) -> Result<(), String> {
    std::fs::write(path, render_trace(app, phases, runs))
        .map_err(|err| format!("cannot write trace {}: {err}", path.display()))
}

fn u64_of(value: &Json, what: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("{what}: expected unsigned int"))
}

fn field<'v>(value: &'v Json, name: &str, what: &str) -> Result<&'v Json, String> {
    value.get(name).ok_or_else(|| format!("{what}: missing {name}"))
}

fn str_field(value: &Json, name: &str, what: &str) -> Result<String, String> {
    field(value, name, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: {name} must be a string"))
}

fn num_field(value: &Json, name: &str, what: &str) -> Result<u64, String> {
    u64_of(field(value, name, what)?, &format!("{what} {name}"))
}

fn phase_from_json(value: &Json, line: usize) -> Result<PhaseSpan, String> {
    let what = format!("trace line {line} (phase)");
    let span = PhaseSpan {
        name: str_field(value, "name", &what)?,
        start_us: num_field(value, "start_us", &what)?,
        end_us: num_field(value, "end_us", &what)?,
    };
    if span.end_us < span.start_us {
        return Err(format!("{what}: span ends before it starts"));
    }
    Ok(span)
}

fn run_from_json(value: &Json, line: usize) -> Result<RunSpan, String> {
    let what = format!("trace line {line} (run)");
    let narrow_u32 = |name: &str| -> Result<u32, String> {
        let n = num_field(value, name, &what)?;
        u32::try_from(n).map_err(|_| format!("{what}: {name} {n} out of range"))
    };
    let attempts_raw = num_field(value, "attempts", &what)?;
    let span = RunSpan {
        test: str_field(value, "test", &what)?,
        site: str_field(value, "site", &what)?,
        exception: str_field(value, "exc", &what)?,
        k: narrow_u32("k")?,
        worker: num_field(value, "worker", &what)? as usize,
        outcome: str_field(value, "outcome", &what)?,
        attempts: u8::try_from(attempts_raw)
            .map_err(|_| format!("{what}: attempts {attempts_raw} out of range"))?,
        injections: narrow_u32("injections")?,
        steps: num_field(value, "steps", &what)?,
        reports: num_field(value, "reports", &what)? as usize,
        start_us: num_field(value, "start_us", &what)?,
        end_us: num_field(value, "end_us", &what)?,
        timing: RunTiming {
            queue_wait_us: num_field(value, "queue_wait_us", &what)?,
            run_wall_us: num_field(value, "run_wall_us", &what)?,
            interp_us: num_field(value, "interp_us", &what)?,
            judge_us: num_field(value, "judge_us", &what)?,
            backoff_ms: num_field(value, "backoff_ms", &what)?,
        },
    };
    if span.end_us < span.start_us {
        return Err(format!("{what}: span ends before it starts"));
    }
    Ok(span)
}

/// Parses a trace document from text. Strict: a bad header, an unknown
/// span kind, or a malformed span line is a hard error (traces are
/// written in one piece; there is no torn tail to tolerate).
pub fn parse_trace(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or("trace: empty file")?;
    let header = Json::parse(header_line).map_err(|err| format!("trace header: {err}"))?;
    match header.get("kind").and_then(Json::as_str) {
        Some(TRACE_KIND) => {}
        _ => return Err(format!("trace header: missing kind `{TRACE_KIND}`")),
    }
    match header.get("schema_version").and_then(Json::as_u64) {
        Some(TRACE_SCHEMA_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "trace header: schema_version {other}, expected {TRACE_SCHEMA_VERSION}"
            ))
        }
        None => return Err("trace header: missing schema_version".to_string()),
    }
    let mut trace = TraceFile {
        app: header
            .get("app")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        ..TraceFile::default()
    };
    for (index, line) in lines {
        let value =
            Json::parse(line).map_err(|err| format!("trace line {}: {err}", index + 1))?;
        match value.get("span").and_then(Json::as_str) {
            Some("phase") => trace.phases.push(phase_from_json(&value, index + 1)?),
            Some("run") => trace.runs.push(run_from_json(&value, index + 1)?),
            Some(other) => return Err(format!("trace line {}: unknown span `{other}`", index + 1)),
            None => return Err(format!("trace line {}: missing span kind", index + 1)),
        }
    }
    Ok(trace)
}

/// Reads and parses a trace file.
pub fn load_trace(path: &Path) -> Result<TraceFile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read trace {}: {err}", path.display()))?;
    parse_trace(&text)
}

/// Validates a trace's internal consistency and, when a journal's records
/// are given, cross-checks every run span against its record: same key
/// set, same attempt counts, same injection counts. Returns a list of
/// problems (empty = valid).
pub fn validate_trace(trace: &TraceFile, journal: Option<&[RunRecord]>) -> Vec<String> {
    let mut problems = Vec::new();
    // Parsing already rejects end < start; here we check cross-span facts.
    let mut seen = std::collections::BTreeMap::new();
    for span in &trace.runs {
        if seen.insert(span.key_string(), span).is_some() {
            problems.push(format!("duplicate run span for {}", span.key_string()));
        }
        let inner = span
            .timing
            .interp_us
            .saturating_add(span.timing.judge_us);
        if span.timing.run_wall_us < inner && span.timing.run_wall_us > 0 {
            // Tolerate zero (sub-microsecond runs round down); anything
            // else claiming interp+judge exceeded the whole run is bogus.
            problems.push(format!(
                "{}: interp+judge {}us exceeds run wall {}us",
                span.key_string(),
                inner,
                span.timing.run_wall_us
            ));
        }
    }
    if let Some(records) = journal {
        for record in records {
            let key = format!(
                "{} @ {} {} K={}",
                record.key.test, record.key.site, record.key.exception, record.key.k
            );
            match seen.remove(&key) {
                None => problems.push(format!("journal record has no run span: {key}")),
                Some(span) => {
                    if span.attempts != record.attempts {
                        problems.push(format!(
                            "{key}: span says {} attempt(s), journal says {}",
                            span.attempts, record.attempts
                        ));
                    }
                    if span.injections != record.injections {
                        problems.push(format!(
                            "{key}: span says {} injection(s), journal says {}",
                            span.injections, record.injections
                        ));
                    }
                }
            }
        }
        for leftover in seen.keys() {
            problems.push(format!("run span has no journal record: {leftover}"));
        }
    }
    problems
}

fn us_to_ms_str(us: u64) -> String {
    format!("{}.{:03}", us / 1000, us % 1000)
}

/// Renders the `wasabi stats` table for one or more traces: a per-phase
/// wall-time breakdown per app, then run aggregates.
pub fn render_stats(traces: &[TraceFile]) -> String {
    let mut out = String::new();
    for trace in traces {
        let app = if trace.app.is_empty() { "?" } else { &trace.app };
        let total: u64 = trace.phases.iter().map(PhaseSpan::wall_us).sum();
        let _ = writeln!(out, "app {app}: {} phase(s), {} run span(s)", trace.phases.len(), trace.runs.len());
        let _ = writeln!(out, "  {:<10} {:>12} {:>7}", "phase", "wall_ms", "share");
        for span in &trace.phases {
            let share = if total == 0 {
                0.0
            } else {
                span.wall_us() as f64 * 100.0 / total as f64
            };
            let _ = writeln!(
                out,
                "  {:<10} {:>12} {:>6.1}%",
                span.name,
                us_to_ms_str(span.wall_us()),
                share
            );
        }
        let _ = writeln!(out, "  {:<10} {:>12}", "total", us_to_ms_str(total));
        if !trace.runs.is_empty() {
            let runs = trace.runs.len() as u64;
            let sum = |f: fn(&RunSpan) -> u64| trace.runs.iter().map(f).sum::<u64>();
            let attempts: u64 = trace.runs.iter().map(|r| u64::from(r.attempts)).sum();
            let injections: u64 = trace.runs.iter().map(|r| u64::from(r.injections)).sum();
            let _ = writeln!(
                out,
                "  runs: {runs}, attempts: {attempts}, injections: {injections}, steps: {}",
                sum(|r| r.steps)
            );
            let _ = writeln!(
                out,
                "  per-run mean: interp {} ms, judge {} ms, queue wait {} ms, backoff {} ms",
                us_to_ms_str(sum(|r| r.timing.interp_us) / runs),
                us_to_ms_str(sum(|r| r.timing.judge_us) / runs),
                us_to_ms_str(sum(|r| r.timing.queue_wait_us) / runs),
                sum(|r| r.timing.backoff_ms) / runs
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &str, start_us: u64, end_us: u64) -> PhaseSpan {
        PhaseSpan {
            name: name.to_string(),
            start_us,
            end_us,
        }
    }

    fn run_span(test: &str, attempts: u8) -> RunSpan {
        RunSpan {
            test: test.to_string(),
            site: "f0:c3".to_string(),
            exception: "E".to_string(),
            k: 1,
            worker: 0,
            outcome: "passed".to_string(),
            attempts,
            injections: 1,
            steps: 42,
            reports: 0,
            start_us: 10,
            end_us: 60,
            timing: RunTiming {
                queue_wait_us: 5,
                run_wall_us: 50,
                interp_us: 30,
                judge_us: 4,
                backoff_ms: 0,
            },
        }
    }

    #[test]
    fn trace_round_trips_through_text() {
        let phases = vec![phase("plan", 0, 100), phase("run", 100, 900)];
        let runs = vec![run_span("C.t", 1), run_span("C.u", 2)];
        let text = render_trace("HD", &phases, &runs);
        let back = parse_trace(&text).expect("parse");
        assert_eq!(back.app, "HD");
        assert_eq!(back.phases, phases);
        assert_eq!(back.runs, runs);
        assert!(validate_trace(&back, None).is_empty());
    }

    #[test]
    fn parse_rejects_bad_headers_and_spans() {
        assert!(parse_trace("").is_err());
        assert!(parse_trace("{\"kind\":\"other\"}\n").is_err());
        let wrong_version =
            format!("{{\"kind\":\"{TRACE_KIND}\",\"schema_version\":99,\"app\":\"x\"}}\n");
        assert!(parse_trace(&wrong_version).is_err());
        let header =
            format!("{{\"kind\":\"{TRACE_KIND}\",\"schema_version\":{TRACE_SCHEMA_VERSION},\"app\":\"x\"}}\n");
        // Unknown span kind.
        assert!(parse_trace(&format!("{header}{{\"span\":\"nope\"}}\n")).is_err());
        // Phase ending before it starts.
        assert!(parse_trace(&format!(
            "{header}{{\"span\":\"phase\",\"name\":\"p\",\"start_us\":9,\"end_us\":3}}\n"
        ))
        .is_err());
    }

    #[test]
    fn validate_cross_checks_against_journal_records() {
        use crate::campaign::{RunOutcome, RunRecord};
        use wasabi_lang::ast::CallId;
        use wasabi_lang::project::{CallSite, FileId, MethodId};
        use wasabi_planner::plan::RunKey;
        use wasabi_vm::trace::TestOutcome;

        let span = run_span("C.t", 2);
        let record = RunRecord {
            key: RunKey {
                test: MethodId::new("C", "t"),
                site: CallSite {
                    file: FileId(0),
                    call: CallId(3),
                },
                exception: "E".to_string(),
                k: 1,
            },
            outcome: RunOutcome::Completed(TestOutcome::Passed),
            reports: Vec::new(),
            rethrow_filtered: false,
            not_a_trigger: false,
            virtual_ms: 0,
            steps: 42,
            injections: 1,
            attempts: 2,
            quarantined: false,
        };
        // Site rendering must agree with the span's; check the fixture.
        assert_eq!(record.key.site.to_string(), span.site);
        let trace = TraceFile {
            app: "t".into(),
            phases: Vec::new(),
            runs: vec![span.clone()],
        };
        assert!(validate_trace(&trace, Some(std::slice::from_ref(&record))).is_empty());

        // Attempt mismatch is caught.
        let mut bad = record.clone();
        bad.attempts = 1;
        let problems = validate_trace(&trace, Some(std::slice::from_ref(&bad)));
        assert!(problems.iter().any(|p| p.contains("attempt")), "{problems:?}");

        // Missing span / missing record are caught.
        let empty = TraceFile::default();
        let problems = validate_trace(&empty, Some(std::slice::from_ref(&record)));
        assert!(problems.iter().any(|p| p.contains("no run span")));
        let problems = validate_trace(&trace, Some(&[]));
        assert!(problems.iter().any(|p| p.contains("no journal record")));
    }

    #[test]
    fn stats_rendering_mentions_every_phase() {
        let trace = TraceFile {
            app: "HD".into(),
            phases: vec![phase("plan", 0, 2000), phase("run", 2000, 10_000)],
            runs: vec![run_span("C.t", 1)],
        };
        let table = render_stats(std::slice::from_ref(&trace));
        assert!(table.contains("app HD"));
        assert!(table.contains("plan"));
        assert!(table.contains("run"));
        assert!(table.contains("total"));
        assert!(table.contains("runs: 1"));
    }
}
