//! Campaign execution: a fixed-size worker pool over a sharded run queue,
//! with panic containment, bounded retries, worker supervision,
//! checkpoint/resume, and a deterministic merge of results.
//!
//! # Determinism contract
//!
//! The engine guarantees that [`CampaignResult::records`] is a pure
//! function of `(project, runs, options)` — independent of `jobs`, of how
//! the OS schedules the workers, of lost worker threads, and of whether
//! the campaign ran in one piece or was resumed from a journal:
//!
//! - runs execute in **isolated interpreters**: each worker constructs its
//!   own `Interp` (own virtual clock, config store, trace buffer) and its
//!   own `InjectionHandler` per attempt, so no state crosses runs or
//!   attempts;
//! - results land in **key-addressed slots**: the engine orders runs by
//!   [`RunKey`] up front and each worker writes its record into the slot
//!   for that key, so the merged vector has the same order no matter which
//!   worker finished first;
//! - **timed-out runs are normalized**: a run aborted by the wall-clock
//!   budget records a bare [`RunOutcome::TimedOut`] with zeroed
//!   nondeterministic fields (virtual time, steps, injections) and is never
//!   judged by the oracles, because *where* the abort landed depends on
//!   host speed;
//! - **panicking runs are contained**: each attempt executes under
//!   [`std::panic::catch_unwind`], and a panic becomes a
//!   [`RunOutcome::Crashed`] record with zeroed measurements instead of
//!   poisoning the worker pool — nothing from the broken attempt reaches
//!   the report because every attempt rebuilds its interpreter from
//!   scratch (per-run isolation is what makes the unwind safe);
//! - **retries are seeded**: the [`RetryPolicy`] re-executes
//!   `Crashed`/`TimedOut` runs with exponential backoff whose jitter is
//!   drawn from a SplitMix64 stream keyed on `(jitter_seed, RunKey,
//!   attempt)`, so the attempt count and final outcome of every run are
//!   reproducible; runs that exhaust the policy are *quarantined*
//!   ([`RunRecord::quarantined`]), never dropped;
//! - **lost workers degrade gracefully**: a worker thread that dies is
//!   detected by the coordinator, its in-flight run is re-queued for the
//!   survivors, and any run still unexecuted when the pool drains is run
//!   inline by the coordinator — the campaign always reports every
//!   planned key exactly once.
//!
//! Scheduling-dependent observations (per-worker run counts, wall time,
//! workers lost, resumed-run count) are confined to
//! [`CampaignStats::worker_runs`] / [`CampaignStats::wall_ms`] /
//! [`CampaignStats::workers_lost`] / [`CampaignStats::resumed`] /
//! [`CampaignStats::supervisor_runs`] and the observer event stream;
//! nothing in `records` derives from them.

use crate::journal::Journal;
use crate::metrics::{CampaignMetrics, RunTiming, WorkerTimings};
use crate::observer::{EngineEvent, EngineObserver};
use crate::queue::ShardedQueue;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Once};
use std::thread;
use std::time::{Duration, Instant};
use wasabi_inject::InjectionHandler;
use wasabi_lang::project::Project;
use wasabi_oracles::judge::{judge_run, judge_run_timed, OracleConfig, OracleReport};
use wasabi_planner::plan::{InjectionRun, RunKey};
use wasabi_util::rng::{fnv1a64, Rng};
use wasabi_util::{saturating_ms, saturating_us};
use wasabi_vm::runner::{run_test, RunOptions};
use wasabi_vm::trace::TestOutcome;

/// A stable 64-bit digest of a run key, used to seed per-run deterministic
/// decisions (backoff jitter, chaos draws) independently of scheduling.
pub(crate) fn key_hash(key: &RunKey, salt: u64) -> u64 {
    fnv1a64([
        key.test.class.as_bytes(),
        b"\0",
        key.test.name.as_bytes(),
        b"\0",
        key.site.file.0.to_le_bytes().as_slice(),
        key.site.call.0.to_le_bytes().as_slice(),
        key.exception.as_bytes(),
        b"\0",
        key.k.to_le_bytes().as_slice(),
        salt.to_le_bytes().as_slice(),
    ])
}

/// Bounded, jittered, capped retry policy for transient run failures
/// (`Crashed` and `TimedOut` outcomes) — the paper's §2 *HOW* best
/// practice (exponential backoff with a cap) applied to the engine itself.
///
/// Jitter is drawn from [`wasabi_util::rng::Rng`] seeded on
/// `(jitter_seed, RunKey, attempt)`, so the delay sequence of a run — and
/// therefore a rerun of the whole campaign — is deterministic regardless
/// of which worker executes it.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per run, including the first (minimum 1;
    /// 1 disables retries).
    pub max_attempts: u8,
    /// Backoff before the second attempt; doubles (times `multiplier`)
    /// per further attempt. Zero disables sleeping entirely.
    pub base_delay: Duration,
    /// Exponential growth factor between attempts.
    pub multiplier: f64,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            multiplier: 2.0,
            cap: Duration::from_millis(100),
            jitter_seed: 0x5741_5341_4249, // "WASABI"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt per run).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The default policy with a different attempt bound.
    pub fn with_max_attempts(max_attempts: u8) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The backoff delay after `failed_attempt` (1-based) failed:
    /// `base_delay * multiplier^(failed_attempt-1)`, capped, with equal
    /// jitter (uniform in `[d/2, d)`) drawn deterministically from the
    /// run key.
    pub fn backoff(&self, key: &RunKey, failed_attempt: u8) -> Duration {
        // Only the jitter-seed derivation is ours (keyed on the run so the
        // schedule is scheduling-independent); the delay math is the
        // workspace-shared formula.
        wasabi_util::equal_jitter_backoff(
            self.base_delay,
            self.multiplier,
            self.cap,
            u32::from(failed_attempt),
            key_hash(key, self.jitter_seed ^ u64::from(failed_attempt)),
        )
    }
}

/// Deterministic fault injection into the engine itself — the chaos
/// self-test hook behind the resilience test suite and the `cargo xtask
/// smoke` CI stage.
///
/// Every decision is a pure function of `(seed, RunKey, attempt)`, so a
/// chaos campaign produces byte-identical records for any worker count —
/// which is exactly what the self-tests assert. Production campaigns
/// leave this `None`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability that an attempt panics mid-run.
    pub panic_rate: f64,
    /// Maximum extra pre-run delay, in milliseconds (uniformly drawn;
    /// shakes worker scheduling without touching results). Zero disables.
    pub max_delay_ms: u64,
    /// Seed for the decision stream.
    pub seed: u64,
    /// If set, this worker index dies (thread exits without completing
    /// its current run) on its first pop — exercises the supervisor's
    /// requeue-and-degrade path.
    pub kill_worker: Option<usize>,
    /// If set, the whole *process* exits (code 86) once this many records
    /// have been appended to the journal — the crash point the shard
    /// supervisor's chaos CI stage uses to kill a child mid-flight at a
    /// deterministic, journal-aligned spot. Count-based, not time-based,
    /// so recovery is byte-reproducible.
    pub exit_after_appends: Option<u64>,
}

impl ChaosConfig {
    /// Chaos that only injects panics at `panic_rate`, seeded.
    pub fn panics(panic_rate: f64, seed: u64) -> Self {
        ChaosConfig {
            panic_rate,
            max_delay_ms: 0,
            seed,
            kill_worker: None,
            exit_after_appends: None,
        }
    }

    fn draw(&self, key: &RunKey, attempt: u8) -> ChaosDraw {
        let mut rng = Rng::new(key_hash(key, self.seed ^ (u64::from(attempt) << 32)));
        ChaosDraw {
            panic: rng.chance(self.panic_rate),
            delay_ms: if self.max_delay_ms == 0 {
                0
            } else {
                rng.below(self.max_delay_ms + 1)
            },
        }
    }
}

struct ChaosDraw {
    panic: bool,
    delay_ms: u64,
}

/// Options for one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker count. `1` executes serially through the same code path as
    /// any other value (one worker thread, one shard).
    pub jobs: usize,
    /// Per-run interpreter options (limits, pinned configs).
    pub run_options: RunOptions,
    /// Oracle thresholds for judging completed runs.
    pub oracle: OracleConfig,
    /// Optional wall-clock budget per run. A run that exceeds it is
    /// cancelled cooperatively (the interpreter checks the deadline every
    /// few thousand steps) and recorded as [`RunOutcome::TimedOut`];
    /// the campaign itself never hangs on one stuck run.
    pub run_budget: Option<Duration>,
    /// Retry policy for transient failures (`Crashed`/`TimedOut`).
    pub retry: RetryPolicy,
    /// Chaos self-test hook; `None` in production campaigns.
    pub chaos: Option<ChaosConfig>,
    /// Durable journal path: every finished record is appended as one
    /// JSON line, with fsync'd epoch markers, so an interrupted campaign
    /// can resume without re-running completed work.
    pub journal: Option<PathBuf>,
    /// Records recovered from a previous journal (see
    /// [`crate::journal::load`]). Runs whose key appears here are not
    /// re-executed; their records merge into the result in key order, so
    /// a resumed campaign's report is byte-identical to an uninterrupted
    /// one.
    pub resume: Vec<RunRecord>,
    /// Whether to capture per-run host timings ([`RunTiming`]): the
    /// `Instant` reads bracketing each run, the timed oracle judgement,
    /// and the queue-wait stamp. On by default; campaigns that do not
    /// record traces (`wasabi bench`, plain `wasabi test`) turn it off so
    /// the hot loop carries no clock reads beyond the interpreter's own.
    /// Never affects [`CampaignResult::records`] — timings live only in
    /// the metrics/observer layer.
    pub capture_timing: bool,
    /// Optional execution-order hint: runs whose key maps to a larger
    /// value are dispatched to workers first (ties keep key order; keys
    /// absent from the map rank lowest). Pure scheduling — records still
    /// land in key-addressed slots and merge in key order, so the result
    /// is byte-identical with or without a priority map. The adaptive
    /// planner uses this to front-load injection sites with the most
    /// uncovered catch-paths.
    pub schedule_priority: Option<BTreeMap<RunKey, u64>>,
    /// Bounded-memory streaming: finished records are appended to the
    /// journal and **dropped from RAM** instead of accumulating in
    /// [`CampaignResult::records`] (which comes back empty); the caller's
    /// report phase re-reads the journal. Requires `journal`; if the
    /// journal cannot be opened (or dies to an I/O error mid-campaign),
    /// records are kept in memory after all — losing the memory bound, not
    /// the data. Stats are accumulated incrementally either way, and
    /// [`CampaignStats::peak_resident_records`] reports the high-water
    /// mark this option exists to bound.
    pub stream: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            jobs: 1,
            run_options: RunOptions::default(),
            oracle: OracleConfig::default(),
            run_budget: None,
            retry: RetryPolicy::default(),
            chaos: None,
            journal: None,
            resume: Vec::new(),
            capture_timing: true,
            schedule_priority: None,
            stream: false,
        }
    }
}

/// How one campaign run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The interpreter ran the test to an outcome within budget.
    Completed(TestOutcome),
    /// The wall-clock budget expired; the partial run was discarded.
    TimedOut,
    /// The attempt panicked; the panic was contained and the partial run
    /// discarded (all measurements zeroed).
    Crashed {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl RunOutcome {
    /// Whether this outcome is a transient engine-level failure that the
    /// retry policy may re-execute.
    pub fn is_transient_failure(&self) -> bool {
        matches!(self, RunOutcome::TimedOut | RunOutcome::Crashed { .. })
    }
}

/// The merged result of one injection run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's identity; records are sorted by this key.
    pub key: RunKey,
    /// How the run ended (final attempt).
    pub outcome: RunOutcome,
    /// Oracle findings (empty for timed-out and crashed runs, which are
    /// not judged).
    pub reports: Vec<OracleReport>,
    /// The run crashed by re-throwing the injected exception (correct
    /// give-up behaviour, filtered by the different-exception oracle).
    pub rethrow_filtered: bool,
    /// The injected exception escaped without any retry (the location was
    /// not actually a retry trigger).
    pub not_a_trigger: bool,
    /// Virtual milliseconds the run consumed (0 if timed out or crashed).
    pub virtual_ms: u64,
    /// Interpreter steps the run consumed (0 if timed out or crashed).
    pub steps: u64,
    /// Faults injected during the run (0 if timed out or crashed).
    pub injections: u32,
    /// Attempts executed (1 = no retries were needed).
    pub attempts: u8,
    /// The run still ended in a transient failure after exhausting the
    /// retry policy; it is reported here and in the report's quarantine
    /// section instead of aborting the campaign.
    pub quarantined: bool,
}

/// Aggregate campaign statistics.
///
/// All fields except `worker_runs`, `supervisor_runs`, `workers_lost`,
/// `resumed`, and `wall_ms` are deterministic given the same runs and
/// options.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Total runs reported (executed + resumed).
    pub runs_total: usize,
    /// Runs that completed within budget.
    pub completed: usize,
    /// Runs cancelled by the wall-clock budget.
    pub timed_out: usize,
    /// Completed runs that did not pass.
    pub failed: usize,
    /// Runs whose final attempt panicked (contained as
    /// [`RunOutcome::Crashed`]).
    pub crashed: usize,
    /// Extra attempts spent re-executing transient failures.
    pub retried: usize,
    /// Runs quarantined after exhausting the retry policy.
    pub quarantined: usize,
    /// Runs filtered as correct give-up rethrows.
    pub rethrow_filtered: usize,
    /// Runs evidencing a misidentified trigger.
    pub not_a_trigger: usize,
    /// Total oracle reports across runs.
    pub reports: usize,
    /// Total faults injected.
    pub injections: u64,
    /// Total virtual milliseconds across completed runs.
    pub virtual_ms: u64,
    /// Total interpreter steps across completed runs (final attempts
    /// only; timed-out and crashed runs record zero).
    pub steps: u64,
    /// Worker count used.
    pub jobs: usize,
    /// Runs executed per worker (scheduling-dependent; utilization only).
    pub worker_runs: Vec<usize>,
    /// Runs the coordinator executed inline after the pool drained with
    /// work left over (only non-zero when workers were lost).
    pub supervisor_runs: usize,
    /// Worker threads that died mid-campaign (scheduling-dependent).
    pub workers_lost: usize,
    /// Runs recovered from the resume journal instead of executed.
    pub resumed: usize,
    /// Campaign wall time in milliseconds (scheduling-dependent).
    pub wall_ms: u64,
    /// High-water mark of run records resident in the coordinator's
    /// memory. With [`CampaignOptions::stream`] this stays O(1) — each
    /// record is spilled to the journal and dropped as it lands — while a
    /// non-streaming campaign ends holding every record. Observational,
    /// like `wall_ms`: nothing in `records` derives from it.
    pub peak_resident_records: usize,
}

/// A finished campaign: records in [`RunKey`] order plus statistics.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One record per input run, sorted by key.
    pub records: Vec<RunRecord>,
    /// Aggregate statistics.
    pub stats: CampaignStats,
    /// Per-run distributions (deterministic half + host-timing half; see
    /// [`CampaignMetrics`]).
    pub metrics: CampaignMetrics,
}

impl CampaignResult {
    /// The quarantined subset of [`CampaignResult::records`], in key
    /// order — runs that still ended in a transient failure after
    /// exhausting the retry policy.
    pub fn quarantine(&self) -> impl Iterator<Item = &RunRecord> {
        self.records.iter().filter(|r| r.quarantined)
    }
}

/// What a worker sends back to the coordinator.
enum Message {
    Started {
        slot: usize,
        worker: usize,
        key: RunKey,
    },
    Retried {
        slot: usize,
        worker: usize,
        key: RunKey,
        /// The attempt (1-based) that just failed.
        attempt: u8,
        delay_ms: u64,
    },
    Finished {
        slot: usize,
        worker: usize,
        record: RunRecord,
        timing: RunTiming,
    },
    /// The worker thread is dead (panic outside the per-run containment,
    /// or a chaos kill). Its in-flight run, if any, must be re-queued.
    WorkerDied { worker: usize },
}

thread_local! {
    /// Set while a run attempt executes under `catch_unwind`, so the
    /// process-wide panic hook knows the panic is contained and skips the
    /// default stderr backtrace (a 10%-panic-rate chaos campaign would
    /// otherwise spend its wall clock printing traces).
    static PANIC_CONTAINED: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses output for
/// panics the engine is about to contain and chains to the previous hook
/// for everything else.
fn install_contained_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if PANIC_CONTAINED.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

/// RAII flag for [`PANIC_CONTAINED`]; unsets on drop (including unwind).
struct ContainGuard;

impl ContainGuard {
    fn new() -> Self {
        PANIC_CONTAINED.with(|c| c.set(true));
        ContainGuard
    }
}

impl Drop for ContainGuard {
    fn drop(&mut self) {
        PANIC_CONTAINED.with(|c| c.set(false));
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes `runs` on `options.jobs` workers and merges the results
/// deterministically. See the module docs for the determinism contract.
pub fn run_campaign(
    project: &Project,
    runs: &[InjectionRun],
    options: &CampaignOptions,
    observer: &mut dyn EngineObserver,
) -> CampaignResult {
    let started_at = Instant::now();
    install_contained_panic_hook();

    // The engine re-derives key order itself rather than trusting the
    // caller to have sorted: slot i of the output always holds the i-th
    // run in key order.
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by_key(|&i| runs[i].key());

    let mut slots: Vec<Option<RunRecord>> = Vec::new();
    slots.resize_with(runs.len(), || None);
    // Completion is tracked separately from the slot payload: a streaming
    // campaign spills each record to the journal and drops it, leaving the
    // slot empty but done.
    let mut done: Vec<bool> = vec![false; runs.len()];
    let mut det_stats = CampaignStats::default();
    let mut resident = 0usize;
    let mut peak_resident = 0usize;

    // Resume: pre-fill slots from recovered records (first record wins on
    // duplicate journal keys; records are deterministic, so duplicates
    // are identical anyway). Keys outside the plan are ignored. In
    // streaming mode the record's stats are absorbed and the record
    // dropped — the journal it was recovered from still holds it for the
    // caller's report phase.
    let mut resumed = 0usize;
    if !options.resume.is_empty() {
        let mut by_key: BTreeMap<&RunKey, &RunRecord> = BTreeMap::new();
        for record in &options.resume {
            by_key.entry(&record.key).or_insert(record);
        }
        for (slot, &run_index) in order.iter().enumerate() {
            if let Some(record) = by_key.get(&runs[run_index].key()) {
                absorb_record_stats(&mut det_stats, record);
                done[slot] = true;
                resumed += 1;
                if !options.stream {
                    slots[slot] = Some((*record).clone());
                    resident += 1;
                    peak_resident = peak_resident.max(resident);
                }
            }
        }
    }
    let mut pending: Vec<usize> = (0..slots.len()).filter(|&s| !done[s]).collect();
    // Priority is a dispatch-order hint only: slots are key-addressed, so
    // reordering `pending` cannot change the merged records.
    if let Some(priority) = options.schedule_priority.as_ref() {
        pending.sort_by_cached_key(|&slot| {
            std::cmp::Reverse(priority.get(&runs[order[slot]].key()).copied().unwrap_or(0))
        });
    }

    let jobs = options.jobs.max(1).min(pending.len().max(1));
    observer.on_event(&EngineEvent::Started {
        total_runs: runs.len(),
        jobs,
        resumed,
    });

    let mut journal = options.journal.as_deref().and_then(|path| {
        Journal::open(path)
            .map_err(|err| {
                eprintln!(
                    "[engine] cannot open journal {}: {err}; journaling disabled",
                    path.display()
                );
            })
            .ok()
    });

    let chaos_exit_after = options.chaos.as_ref().and_then(|c| c.exit_after_appends);
    let mut worker_runs = vec![0usize; jobs];
    let mut workers_lost = 0usize;
    let mut supervisor_runs = 0usize;
    // One timing collector per worker, plus one (the last) for inline
    // supervisor runs; merged into the metrics in index order at the end.
    let mut worker_timings = vec![WorkerTimings::default(); jobs + 1];

    if !pending.is_empty() {
        let queue = ShardedQueue::prefilled(pending, jobs);
        let (sender, receiver) = mpsc::channel::<Message>();
        thread::scope(|scope| {
            let (queue, order) = (&queue, &order);
            for worker in 0..jobs {
                let sender = sender.clone();
                scope.spawn(move || {
                    // Worker supervision: the loop body contains per-run
                    // panics itself, so an unwind reaching this frame means
                    // the engine (not a run) is broken — report the death
                    // instead of silently shrinking the pool.
                    let exit = panic::catch_unwind(AssertUnwindSafe(|| {
                        worker_loop(worker, queue, order, project, runs, options, &sender, started_at)
                    }));
                    if !matches!(exit, Ok(WorkerExit::Drained)) {
                        let _ = sender.send(Message::WorkerDied { worker });
                    }
                });
            }
            drop(sender);
            // Replay worker messages into the observer on this thread, so
            // observers need no locking; the receive loop ends when every
            // worker has dropped its sender.
            let mut in_flight: Vec<Option<(usize, RunKey)>> = vec![None; jobs];
            for message in receiver {
                match message {
                    Message::Started { slot, worker, key } => {
                        observer.on_event(&EngineEvent::RunStarted {
                            index: slot,
                            key: &key,
                            worker,
                        });
                        in_flight[worker] = Some((slot, key));
                    }
                    Message::Retried {
                        slot,
                        worker,
                        key,
                        attempt,
                        delay_ms,
                    } => {
                        observer.on_event(&EngineEvent::RunRetried {
                            index: slot,
                            key: &key,
                            worker,
                            attempt,
                            delay_ms,
                        });
                    }
                    Message::Finished {
                        slot,
                        worker,
                        record,
                        timing,
                    } => {
                        in_flight[worker] = None;
                        worker_runs[worker] += 1;
                        worker_timings[worker].record(&timing);
                        complete_slot(
                            slot,
                            worker,
                            record,
                            &timing,
                            observer,
                            &mut journal,
                            &mut CompletionSink {
                                slots: &mut slots,
                                done: &mut done,
                                det_stats: &mut det_stats,
                                resident: &mut resident,
                                peak_resident: &mut peak_resident,
                                stream: options.stream,
                                chaos_exit: chaos_exit_after,
                            },
                        );
                    }
                    Message::WorkerDied { worker } => {
                        workers_lost += 1;
                        let lost = in_flight[worker].take();
                        if let Some((slot, _)) = lost {
                            if !done[slot] {
                                // Hand the orphaned run to the survivors;
                                // if they have already drained and exited,
                                // the inline fallback below picks it up.
                                queue.push(worker.wrapping_add(1), slot);
                            }
                        }
                        observer.on_event(&EngineEvent::WorkerLost {
                            worker,
                            requeued: lost.as_ref().map(|(_, key)| key),
                        });
                    }
                }
            }
        });
    }

    // Graceful degradation, last line of defence: anything the pool did
    // not finish (every worker died, or a re-queued run raced the
    // survivors' exit) is executed inline, so the campaign always
    // completes with a record for every planned key.
    for slot in 0..slots.len() {
        if done[slot] {
            continue;
        }
        let run = &runs[order[slot]];
        let key = run.key();
        observer.on_event(&EngineEvent::RunStarted {
            index: slot,
            key: &key,
            worker: jobs,
        });
        let queue_wait_us = if options.capture_timing {
            saturating_us(started_at.elapsed())
        } else {
            0
        };
        let (record, mut timing) = {
            let observer_cell = std::cell::RefCell::new(&mut *observer);
            let mut notify = |attempt: u8, delay: Duration| {
                observer_cell.borrow_mut().on_event(&EngineEvent::RunRetried {
                    index: slot,
                    key: &key,
                    worker: jobs,
                    attempt,
                    delay_ms: saturating_ms(delay),
                });
            };
            execute_run(project, run, options, &mut notify)
        };
        timing.queue_wait_us = queue_wait_us;
        supervisor_runs += 1;
        worker_timings[jobs].record(&timing);
        complete_slot(
            slot,
            jobs,
            record,
            &timing,
            observer,
            &mut journal,
            &mut CompletionSink {
                slots: &mut slots,
                done: &mut done,
                det_stats: &mut det_stats,
                resident: &mut resident,
                peak_resident: &mut peak_resident,
                stream: options.stream,
                chaos_exit: chaos_exit_after,
            },
        );
    }

    if let Some(journal) = journal.as_mut() {
        if let Some(completed) = journal.finish() {
            observer.on_event(&EngineEvent::CheckpointWritten { completed });
        }
    }

    // Non-streaming campaigns hold every record; streaming ones only keep
    // what could not be spilled (journal missing or dead), normally none.
    let records: Vec<RunRecord> = if options.stream {
        slots.into_iter().flatten().collect()
    } else {
        slots
            .into_iter()
            .map(|slot| slot.expect("every planned run produces a record"))
            .collect()
    };

    let mut stats = det_stats;
    stats.runs_total = runs.len();
    stats.jobs = jobs;
    stats.worker_runs = worker_runs;
    stats.supervisor_runs = supervisor_runs;
    stats.workers_lost = workers_lost;
    stats.resumed = resumed;
    stats.wall_ms = saturating_ms(started_at.elapsed());
    stats.peak_resident_records = peak_resident;
    let mut metrics = CampaignMetrics::from_records(&records, &options.retry);
    metrics.absorb_worker_timings(&worker_timings);
    observer.on_event(&EngineEvent::Finished {
        stats: &stats,
        metrics: &metrics,
    });
    CampaignResult {
        records,
        stats,
        metrics,
    }
}

enum WorkerExit {
    /// The queue is drained; normal exit.
    Drained,
    /// Chaos killed this worker (simulates a thread death the supervisor
    /// must absorb).
    Killed,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: usize,
    queue: &ShardedQueue<usize>,
    order: &[usize],
    project: &Project,
    runs: &[InjectionRun],
    options: &CampaignOptions,
    sender: &mpsc::Sender<Message>,
    campaign_started: Instant,
) -> WorkerExit {
    while let Some(slot) = queue.pop(worker) {
        let queue_wait_us = if options.capture_timing {
            saturating_us(campaign_started.elapsed())
        } else {
            0
        };
        let run = &runs[order[slot]];
        let key = run.key();
        if sender
            .send(Message::Started {
                slot,
                worker,
                key: key.clone(),
            })
            .is_err()
        {
            return WorkerExit::Drained;
        }
        if options
            .chaos
            .as_ref()
            .is_some_and(|chaos| chaos.kill_worker == Some(worker))
        {
            return WorkerExit::Killed;
        }
        let mut notify = |attempt: u8, delay: Duration| {
            let _ = sender.send(Message::Retried {
                slot,
                worker,
                key: key.clone(),
                attempt,
                delay_ms: saturating_ms(delay),
            });
        };
        let (record, mut timing) = execute_run(project, run, options, &mut notify);
        timing.queue_wait_us = queue_wait_us;
        if sender
            .send(Message::Finished {
                slot,
                worker,
                record,
                timing,
            })
            .is_err()
        {
            return WorkerExit::Drained;
        }
    }
    WorkerExit::Drained
}

/// Folds one record into the deterministic half of the campaign stats.
/// Called as records land (execution order) — every field is a commutative
/// sum or count, so the result is identical to a key-order fold.
fn absorb_record_stats(stats: &mut CampaignStats, record: &RunRecord) {
    match &record.outcome {
        RunOutcome::TimedOut => stats.timed_out += 1,
        RunOutcome::Crashed { .. } => stats.crashed += 1,
        RunOutcome::Completed(outcome) => {
            stats.completed += 1;
            if !outcome.is_pass() {
                stats.failed += 1;
            }
        }
    }
    stats.retried += usize::from(record.attempts.saturating_sub(1));
    stats.quarantined += usize::from(record.quarantined);
    stats.rethrow_filtered += usize::from(record.rethrow_filtered);
    stats.not_a_trigger += usize::from(record.not_a_trigger);
    stats.reports += record.reports.len();
    stats.injections += u64::from(record.injections);
    stats.virtual_ms += record.virtual_ms;
    stats.steps += record.steps;
}

/// Where a finished record lands: the slot vector (non-streaming), or the
/// journal alone (streaming spill), plus the completion/stats trackers.
struct CompletionSink<'a> {
    slots: &'a mut [Option<RunRecord>],
    done: &'a mut [bool],
    det_stats: &'a mut CampaignStats,
    resident: &'a mut usize,
    peak_resident: &'a mut usize,
    stream: bool,
    chaos_exit: Option<u64>,
}

/// Finalizes one record: observer events, journal append, spill-or-store.
fn complete_slot(
    slot: usize,
    worker: usize,
    record: RunRecord,
    timing: &RunTiming,
    observer: &mut dyn EngineObserver,
    journal: &mut Option<Journal>,
    sink: &mut CompletionSink<'_>,
) {
    // The record in hand is resident until spilled or the campaign ends —
    // this counter is the memory bound the streaming test pins.
    *sink.resident += 1;
    *sink.peak_resident = (*sink.peak_resident).max(*sink.resident);
    observer.on_event(&EngineEvent::RunFinished {
        index: slot,
        key: &record.key,
        worker,
        outcome: &record.outcome,
        injections: record.injections,
        reports: record.reports.len(),
        attempts: record.attempts,
        steps: record.steps,
        timing,
    });
    if let RunOutcome::Crashed { message } = &record.outcome {
        observer.on_event(&EngineEvent::RunCrashed {
            index: slot,
            key: &record.key,
            worker,
            message,
        });
    }
    if record.quarantined {
        observer.on_event(&EngineEvent::RunQuarantined {
            index: slot,
            key: &record.key,
            attempts: record.attempts,
            outcome: &record.outcome,
        });
    }
    // Full-record feedback for planners, emitted before any streaming
    // spill so it fires even when the record never reaches RAM.
    observer.on_event(&EngineEvent::RunRecorded {
        index: slot,
        record: &record,
    });
    let mut spilled = false;
    if let Some(journal) = journal.as_mut() {
        if let Some(completed) = journal.append(&record) {
            observer.on_event(&EngineEvent::CheckpointWritten { completed });
        }
        // Chaos crash point: die *after* the append, so the journal holds
        // exactly `chaos_exit` records — the supervisor must observe
        // progress and plain-restart, never bisect.
        if let Some(limit) = sink.chaos_exit {
            if journal.appended() as u64 >= limit {
                eprintln!("[engine] chaos: exiting after {limit} journal append(s)");
                std::process::exit(86);
            }
        }
        // Streaming spill: the journal write went through (the journal is
        // still active), so the record is durable and RAM can drop it. A
        // dead journal falls back to the slot — bounded memory degrades,
        // data does not.
        spilled = sink.stream && journal.active();
    }
    absorb_record_stats(sink.det_stats, &record);
    sink.done[slot] = true;
    if spilled {
        *sink.resident -= 1;
    } else {
        sink.slots[slot] = Some(record);
    }
}

/// Executes one run under the retry policy. Each attempt runs in a fresh,
/// fully isolated interpreter under `catch_unwind`; transient failures
/// (`Crashed`, `TimedOut`) are retried with deterministic backoff until
/// the policy is exhausted, at which point the record is quarantined.
fn execute_run(
    project: &Project,
    run: &InjectionRun,
    options: &CampaignOptions,
    notify_retry: &mut dyn FnMut(u8, Duration),
) -> (RunRecord, RunTiming) {
    let run_started = options.capture_timing.then(Instant::now);
    let max_attempts = options.retry.max_attempts.max(1);
    // Clone the run options (pinned-config list included) once per run, not
    // once per attempt; only the wall-clock deadline varies between attempts.
    let mut run_options = options.run_options.clone();
    let mut timing = RunTiming::default();
    let mut attempt = 1u8;
    loop {
        let caught = {
            let _guard = ContainGuard::new();
            let timing = &mut timing;
            panic::catch_unwind(AssertUnwindSafe(|| {
                execute_attempt(project, run, options, &mut run_options, attempt, timing)
            }))
        };
        let mut record = match caught {
            Ok(record) => record,
            // Per-run isolation makes the unwind safe: the broken
            // interpreter, handler, and trace died with the attempt, and
            // the next attempt (or the report) only sees this fresh
            // record. (A panicking attempt's interpreter time is lost to
            // the timing breakdown — run_wall_us still covers it.)
            Err(payload) => crashed_record(run.key(), panic_message(payload)),
        };
        record.attempts = attempt;
        let transient = record.outcome.is_transient_failure();
        if transient && attempt < max_attempts {
            let delay = options.retry.backoff(&record.key, attempt);
            timing.backoff_ms = timing.backoff_ms.saturating_add(saturating_ms(delay));
            notify_retry(attempt, delay);
            if !delay.is_zero() {
                thread::sleep(delay);
            }
            attempt += 1;
            continue;
        }
        record.quarantined = transient;
        if let Some(started) = run_started {
            timing.run_wall_us = saturating_us(started.elapsed());
        }
        return (record, timing);
    }
}

/// A contained panic, normalized: nothing from the partial attempt may
/// reach the report (measurements are scheduling- and progress-dependent).
fn crashed_record(key: RunKey, message: String) -> RunRecord {
    RunRecord {
        key,
        outcome: RunOutcome::Crashed { message },
        reports: Vec::new(),
        rethrow_filtered: false,
        not_a_trigger: false,
        virtual_ms: 0,
        steps: 0,
        injections: 0,
        attempts: 1,
        quarantined: false,
    }
}

/// Executes one attempt in a fresh, fully isolated interpreter and judges
/// it. Chaos (if configured) may delay or panic the attempt first — both
/// decisions are pure functions of `(seed, key, attempt)`.
fn execute_attempt(
    project: &Project,
    run: &InjectionRun,
    options: &CampaignOptions,
    run_options: &mut RunOptions,
    attempt: u8,
    timing: &mut RunTiming,
) -> RunRecord {
    let key = run.key();
    if let Some(chaos) = &options.chaos {
        let draw = chaos.draw(&key, attempt);
        if draw.delay_ms > 0 {
            thread::sleep(Duration::from_millis(draw.delay_ms));
        }
        if draw.panic {
            panic!(
                "chaos: injected panic ({}.{} @ {} {} K={}, attempt {attempt})",
                key.test.class, key.test.name, key.site, key.exception, key.k
            );
        }
    }
    if let Some(budget) = options.run_budget {
        run_options.limits.wall_deadline = Some(Instant::now() + budget);
    }
    let mut handler = InjectionHandler::single(run.spec.location.clone(), run.spec.k);
    let test_run = run_test(project, &run.test, &mut handler, run_options);
    timing.interp_us = timing.interp_us.saturating_add(test_run.wall_us);
    if matches!(test_run.outcome, TestOutcome::WallClockExceeded) {
        // Normalize: where the abort landed is host-dependent, so nothing
        // from the partial run may reach the report.
        return RunRecord {
            key,
            outcome: RunOutcome::TimedOut,
            reports: Vec::new(),
            rethrow_filtered: false,
            not_a_trigger: false,
            virtual_ms: 0,
            steps: 0,
            injections: 0,
            attempts: 1,
            quarantined: false,
        };
    }
    let verdict = if options.capture_timing {
        let (verdict, judge_elapsed) = judge_run_timed(&test_run, &run.spec, &options.oracle);
        timing.judge_us = timing.judge_us.saturating_add(saturating_us(judge_elapsed));
        verdict
    } else {
        judge_run(&test_run, &run.spec, &options.oracle)
    };
    RunRecord {
        key,
        outcome: RunOutcome::Completed(test_run.outcome.clone()),
        reports: verdict.reports,
        rethrow_filtered: verdict.rethrow_filtered,
        not_a_trigger: verdict.not_a_trigger,
        virtual_ms: test_run.virtual_ms,
        steps: test_run.steps,
        injections: handler.total_injected(),
        attempts: 1,
        quarantined: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use std::collections::BTreeSet;
    use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi_analysis::resolve::ProjectIndex;
    use wasabi_planner::coverage::profile_coverage;
    use wasabi_planner::plan::{expand_plan, plan};

    // Both tests burn >4096 interpreter steps up front (`spin`), so a
    // zero wall-clock budget is guaranteed to hit a deadline check —
    // the interpreter only polls the deadline every WALL_CHECK_INTERVAL
    // steps.
    const SOURCE: &str = "\
exception ConnectException;\nexception SocketException;\n\
class Flaky {\n\
  method spin() { var i = 0; while (i < 6000) { i = i + 1; } return i; }\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { this.spin(); assert(this.run() == \"ok\"); }\n\
}\n\
class Solid {\n\
  field maxAttempts = 4;\n\
  method spin() { var i = 0; while (i < 6000) { i = i + 1; } return i; }\n\
  method fetch() throws SocketException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tSolid() { this.spin(); assert(this.run() == \"ok\"); }\n\
}\n";

    fn campaign_runs(project: &Project) -> Vec<InjectionRun> {
        let index = ProjectIndex::build(project);
        let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
            .into_iter()
            .flat_map(|(_, locations)| locations)
            .collect();
        let run_options = RunOptions::default();
        let profile = profile_coverage(project, &locations, &run_options);
        let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
        let test_plan = plan(&profile, &all_sites);
        expand_plan(&test_plan, &locations, &[1, 100])
    }

    fn render(records: &[RunRecord]) -> Vec<String> {
        records.iter().map(|r| format!("{r:?}")).collect()
    }

    /// Fast-backoff options so retry-heavy tests don't sleep.
    fn fast_retry(max_attempts: u8) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn records_are_identical_across_job_counts() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        assert!(runs.len() >= 4, "expected >= 4 runs, got {}", runs.len());

        let baseline = run_campaign(
            &project,
            &runs,
            &CampaignOptions::default(),
            &mut NullObserver,
        );
        for jobs in [2, 4, 8] {
            let parallel = run_campaign(
                &project,
                &runs,
                &CampaignOptions {
                    jobs,
                    ..CampaignOptions::default()
                },
                &mut NullObserver,
            );
            assert_eq!(
                render(&baseline.records),
                render(&parallel.records),
                "records diverge at jobs={jobs}"
            );
            assert_eq!(parallel.stats.completed, baseline.stats.completed);
            assert_eq!(parallel.stats.failed, baseline.stats.failed);
            assert_eq!(parallel.stats.reports, baseline.stats.reports);
            assert_eq!(parallel.stats.virtual_ms, baseline.stats.virtual_ms);
        }
    }

    #[test]
    fn records_come_back_in_key_order_even_from_shuffled_input() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let mut runs = campaign_runs(&project);
        runs.reverse();
        let result = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                jobs: 4,
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        let keys: Vec<RunKey> = result.records.iter().map(|r| r.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "records must be in key order");
    }

    #[test]
    fn zero_budget_times_every_run_out_identically() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        let options = CampaignOptions {
            run_budget: Some(Duration::ZERO),
            retry: fast_retry(3),
            ..CampaignOptions::default()
        };
        let serial = run_campaign(&project, &runs, &options, &mut NullObserver);
        assert_eq!(serial.stats.timed_out, runs.len());
        assert_eq!(serial.stats.reports, 0, "timed-out runs are not judged");
        assert_eq!(
            serial.stats.quarantined,
            runs.len(),
            "exhausted timed-out runs are quarantined"
        );
        assert_eq!(serial.stats.retried, runs.len() * 2, "3 attempts per run");
        let parallel = run_campaign(
            &project,
            &runs,
            &CampaignOptions { jobs: 8, ..options },
            &mut NullObserver,
        );
        assert_eq!(
            render(&serial.records),
            render(&parallel.records),
            "timed-out runs must be reported identically regardless of worker"
        );
        for record in &serial.records {
            assert_eq!(record.outcome, RunOutcome::TimedOut);
            assert_eq!((record.virtual_ms, record.steps, record.injections), (0, 0, 0));
            assert_eq!(record.attempts, 3);
            assert!(record.quarantined);
        }
    }

    #[test]
    fn empty_campaign_finishes_cleanly() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let result = run_campaign(
            &project,
            &[],
            &CampaignOptions {
                jobs: 4,
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        assert!(result.records.is_empty());
        assert_eq!(result.stats.runs_total, 0);
    }

    #[test]
    fn observer_sees_every_run_start_and_finish() {
        #[derive(Default)]
        struct Counter {
            started: usize,
            finished: usize,
            campaign_started: usize,
            campaign_finished: usize,
        }
        impl EngineObserver for Counter {
            fn on_event(&mut self, event: &EngineEvent<'_>) {
                match event {
                    EngineEvent::Started { .. } => self.campaign_started += 1,
                    EngineEvent::RunStarted { .. } => self.started += 1,
                    EngineEvent::RunFinished { .. } => self.finished += 1,
                    EngineEvent::Finished { .. } => self.campaign_finished += 1,
                    _ => {}
                }
            }
        }
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        let mut counter = Counter::default();
        let result = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                jobs: 3,
                ..CampaignOptions::default()
            },
            &mut counter,
        );
        assert_eq!(counter.campaign_started, 1);
        assert_eq!(counter.campaign_finished, 1);
        assert_eq!(counter.started, runs.len());
        assert_eq!(counter.finished, runs.len());
        assert_eq!(
            result.stats.worker_runs.iter().sum::<usize>(),
            runs.len(),
            "worker utilization accounts for every run"
        );
    }

    // ---- Resilience: chaos self-tests --------------------------------------

    /// The chaos matrix of the resilience acceptance criteria: campaigns
    /// with injected panics must complete, report every key exactly once,
    /// and produce byte-identical records across panic rates and worker
    /// counts.
    #[test]
    fn chaos_panics_are_contained_and_deterministic_across_jobs() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        let expected_keys: Vec<RunKey> = {
            let mut keys: Vec<RunKey> = runs.iter().map(InjectionRun::key).collect();
            keys.sort();
            keys
        };
        for panic_rate in [0.1, 0.5, 1.0] {
            let options = |jobs: usize| CampaignOptions {
                jobs,
                retry: fast_retry(2),
                chaos: Some(ChaosConfig::panics(panic_rate, 0xC0FFEE)),
                ..CampaignOptions::default()
            };
            let baseline = run_campaign(&project, &runs, &options(1), &mut NullObserver);
            let keys: Vec<RunKey> = baseline.records.iter().map(|r| r.key.clone()).collect();
            assert_eq!(keys, expected_keys, "every planned key exactly once");
            if panic_rate >= 1.0 {
                assert_eq!(
                    baseline.stats.crashed,
                    runs.len(),
                    "rate 1.0 crashes every run"
                );
                assert_eq!(baseline.stats.quarantined, runs.len());
            }
            for record in &baseline.records {
                if let RunOutcome::Crashed { message } = &record.outcome {
                    assert!(message.starts_with("chaos: injected panic"));
                    assert!(record.quarantined, "exhausted crashes are quarantined");
                    assert_eq!(
                        (record.virtual_ms, record.steps, record.injections),
                        (0, 0, 0),
                        "crashed runs have zeroed measurements"
                    );
                }
            }
            for jobs in [2, 8] {
                let parallel = run_campaign(&project, &runs, &options(jobs), &mut NullObserver);
                assert_eq!(
                    render(&baseline.records),
                    render(&parallel.records),
                    "chaos campaign diverged at panic_rate={panic_rate} jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn retry_policy_recovers_single_attempt_panics() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        // Rate 1.0 on attempt 1 only: chaos draws are per-attempt, so with
        // enough attempts every run eventually gets a panic-free draw.
        // A rate this high needs a couple of retries; 1.0 would never
        // recover, and the matrix test covers that case.
        let options = CampaignOptions {
            jobs: 4,
            retry: fast_retry(8),
            chaos: Some(ChaosConfig::panics(0.5, 7)),
            ..CampaignOptions::default()
        };
        let result = run_campaign(&project, &runs, &options, &mut NullObserver);
        assert!(
            result.stats.retried > 0,
            "a 50% panic rate must trigger retries"
        );
        assert_eq!(
            result.stats.crashed, 0,
            "8 attempts recover every 50%-rate run: {:?}",
            result
                .records
                .iter()
                .map(|r| (&r.outcome, r.attempts))
                .collect::<Vec<_>>()
        );
        assert_eq!(result.stats.quarantined, 0);
        // Recovered runs judge identically to a chaos-free campaign.
        let clean = run_campaign(
            &project,
            &runs,
            &CampaignOptions::default(),
            &mut NullObserver,
        );
        assert_eq!(result.stats.reports, clean.stats.reports);
        assert_eq!(result.stats.failed, clean.stats.failed);
    }

    #[test]
    fn killed_worker_degrades_gracefully_and_campaign_completes() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        for jobs in [1usize, 2, 4] {
            let options = CampaignOptions {
                jobs,
                chaos: Some(ChaosConfig {
                    panic_rate: 0.0,
                    max_delay_ms: 0,
                    seed: 0,
                    kill_worker: Some(0),
                    exit_after_appends: None,
                }),
                ..CampaignOptions::default()
            };
            let result = run_campaign(&project, &runs, &options, &mut NullObserver);
            assert_eq!(result.stats.workers_lost, 1, "worker 0 dies at jobs={jobs}");
            assert_eq!(
                result.records.len(),
                runs.len(),
                "campaign completes with fewer workers at jobs={jobs}"
            );
            let clean = run_campaign(
                &project,
                &runs,
                &CampaignOptions::default(),
                &mut NullObserver,
            );
            assert_eq!(
                render(&result.records),
                render(&clean.records),
                "lost worker must not change records at jobs={jobs}"
            );
            if jobs == 1 {
                assert!(
                    result.stats.supervisor_runs > 0,
                    "with the only worker dead, the coordinator drains the queue inline"
                );
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy::default();
        let runs_key = RunKey {
            test: wasabi_lang::project::MethodId::new("C", "t"),
            site: wasabi_lang::project::CallSite {
                file: wasabi_lang::project::FileId(0),
                call: wasabi_lang::ast::CallId(1),
            },
            exception: "E".to_string(),
            k: 1,
        };
        let d1 = policy.backoff(&runs_key, 1);
        let d2 = policy.backoff(&runs_key, 2);
        assert_eq!(d1, policy.backoff(&runs_key, 1), "jitter is seeded");
        // Equal jitter keeps each delay in [d/2, d).
        assert!(d1 >= policy.base_delay / 2 && d1 < policy.base_delay);
        assert!(d2 >= policy.base_delay, "attempt 2 backs off further");
        // A huge attempt number stays under the cap.
        let capped = policy.backoff(&runs_key, 40);
        assert!(capped < policy.cap);
        // Zero base delay disables sleeping regardless of attempt.
        let zero = RetryPolicy {
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.backoff(&runs_key, 3), Duration::ZERO);
    }

    #[test]
    fn resume_skips_completed_runs_and_merges_identically() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        let full = run_campaign(
            &project,
            &runs,
            &CampaignOptions::default(),
            &mut NullObserver,
        );
        // Resume from the first half of the records.
        let half = full.records.len() / 2;
        let resumed = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                jobs: 4,
                resume: full.records[..half].to_vec(),
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        assert_eq!(resumed.stats.resumed, half);
        assert_eq!(
            resumed.stats.worker_runs.iter().sum::<usize>() + resumed.stats.supervisor_runs,
            runs.len() - half,
            "resume executes strictly fewer runs than the full plan"
        );
        assert_eq!(
            render(&full.records),
            render(&resumed.records),
            "resumed campaign must merge to identical records"
        );
    }
}
