//! Campaign execution: a fixed-size worker pool over a sharded run queue,
//! with a deterministic merge of results.
//!
//! # Determinism contract
//!
//! The engine guarantees that [`CampaignResult::records`] is a pure
//! function of `(project, runs, options)` — independent of `jobs` and of
//! how the OS schedules the workers:
//!
//! - runs execute in **isolated interpreters**: each worker constructs its
//!   own `Interp` (own virtual clock, config store, trace buffer) and its
//!   own `InjectionHandler` per run, so no state crosses runs;
//! - results land in **key-addressed slots**: the engine orders runs by
//!   [`RunKey`] up front and each worker writes its record into the slot
//!   for that key, so the merged vector has the same order no matter which
//!   worker finished first;
//! - **timed-out runs are normalized**: a run aborted by the wall-clock
//!   budget records a bare [`RunOutcome::TimedOut`] with zeroed
//!   nondeterministic fields (virtual time, steps, injections) and is never
//!   judged by the oracles, because *where* the abort landed depends on
//!   host speed.
//!
//! Scheduling-dependent observations (per-worker run counts, wall time)
//! are confined to [`CampaignStats::worker_runs`] / [`CampaignStats::wall_ms`]
//! and the observer event stream; nothing in `records` derives from them.

use crate::observer::{EngineEvent, EngineObserver};
use crate::queue::ShardedQueue;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};
use wasabi_inject::InjectionHandler;
use wasabi_lang::project::Project;
use wasabi_oracles::judge::{judge_run, OracleConfig, OracleReport};
use wasabi_planner::plan::{InjectionRun, RunKey};
use wasabi_vm::runner::{run_test, RunOptions};
use wasabi_vm::trace::TestOutcome;

/// Options for one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker count. `1` executes serially through the same code path as
    /// any other value (one worker thread, one shard).
    pub jobs: usize,
    /// Per-run interpreter options (limits, pinned configs).
    pub run_options: RunOptions,
    /// Oracle thresholds for judging completed runs.
    pub oracle: OracleConfig,
    /// Optional wall-clock budget per run. A run that exceeds it is
    /// cancelled cooperatively (the interpreter checks the deadline every
    /// few thousand steps) and recorded as [`RunOutcome::TimedOut`];
    /// the campaign itself never hangs on one stuck run.
    pub run_budget: Option<Duration>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            jobs: 1,
            run_options: RunOptions::default(),
            oracle: OracleConfig::default(),
            run_budget: None,
        }
    }
}

/// How one campaign run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The interpreter ran the test to an outcome within budget.
    Completed(TestOutcome),
    /// The wall-clock budget expired; the partial run was discarded.
    TimedOut,
}

/// The merged result of one injection run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's identity; records are sorted by this key.
    pub key: RunKey,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Oracle findings (empty for timed-out runs, which are not judged).
    pub reports: Vec<OracleReport>,
    /// The run crashed by re-throwing the injected exception (correct
    /// give-up behaviour, filtered by the different-exception oracle).
    pub rethrow_filtered: bool,
    /// The injected exception escaped without any retry (the location was
    /// not actually a retry trigger).
    pub not_a_trigger: bool,
    /// Virtual milliseconds the run consumed (0 if timed out).
    pub virtual_ms: u64,
    /// Interpreter steps the run consumed (0 if timed out).
    pub steps: u64,
    /// Faults injected during the run (0 if timed out).
    pub injections: u32,
}

/// Aggregate campaign statistics.
///
/// All fields except `worker_runs` and `wall_ms` are deterministic given
/// the same runs and options.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Total runs executed.
    pub runs_total: usize,
    /// Runs that completed within budget.
    pub completed: usize,
    /// Runs cancelled by the wall-clock budget.
    pub timed_out: usize,
    /// Completed runs that did not pass.
    pub crashed: usize,
    /// Runs filtered as correct give-up rethrows.
    pub rethrow_filtered: usize,
    /// Runs evidencing a misidentified trigger.
    pub not_a_trigger: usize,
    /// Total oracle reports across runs.
    pub reports: usize,
    /// Total faults injected.
    pub injections: u64,
    /// Total virtual milliseconds across completed runs.
    pub virtual_ms: u64,
    /// Worker count used.
    pub jobs: usize,
    /// Runs executed per worker (scheduling-dependent; utilization only).
    pub worker_runs: Vec<usize>,
    /// Campaign wall time in milliseconds (scheduling-dependent).
    pub wall_ms: u64,
}

/// A finished campaign: records in [`RunKey`] order plus statistics.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// One record per input run, sorted by key.
    pub records: Vec<RunRecord>,
    /// Aggregate statistics.
    pub stats: CampaignStats,
}

/// What a worker sends back to the coordinator.
enum Message {
    Started {
        slot: usize,
        worker: usize,
        key: RunKey,
    },
    Finished {
        slot: usize,
        worker: usize,
        record: RunRecord,
    },
}

/// Executes `runs` on `options.jobs` workers and merges the results
/// deterministically. See the module docs for the determinism contract.
pub fn run_campaign(
    project: &Project,
    runs: &[InjectionRun],
    options: &CampaignOptions,
    observer: &mut dyn EngineObserver,
) -> CampaignResult {
    let started_at = Instant::now();
    let jobs = options.jobs.max(1).min(runs.len().max(1));
    observer.on_event(&EngineEvent::Started {
        total_runs: runs.len(),
        jobs,
    });

    // The engine re-derives key order itself rather than trusting the
    // caller to have sorted: slot i of the output always holds the i-th
    // run in key order.
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by_key(|&i| runs[i].key());

    let mut slots: Vec<Option<RunRecord>> = Vec::new();
    slots.resize_with(runs.len(), || None);
    let mut worker_runs = vec![0usize; jobs];

    if !runs.is_empty() {
        let queue = ShardedQueue::prefilled(0..runs.len(), jobs);
        let (sender, receiver) = mpsc::channel::<Message>();
        thread::scope(|scope| {
            let (queue, order) = (&queue, &order);
            for worker in 0..jobs {
                let sender = sender.clone();
                scope.spawn(move || {
                    while let Some(slot) = queue.pop(worker) {
                        let run = &runs[order[slot]];
                        if sender
                            .send(Message::Started {
                                slot,
                                worker,
                                key: run.key(),
                            })
                            .is_err()
                        {
                            return;
                        }
                        let record = execute_run(project, run, options);
                        if sender
                            .send(Message::Finished {
                                slot,
                                worker,
                                record,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                });
            }
            drop(sender);
            // Replay worker messages into the observer on this thread, so
            // observers need no locking; the receive loop ends when every
            // worker has dropped its sender.
            for message in receiver {
                match message {
                    Message::Started { slot, worker, key } => {
                        observer.on_event(&EngineEvent::RunStarted {
                            index: slot,
                            key: &key,
                            worker,
                        });
                    }
                    Message::Finished {
                        slot,
                        worker,
                        record,
                    } => {
                        worker_runs[worker] += 1;
                        observer.on_event(&EngineEvent::RunFinished {
                            index: slot,
                            key: &record.key,
                            worker,
                            outcome: &record.outcome,
                            injections: record.injections,
                            reports: record.reports.len(),
                        });
                        slots[slot] = Some(record);
                    }
                }
            }
        });
    }

    let records: Vec<RunRecord> = slots
        .into_iter()
        .map(|slot| slot.expect("every queued run produces a record"))
        .collect();

    let mut stats = CampaignStats {
        runs_total: records.len(),
        jobs,
        worker_runs,
        wall_ms: started_at.elapsed().as_millis() as u64,
        ..CampaignStats::default()
    };
    for record in &records {
        match &record.outcome {
            RunOutcome::TimedOut => stats.timed_out += 1,
            RunOutcome::Completed(outcome) => {
                stats.completed += 1;
                if !outcome.is_pass() {
                    stats.crashed += 1;
                }
            }
        }
        stats.rethrow_filtered += record.rethrow_filtered as usize;
        stats.not_a_trigger += record.not_a_trigger as usize;
        stats.reports += record.reports.len();
        stats.injections += u64::from(record.injections);
        stats.virtual_ms += record.virtual_ms;
    }
    observer.on_event(&EngineEvent::Finished { stats: &stats });
    CampaignResult { records, stats }
}

/// Executes one run in a fresh, fully isolated interpreter and judges it.
fn execute_run(project: &Project, run: &InjectionRun, options: &CampaignOptions) -> RunRecord {
    let key = run.key();
    let mut run_options = options.run_options.clone();
    if let Some(budget) = options.run_budget {
        run_options.limits.wall_deadline = Some(Instant::now() + budget);
    }
    let mut handler = InjectionHandler::single(run.spec.location.clone(), run.spec.k);
    let test_run = run_test(project, &run.test, &mut handler, &run_options);
    if matches!(test_run.outcome, TestOutcome::WallClockExceeded) {
        // Normalize: where the abort landed is host-dependent, so nothing
        // from the partial run may reach the report.
        return RunRecord {
            key,
            outcome: RunOutcome::TimedOut,
            reports: Vec::new(),
            rethrow_filtered: false,
            not_a_trigger: false,
            virtual_ms: 0,
            steps: 0,
            injections: 0,
        };
    }
    let verdict = judge_run(&test_run, &run.spec, &options.oracle);
    RunRecord {
        key,
        outcome: RunOutcome::Completed(test_run.outcome.clone()),
        reports: verdict.reports,
        rethrow_filtered: verdict.rethrow_filtered,
        not_a_trigger: verdict.not_a_trigger,
        virtual_ms: test_run.virtual_ms,
        steps: test_run.steps,
        injections: handler.total_injected(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use std::collections::BTreeSet;
    use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi_analysis::resolve::ProjectIndex;
    use wasabi_planner::coverage::profile_coverage;
    use wasabi_planner::plan::{expand_plan, plan};

    // Both tests burn >4096 interpreter steps up front (`spin`), so a
    // zero wall-clock budget is guaranteed to hit a deadline check —
    // the interpreter only polls the deadline every WALL_CHECK_INTERVAL
    // steps.
    const SOURCE: &str = "\
exception ConnectException;\nexception SocketException;\n\
class Flaky {\n\
  method spin() { var i = 0; while (i < 6000) { i = i + 1; } return i; }\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { this.spin(); assert(this.run() == \"ok\"); }\n\
}\n\
class Solid {\n\
  field maxAttempts = 4;\n\
  method spin() { var i = 0; while (i < 6000) { i = i + 1; } return i; }\n\
  method fetch() throws SocketException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tSolid() { this.spin(); assert(this.run() == \"ok\"); }\n\
}\n";

    fn campaign_runs(project: &Project) -> Vec<InjectionRun> {
        let index = ProjectIndex::build(project);
        let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
            .into_iter()
            .flat_map(|(_, locations)| locations)
            .collect();
        let run_options = RunOptions::default();
        let profile = profile_coverage(project, &locations, &run_options);
        let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
        let test_plan = plan(&profile, &all_sites);
        expand_plan(&test_plan, &locations, &[1, 100])
    }

    fn render(records: &[RunRecord]) -> Vec<String> {
        records.iter().map(|r| format!("{r:?}")).collect()
    }

    #[test]
    fn records_are_identical_across_job_counts() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        assert!(runs.len() >= 4, "expected >= 4 runs, got {}", runs.len());

        let baseline = run_campaign(
            &project,
            &runs,
            &CampaignOptions::default(),
            &mut NullObserver,
        );
        for jobs in [2, 4, 8] {
            let parallel = run_campaign(
                &project,
                &runs,
                &CampaignOptions {
                    jobs,
                    ..CampaignOptions::default()
                },
                &mut NullObserver,
            );
            assert_eq!(
                render(&baseline.records),
                render(&parallel.records),
                "records diverge at jobs={jobs}"
            );
            assert_eq!(parallel.stats.completed, baseline.stats.completed);
            assert_eq!(parallel.stats.crashed, baseline.stats.crashed);
            assert_eq!(parallel.stats.reports, baseline.stats.reports);
            assert_eq!(parallel.stats.virtual_ms, baseline.stats.virtual_ms);
        }
    }

    #[test]
    fn records_come_back_in_key_order_even_from_shuffled_input() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let mut runs = campaign_runs(&project);
        runs.reverse();
        let result = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                jobs: 4,
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        let keys: Vec<RunKey> = result.records.iter().map(|r| r.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "records must be in key order");
    }

    #[test]
    fn zero_budget_times_every_run_out_identically() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        let options = CampaignOptions {
            run_budget: Some(Duration::ZERO),
            ..CampaignOptions::default()
        };
        let serial = run_campaign(&project, &runs, &options, &mut NullObserver);
        assert_eq!(serial.stats.timed_out, runs.len());
        assert_eq!(serial.stats.reports, 0, "timed-out runs are not judged");
        let parallel = run_campaign(
            &project,
            &runs,
            &CampaignOptions { jobs: 8, ..options },
            &mut NullObserver,
        );
        assert_eq!(
            render(&serial.records),
            render(&parallel.records),
            "timed-out runs must be reported identically regardless of worker"
        );
        for record in &serial.records {
            assert_eq!(record.outcome, RunOutcome::TimedOut);
            assert_eq!((record.virtual_ms, record.steps, record.injections), (0, 0, 0));
        }
    }

    #[test]
    fn empty_campaign_finishes_cleanly() {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let result = run_campaign(
            &project,
            &[],
            &CampaignOptions {
                jobs: 4,
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        assert!(result.records.is_empty());
        assert_eq!(result.stats.runs_total, 0);
    }

    #[test]
    fn observer_sees_every_run_start_and_finish() {
        #[derive(Default)]
        struct Counter {
            started: usize,
            finished: usize,
            campaign_started: usize,
            campaign_finished: usize,
        }
        impl EngineObserver for Counter {
            fn on_event(&mut self, event: &EngineEvent<'_>) {
                match event {
                    EngineEvent::Started { .. } => self.campaign_started += 1,
                    EngineEvent::RunStarted { .. } => self.started += 1,
                    EngineEvent::RunFinished { .. } => self.finished += 1,
                    EngineEvent::Finished { .. } => self.campaign_finished += 1,
                }
            }
        }
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let runs = campaign_runs(&project);
        let mut counter = Counter::default();
        let result = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                jobs: 3,
                ..CampaignOptions::default()
            },
            &mut counter,
        );
        assert_eq!(counter.campaign_started, 1);
        assert_eq!(counter.campaign_finished, 1);
        assert_eq!(counter.started, runs.len());
        assert_eq!(counter.finished, runs.len());
        assert_eq!(
            result.stats.worker_runs.iter().sum::<usize>(),
            runs.len(),
            "worker utilization accounts for every run"
        );
    }
}
