//! Campaign metrics: per-run timing, mergeable histograms, and an
//! [`EngineObserver`] that turns the event stream into spans.
//!
//! # Determinism split
//!
//! The metrics in a [`CampaignMetrics`] come in two halves with different
//! guarantees:
//!
//! - the **deterministic half** (`steps`, `injections`, `attempts`,
//!   `virtual_ms`, `backoff_ms`) is computed at campaign end as a pure
//!   function of the merged record vector (plus the retry policy, whose
//!   backoff is itself a pure function of `(key, attempt)`). It is
//!   byte-identical for any `jobs` value and covers resumed records too;
//! - the **timing half** (`queue_wait_us`, `run_wall_us`, `interp_us`,
//!   `judge_us`) measures host wall time. Each worker's samples accumulate
//!   in its own [`WorkerTimings`] (no locks — the coordinator owns them
//!   and fills them from the serialized message stream), merged in worker
//!   index order at campaign end. Values are scheduling-dependent; only
//!   the *sample count* is deterministic, and resumed records contribute
//!   nothing (no host time was spent on them this session).

use crate::campaign::{CampaignStats, RetryPolicy, RunRecord};
use crate::observer::{outcome_kind, EngineEvent, EngineObserver};
use crate::spans::{PhaseSpan, RunSpan};
use std::collections::HashMap;
use wasabi_util::metrics::{Clock, WallClock};
use wasabi_util::{saturating_ms, Histogram, Json};

/// Host-time measurements for one run (summed over all its attempts).
/// Carried alongside the record in `RunFinished` events; never part of
/// the record itself (it is scheduling-dependent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunTiming {
    /// Campaign-relative time at which a worker popped this run, in
    /// microseconds — how long the run sat behind others in the queue.
    pub queue_wait_us: u64,
    /// Wall time of the whole run: every attempt plus backoff sleeps.
    pub run_wall_us: u64,
    /// Interpreter wall time, summed over attempts.
    pub interp_us: u64,
    /// Oracle-judgement wall time, summed over attempts.
    pub judge_us: u64,
    /// Backoff sleep issued between attempts, in milliseconds. Unlike the
    /// other fields this one is *deterministic* (the policy's jitter is
    /// seeded on the run key).
    pub backoff_ms: u64,
}

/// One worker's timing histograms. Owned by the campaign coordinator —
/// one per worker plus one for inline supervisor runs — and merged into
/// [`CampaignMetrics`] in worker index order when the campaign finishes.
#[derive(Debug, Clone, Default)]
pub struct WorkerTimings {
    /// Queue-wait distribution (us).
    pub queue_wait_us: Histogram,
    /// Whole-run wall-time distribution (us).
    pub run_wall_us: Histogram,
    /// Interpreter wall-time distribution (us).
    pub interp_us: Histogram,
    /// Oracle wall-time distribution (us).
    pub judge_us: Histogram,
}

impl WorkerTimings {
    /// Records one run's timing.
    pub fn record(&mut self, timing: &RunTiming) {
        self.queue_wait_us.record(timing.queue_wait_us);
        self.run_wall_us.record(timing.run_wall_us);
        self.interp_us.record(timing.interp_us);
        self.judge_us.record(timing.judge_us);
    }
}

/// Merged per-run distributions for a finished campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignMetrics {
    /// Interpreter steps per run (deterministic).
    pub steps: Histogram,
    /// Faults injected per run (deterministic).
    pub injections: Histogram,
    /// Attempts consumed per run (deterministic).
    pub attempts: Histogram,
    /// Virtual milliseconds per run (deterministic).
    pub virtual_ms: Histogram,
    /// Backoff milliseconds per run, recomputed from the policy
    /// (deterministic — covers resumed records too).
    pub backoff_ms: Histogram,
    /// Queue wait per run in us (host timing).
    pub queue_wait_us: Histogram,
    /// Whole-run wall time in us (host timing).
    pub run_wall_us: Histogram,
    /// Interpreter wall time per run in us (host timing).
    pub interp_us: Histogram,
    /// Oracle wall time per run in us (host timing).
    pub judge_us: Histogram,
}

impl CampaignMetrics {
    /// Builds the deterministic half from the merged record vector. The
    /// backoff distribution is recomputed from the policy rather than
    /// measured, so resumed records (no sleep happened this session)
    /// still contribute their deterministic delays.
    pub fn from_records(records: &[RunRecord], retry: &RetryPolicy) -> Self {
        let mut metrics = CampaignMetrics::default();
        for record in records {
            metrics.steps.record(record.steps);
            metrics.injections.record(u64::from(record.injections));
            metrics.attempts.record(u64::from(record.attempts));
            metrics.virtual_ms.record(record.virtual_ms);
            let backoff: u64 = (1..record.attempts)
                .map(|failed| saturating_ms(retry.backoff(&record.key, failed)))
                .fold(0, u64::saturating_add);
            metrics.backoff_ms.record(backoff);
        }
        metrics
    }

    /// Merges another campaign's distributions into this one, histogram
    /// by histogram. [`Histogram::merge`] is commutative and
    /// order-independent, so merging two waves of an adaptive campaign
    /// yields the same metrics as one combined campaign would have — for
    /// the deterministic half exactly, and for the timing half with the
    /// same sample counts.
    pub fn merge_campaign(&mut self, other: &CampaignMetrics) {
        self.steps.merge(&other.steps);
        self.injections.merge(&other.injections);
        self.attempts.merge(&other.attempts);
        self.virtual_ms.merge(&other.virtual_ms);
        self.backoff_ms.merge(&other.backoff_ms);
        self.queue_wait_us.merge(&other.queue_wait_us);
        self.run_wall_us.merge(&other.run_wall_us);
        self.interp_us.merge(&other.interp_us);
        self.judge_us.merge(&other.judge_us);
    }

    /// Merges per-worker timing histograms, in the order given (the
    /// campaign passes worker index order: workers `0..jobs`, then the
    /// supervisor's inline runs).
    pub fn absorb_worker_timings(&mut self, workers: &[WorkerTimings]) {
        for w in workers {
            self.queue_wait_us.merge(&w.queue_wait_us);
            self.run_wall_us.merge(&w.run_wall_us);
            self.interp_us.merge(&w.interp_us);
            self.judge_us.merge(&w.judge_us);
        }
    }

    /// The deterministic histograms, named — byte-identical across `jobs`
    /// values and resume splits (what the determinism tests compare).
    pub fn deterministic(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("steps", &self.steps),
            ("injections", &self.injections),
            ("attempts", &self.attempts),
            ("virtual_ms", &self.virtual_ms),
            ("backoff_ms", &self.backoff_ms),
        ]
    }

    /// The host-timing histograms, named (scheduling-dependent values;
    /// deterministic sample counts).
    pub fn timing(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("queue_wait_us", &self.queue_wait_us),
            ("run_wall_us", &self.run_wall_us),
            ("interp_us", &self.interp_us),
            ("judge_us", &self.judge_us),
        ]
    }

    /// Integer-only JSON summary of every histogram (no floats, so the
    /// document is byte-stable for a given metrics value).
    pub fn to_json(&self) -> Json {
        let one = |h: &Histogram| {
            Json::obj([
                ("count", Json::from(h.count())),
                ("sum", Json::from(h.sum())),
                ("min", Json::from(h.min())),
                ("max", Json::from(h.max())),
                ("p50", Json::from(h.approx_percentile(0.5))),
                ("p95", Json::from(h.approx_percentile(0.95))),
            ])
        };
        let fields = self
            .deterministic()
            .into_iter()
            .chain(self.timing())
            .map(|(name, h)| (name, one(h)));
        Json::obj(fields)
    }
}

/// An [`EngineObserver`] that turns the event stream into phase spans,
/// run spans, and the final metrics — the in-process recorder behind
/// `--trace-out`, `wasabi stats`, and the bench per-phase breakdown.
///
/// Timestamps are read through a [`Clock`], so tests substitute a
/// [`ManualClock`](wasabi_util::metrics::ManualClock) and get
/// deterministic span times. Composes with any other observer via
/// [`Tee`](crate::observer::Tee); it only records, never prints.
pub struct MetricsObserver {
    clock: Box<dyn Clock>,
    open_phases: Vec<(String, u64)>,
    phases: Vec<PhaseSpan>,
    open_runs: HashMap<usize, u64>,
    runs: Vec<RunSpan>,
    stats: Option<CampaignStats>,
    metrics: Option<CampaignMetrics>,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::new()
    }
}

impl std::fmt::Debug for MetricsObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsObserver")
            .field("phases", &self.phases.len())
            .field("runs", &self.runs.len())
            .field("finished", &self.metrics.is_some())
            .finish()
    }
}

impl MetricsObserver {
    /// A recorder on the production wall clock.
    pub fn new() -> Self {
        MetricsObserver::with_clock(Box::new(WallClock::new()))
    }

    /// A recorder on an explicit clock (tests pass a `ManualClock`).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        MetricsObserver {
            clock,
            open_phases: Vec::new(),
            phases: Vec::new(),
            open_runs: HashMap::new(),
            runs: Vec::new(),
            stats: None,
            metrics: None,
        }
    }

    /// Completed phase spans, in completion order.
    pub fn phases(&self) -> &[PhaseSpan] {
        &self.phases
    }

    /// Completed run spans, in completion (arrival) order.
    pub fn runs(&self) -> &[RunSpan] {
        &self.runs
    }

    /// Final campaign statistics, once `Finished` has been observed.
    pub fn stats(&self) -> Option<&CampaignStats> {
        self.stats.as_ref()
    }

    /// Final campaign metrics, once `Finished` has been observed.
    pub fn metrics(&self) -> Option<&CampaignMetrics> {
        self.metrics.as_ref()
    }

    /// Records an externally-timed phase (e.g. `compile`, which runs
    /// before any observer exists) as a closed span ending now.
    pub fn record_phase(&mut self, name: &str, wall_us: u64) {
        let end_us = self.clock.now_us();
        self.phases.push(PhaseSpan {
            name: name.to_string(),
            start_us: end_us.saturating_sub(wall_us),
            end_us,
        });
    }

    /// Sum of recorded phase wall times, in microseconds.
    pub fn phase_total_us(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.end_us.saturating_sub(p.start_us))
            .fold(0, u64::saturating_add)
    }
}

impl EngineObserver for MetricsObserver {
    fn on_event(&mut self, event: &EngineEvent<'_>) {
        match event {
            EngineEvent::PhaseStarted { name } => {
                let now = self.clock.now_us();
                self.open_phases.push((name.to_string(), now));
            }
            EngineEvent::PhaseFinished { name } => {
                let end_us = self.clock.now_us();
                // Close the innermost open phase with this name; an
                // unmatched finish degrades to a zero-length span rather
                // than corrupting the stack.
                let start_us = self
                    .open_phases
                    .iter()
                    .rposition(|(open, _)| open == name)
                    .map(|at| self.open_phases.remove(at).1)
                    .unwrap_or(end_us);
                self.phases.push(PhaseSpan {
                    name: name.to_string(),
                    start_us,
                    end_us,
                });
            }
            EngineEvent::RunStarted { index, .. } => {
                let now = self.clock.now_us();
                self.open_runs.insert(*index, now);
            }
            EngineEvent::RunFinished {
                index,
                key,
                worker,
                outcome,
                injections,
                reports,
                attempts,
                steps,
                timing,
            } => {
                let end_us = self.clock.now_us();
                let start_us = self.open_runs.remove(index).unwrap_or(end_us);
                self.runs.push(RunSpan {
                    test: key.test.to_string(),
                    site: key.site.to_string(),
                    exception: key.exception.clone(),
                    k: key.k,
                    worker: *worker,
                    outcome: outcome_kind(outcome).to_string(),
                    attempts: *attempts,
                    injections: *injections,
                    steps: *steps,
                    reports: *reports,
                    start_us,
                    end_us,
                    timing: (*timing).clone(),
                });
            }
            EngineEvent::Finished { stats, metrics } => {
                self.stats = Some((*stats).clone());
                self.metrics = Some((*metrics).clone());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasabi_util::metrics::ManualClock;

    #[test]
    fn from_records_recomputes_deterministic_backoff() {
        use crate::campaign::RunOutcome;
        use wasabi_lang::ast::CallId;
        use wasabi_lang::project::{CallSite, FileId, MethodId};
        use wasabi_planner::plan::RunKey;
        use wasabi_vm::trace::TestOutcome;

        let key = RunKey {
            test: MethodId::new("C", "t"),
            site: CallSite {
                file: FileId(0),
                call: CallId(1),
            },
            exception: "E".to_string(),
            k: 1,
        };
        let record = RunRecord {
            key: key.clone(),
            outcome: RunOutcome::Completed(TestOutcome::Passed),
            reports: Vec::new(),
            rethrow_filtered: false,
            not_a_trigger: false,
            virtual_ms: 10,
            steps: 100,
            injections: 1,
            attempts: 3,
            quarantined: false,
        };
        let retry = RetryPolicy::default();
        let metrics = CampaignMetrics::from_records(std::slice::from_ref(&record), &retry);
        let expected: u64 = (1..3u8)
            .map(|a| saturating_ms(retry.backoff(&key, a)))
            .sum();
        assert_eq!(metrics.backoff_ms.sum(), expected);
        assert!(expected > 0, "default policy sleeps between attempts");
        assert_eq!(metrics.steps.count(), 1);
        assert_eq!(metrics.attempts.max(), 3);
        // Rebuilding from the same records is bit-identical.
        let again = CampaignMetrics::from_records(std::slice::from_ref(&record), &retry);
        for ((_, a), (_, b)) in metrics.deterministic().iter().zip(again.deterministic()) {
            assert_eq!(**a, *b);
        }
    }

    #[test]
    fn manual_clock_produces_deterministic_phase_spans() {
        let mut observer = MetricsObserver::with_clock(Box::new(ManualClock::with_step(100)));
        observer.on_event(&EngineEvent::PhaseStarted { name: "plan" });
        observer.on_event(&EngineEvent::PhaseFinished { name: "plan" });
        observer.on_event(&EngineEvent::PhaseStarted { name: "run" });
        observer.on_event(&EngineEvent::PhaseFinished { name: "run" });
        let spans: Vec<(&str, u64, u64)> = observer
            .phases()
            .iter()
            .map(|p| (p.name.as_str(), p.start_us, p.end_us))
            .collect();
        assert_eq!(spans, vec![("plan", 100, 200), ("run", 300, 400)]);
        assert_eq!(observer.phase_total_us(), 200);
    }

    #[test]
    fn unmatched_phase_finish_degrades_to_zero_length_span() {
        let mut observer = MetricsObserver::with_clock(Box::new(ManualClock::with_step(7)));
        observer.on_event(&EngineEvent::PhaseFinished { name: "ghost" });
        assert_eq!(observer.phases().len(), 1);
        assert_eq!(observer.phases()[0].start_us, observer.phases()[0].end_us);
    }
}
