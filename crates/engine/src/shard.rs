//! Process-level sharding and supervision for campaigns.
//!
//! A campaign's sorted [`RunKey`] space is partitioned into `N` contiguous
//! ranges; one child *process* per range re-executes `wasabi test` with
//! `--shard-range A:B`, journaling its records to `<dir>/shard-i.jsonl`.
//! This module owns everything above the child processes:
//!
//! - [`partition`] — the deterministic range split;
//! - [`SupervisorPolicy`] — the restart policy, deliberately shaped like
//!   the engine's own [`RetryPolicy`](crate::campaign::RetryPolicy) so it
//!   passes the paper's WHEN/HOW rules (bounded attempts, exponential
//!   backoff with a cap, SplitMix64 jitter): a crashed shard is restarted,
//!   resuming from its own journal, so already-journaled runs are never
//!   re-executed;
//! - [`supervise_shard`] — the restart loop with **poison-run bisection**:
//!   a shard that crashes *without making progress* has its remaining
//!   range split in two and each half retried, so a run that
//!   deterministically kills its process is isolated in O(log n) restarts
//!   and quarantined to the dead-letter journal
//!   ([`DeadLetter`](crate::journal::DeadLetter)) instead of wedging the
//!   campaign;
//! - [`ShardManifest`] — the schema-versioned range manifest written next
//!   to the shard journals, which lets `wasabi merge <dir>` rebuild the
//!   plan and verify it is merging the campaign it thinks it is;
//! - [`ShardMerge`] — a key-ordered merge over shard journals that
//!   materializes at most one record at a time (journals append in
//!   *completion* order, so each is first indexed by key → byte offset,
//!   then records are random-accessed in plan order), detecting gaps,
//!   overlaps, and divergent duplicates.
//!
//! The supervision loop is process-free by construction: it drives a
//! [`ShardRunner`], and the tests script one (crashing on cue, sleeping
//! into a recorded schedule) while production plugs in a
//! `std::process::Command` re-exec (see `wasabi-core`'s `sharded` module).

use crate::journal::{self, DeadLetter, JournalReader};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::time::Duration;
use wasabi_planner::plan::RunKey;
use wasabi_util::rng::fnv1a64;
use wasabi_util::Json;

/// Splits `total` runs into `shards` contiguous index ranges `[start, end)`
/// covering `0..total`. Ranges differ in size by at most one; an empty
/// campaign yields empty ranges. Pure and total: the same `(total, shards)`
/// always yields the same split, which is what lets a child re-derive its
/// slice from `--shard-range` alone.
pub fn partition(total: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    (0..shards)
        .map(|i| (i * total / shards, (i + 1) * total / shards))
        .collect()
}

/// Restart policy for crashed shard processes. Mirrors the engine's
/// per-run `RetryPolicy` — bounded attempts, exponential backoff with a
/// cap, equal jitter from a seeded SplitMix64 stream — because the
/// supervisor's own retries must pass the same WHEN/HOW rules the linter
/// enforces on analyzed code.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Total restarts allowed per shard (across plain restarts and
    /// bisection probes). Exhausting the budget dead-letters everything
    /// the shard has not yet completed.
    pub max_restarts: u32,
    /// Backoff before the first restart.
    pub base_delay: Duration,
    /// Multiplier per additional restart.
    pub multiplier: f64,
    /// Upper bound on the un-jittered backoff.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 16,
            base_delay: Duration::from_millis(25),
            multiplier: 2.0,
            cap: Duration::from_secs(1),
            // "SHARD" in ASCII.
            jitter_seed: 0x53_4841_5244,
        }
    }
}

impl SupervisorPolicy {
    /// Backoff before restart number `restart` (1-based) of `shard`.
    /// Exponential with a cap, then equal jitter in `[d/2, d)` drawn from
    /// a stream keyed on `(jitter_seed, shard, restart)` — deterministic
    /// for a given policy, never synchronized across shards.
    pub fn backoff(&self, shard: usize, restart: u32) -> Duration {
        // Only the jitter-seed derivation is ours (keyed on the shard so
        // sibling shards never sync up); the delay math is the
        // workspace-shared formula.
        let seed = fnv1a64([
            &(shard as u64).to_le_bytes()[..],
            &self.jitter_seed.to_le_bytes()[..],
            &u64::from(restart).to_le_bytes()[..],
        ]);
        wasabi_util::equal_jitter_backoff(self.base_delay, self.multiplier, self.cap, restart, seed)
    }
}

/// How a shard child exited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardExit {
    /// Exit code 0 or 1 — the campaign-engine contract for "finished"
    /// (1 means findings, which is still a finished campaign).
    Clean,
    /// Anything else: nonzero exit ≥ 2, or killed by a signal. Carries a
    /// rendering of the status for dead-letter context.
    Crashed {
        /// e.g. `"exit code 86"` or `"signal 9"`.
        status: String,
    },
}

/// What [`supervise_shard`] drives. Production spawns `wasabi test
/// --shard-range` child processes; tests script crashes and record the
/// sleep schedule.
pub trait ShardRunner {
    /// Executes (or re-executes) `segment` of `shard`. `restart` is 0 for
    /// the first spawn of the shard and counts all restarts since — the
    /// production runner uses it to pass chaos flags only to the first
    /// spawn, and to resume from the shard journal on every spawn after
    /// something was journaled.
    fn run(&mut self, shard: usize, segment: (usize, usize), restart: u32) -> ShardExit;

    /// Global run indexes of `shard` completed so far (journaled records,
    /// any order). The supervisor treats these as durable: a completed
    /// index is never re-run and never dead-lettered.
    fn completed(&mut self, shard: usize) -> Result<Vec<usize>, String>;

    /// Backoff sleep between restarts.
    fn sleep(&mut self, delay: Duration);
}

/// One run the supervisor gave up on, with context for the dead-letter
/// journal (the caller maps the index back to its [`RunKey`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadRun {
    /// Global run index.
    pub index: usize,
    /// Last crashed exit of the child that was executing it.
    pub exit: String,
    /// Restarts spent on the shard when this run was quarantined.
    pub restarts: u32,
    /// `"bisected"` or `"restart cap exhausted"`.
    pub reason: String,
}

/// Outcome of supervising one shard to completion.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Restarts performed (0 for an uneventful shard).
    pub restarts: u32,
    /// Runs bisected out or dead-lettered wholesale.
    pub dead: Vec<DeadRun>,
}

/// Runs `shard`'s range to completion through `runner`, restarting crashed
/// children with the policy's backoff and bisecting out poison runs.
///
/// The loop maintains a queue of segments (initially the whole range).
/// After every child exit it re-reads the shard's completed set:
///
/// - clean exit, nothing remaining → segment done;
/// - crash (or a clean exit that left work — a defect, treated as a
///   crash) **with progress** since the last spawn → plain restart of the
///   same segment after backoff: the journal guarantees completed runs are
///   never re-executed, so restarts converge;
/// - crash **without progress** → the remaining runs contain a poison run
///   that kills the child before anything lands. A single remaining run
///   *is* the poison run: dead-letter it and move on. Otherwise split the
///   remaining index span at its median into two segments and retry each —
///   O(log n) restarts to isolate one poison run;
/// - restart budget exhausted → dead-letter everything still remaining in
///   the shard, wholesale, and return (the campaign completes with the
///   loss accounted, rather than restarting forever).
pub fn supervise_shard(
    policy: &SupervisorPolicy,
    shard: usize,
    range: (usize, usize),
    runner: &mut dyn ShardRunner,
) -> Result<ShardReport, String> {
    let mut report = ShardReport { shard, ..ShardReport::default() };
    let mut segments: VecDeque<(usize, usize)> = VecDeque::new();
    segments.push_back(range);
    while let Some(segment) = segments.pop_front() {
        let mut remaining = remaining_in(runner, shard, segment)?;
        if remaining.is_empty() {
            continue;
        }
        loop {
            let exit = runner.run(shard, segment, report.restarts);
            let now_remaining = remaining_in(runner, shard, segment)?;
            let status = match exit {
                ShardExit::Clean if now_remaining.is_empty() => break,
                ShardExit::Clean => "clean exit with work remaining".to_string(),
                ShardExit::Crashed { status } => status,
            };
            let progressed = now_remaining.len() < remaining.len();
            remaining = now_remaining;
            if report.restarts >= policy.max_restarts {
                // Budget exhausted: quarantine everything left, in this
                // segment and every queued one.
                let reason = "restart cap exhausted";
                dead_letter_all(&mut report, &remaining, &status, reason);
                while let Some(queued) = segments.pop_front() {
                    let left = remaining_in(runner, shard, queued)?;
                    dead_letter_all(&mut report, &left, &status, reason);
                }
                return Ok(report);
            }
            report.restarts += 1;
            runner.sleep(policy.backoff(shard, report.restarts));
            if progressed {
                continue;
            }
            if remaining.len() == 1 {
                report.dead.push(DeadRun {
                    index: remaining[0],
                    exit: status,
                    restarts: report.restarts,
                    reason: "bisected".to_string(),
                });
                break;
            }
            // Split the remaining span at its median index. Both halves are
            // contiguous sub-ranges of `segment`, so a child can still take
            // them as `--shard-range A:B`; completed runs inside them are
            // skipped via resume.
            let mid = remaining[remaining.len() / 2];
            segments.push_front((mid, segment.1));
            segments.push_front((segment.0, mid));
            break;
        }
    }
    Ok(report)
}

fn dead_letter_all(report: &mut ShardReport, indexes: &[usize], exit: &str, reason: &str) {
    for &index in indexes {
        report.dead.push(DeadRun {
            index,
            exit: exit.to_string(),
            restarts: report.restarts,
            reason: reason.to_string(),
        });
    }
}

fn remaining_in(
    runner: &mut dyn ShardRunner,
    shard: usize,
    segment: (usize, usize),
) -> Result<Vec<usize>, String> {
    let completed = runner.completed(shard)?;
    let mut done = vec![false; segment.1 - segment.0];
    for index in completed {
        if index >= segment.0 && index < segment.1 {
            done[index - segment.0] = true;
        }
    }
    Ok((segment.0..segment.1).filter(|i| !done[i - segment.0]).collect())
}

// ---- Shard directory layout ------------------------------------------------

/// Journal path for shard `i` inside a shard directory.
pub fn shard_journal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.jsonl"))
}

/// Dead-letter journal path inside a shard directory.
pub fn dlq_path(dir: &Path) -> PathBuf {
    dir.join("dlq.jsonl")
}

/// Manifest path inside a shard directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Schema version of the shard-range manifest.
pub const MANIFEST_SCHEMA_VERSION: i64 = 1;

/// The range manifest a sharded campaign writes into its shard directory
/// before spawning children. `wasabi merge <dir>` uses it to re-derive the
/// plan (recompiling the same sources from the same relative paths) and to
/// refuse to merge journals from a different campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of shards (and shard journals).
    pub shards: usize,
    /// Total planned runs across all shards.
    pub total_runs: usize,
    /// `[start, end)` run-index range per shard, in shard order.
    pub ranges: Vec<(usize, usize)>,
    /// FNV-1a digest of the campaign sources (`core::api::source_digest`).
    pub source_digest: u64,
    /// Source file paths exactly as given on the command line (relative
    /// paths stay relative — the simulated LLM keys on them).
    pub files: Vec<String>,
}

/// Writes the manifest into `dir` (pretty JSON, atomic enough for a file
/// written once before any child starts).
pub fn write_manifest(dir: &Path, manifest: &ShardManifest) -> Result<(), String> {
    let path = manifest_path(dir);
    let value = Json::obj([
        ("kind", Json::from("wasabi-shard-manifest")),
        ("schema_version", Json::from(MANIFEST_SCHEMA_VERSION)),
        ("shards", Json::from(manifest.shards as u64)),
        ("total_runs", Json::from(manifest.total_runs as u64)),
        (
            "ranges",
            Json::arr(
                manifest
                    .ranges
                    .iter()
                    .map(|&(a, b)| Json::arr([Json::from(a as u64), Json::from(b as u64)])),
            ),
        ),
        ("source_digest", Json::from(format!("{:016x}", manifest.source_digest))),
        ("files", Json::arr(manifest.files.iter().map(|f| Json::from(f.as_str())))),
    ]);
    std::fs::write(&path, value.pretty())
        .map_err(|err| format!("write manifest {}: {err}", path.display()))
}

/// Reads a manifest back; exact inverse of [`write_manifest`].
pub fn load_manifest(dir: &Path) -> Result<ShardManifest, String> {
    let path = manifest_path(dir);
    let text = std::fs::read_to_string(&path)
        .map_err(|err| format!("read manifest {}: {err}", path.display()))?;
    let value = Json::parse(&text).map_err(|err| format!("manifest {}: {err}", path.display()))?;
    let context = |err: &str| format!("manifest {}: {err}", path.display());
    if value.get("kind").and_then(Json::as_str) != Some("wasabi-shard-manifest") {
        return Err(context("missing manifest header"));
    }
    let version = value.get("schema_version").and_then(Json::as_i64);
    if version != Some(MANIFEST_SCHEMA_VERSION) {
        return Err(context(&format!(
            "schema_version {version:?} (this build reads {MANIFEST_SCHEMA_VERSION})"
        )));
    }
    let usize_field = |name: &str| -> Result<usize, String> {
        value
            .get(name)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| context(&format!("missing {name}")))
    };
    let ranges = value
        .get("ranges")
        .and_then(Json::as_arr)
        .ok_or_else(|| context("missing ranges"))?
        .iter()
        .map(|pair| match pair.as_arr() {
            Some([a, b]) => match (a.as_u64(), b.as_u64()) {
                (Some(a), Some(b)) => Ok((a as usize, b as usize)),
                _ => Err(context("range bounds must be unsigned ints")),
            },
            _ => Err(context("range must be [start, end]")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let digest_text = value
        .get("source_digest")
        .and_then(Json::as_str)
        .ok_or_else(|| context("missing source_digest"))?;
    let source_digest = u64::from_str_radix(digest_text, 16)
        .map_err(|_| context("source_digest must be 16 hex digits"))?;
    let files = value
        .get("files")
        .and_then(Json::as_arr)
        .ok_or_else(|| context("missing files"))?
        .iter()
        .map(|f| {
            f.as_str()
                .map(str::to_string)
                .ok_or_else(|| context("file entries must be strings"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShardManifest {
        shards: usize_field("shards")?,
        total_runs: usize_field("total_runs")?,
        ranges,
        source_digest,
        files,
    })
}

// ---- Key-ordered merge -----------------------------------------------------

/// One shard journal opened for merging: a key → byte-offset index (built
/// in a single streaming pass — records are parsed and *dropped*, only
/// their keys and offsets kept) plus the file handle for random access.
struct ShardIndex {
    file: std::fs::File,
    path: PathBuf,
    /// Plan key → byte offset of its record line.
    offsets: std::collections::BTreeMap<RunKey, u64>,
}

/// A key-ordered merge over shard journals, driven by the *plan*: the
/// caller walks the expected keys in sorted order and asks for each one.
///
/// Shard journals append records in *completion* order (a multi-worker
/// child finishes runs out of key order), so a sequential k-way merge
/// cannot bound memory. Instead each journal is indexed by key → byte
/// offset up front, and [`ShardMerge::take`] random-accesses exactly one
/// record line per call — at most one [`RunRecord`](crate::campaign::RunRecord)
/// is ever resident, the bound [`ShardMerge::peak_resident`] verifies.
///
/// Detected defects, all hard errors: a duplicate key within one journal,
/// a cross-shard duplicate whose bytes diverge (overlapping ranges that
/// disagree), records for keys the plan never asks about (overlap into
/// another campaign — surfaced by [`ShardMerge::finish`]), and — surfaced
/// by the caller when `take` finds nothing — a gap. Exact cross-shard
/// duplicates (the same record journaled by two overlapping ranges) are
/// merged silently: records are keyed and deterministic, so identical
/// bytes are one run.
pub struct ShardMerge {
    shards: Vec<Option<ShardIndex>>,
    /// Any shard journal had a torn tail repaired during indexing.
    pub dropped_tails: usize,
    /// Peak number of records resident at once — the merge's memory bound
    /// (1: records are parsed one at a time and handed straight out).
    pub peak_resident: usize,
}

impl ShardMerge {
    /// Opens and indexes the shard journals. A missing journal is treated
    /// as empty — a shard whose entire range was dead-lettered may never
    /// have started; genuine losses surface as gaps when the caller asks
    /// for the missing keys.
    pub fn open(paths: &[PathBuf]) -> Result<ShardMerge, String> {
        let mut shards = Vec::with_capacity(paths.len());
        let mut dropped_tails = 0;
        for (i, path) in paths.iter().enumerate() {
            if !path.exists() {
                shards.push(None);
                continue;
            }
            let mut reader = JournalReader::open(path)?;
            let mut offsets = std::collections::BTreeMap::new();
            while let Some(record) = reader.next_record()? {
                if offsets.insert(record.key.clone(), reader.record_offset()).is_some() {
                    return Err(format!(
                        "shard {i}: duplicate record for key {:?} within one journal",
                        record.key
                    ));
                }
            }
            dropped_tails += usize::from(reader.dropped_tail);
            let file = std::fs::File::open(path)
                .map_err(|err| format!("read journal {}: {err}", path.display()))?;
            shards.push(Some(ShardIndex {
                file,
                path: path.clone(),
                offsets,
            }));
        }
        Ok(ShardMerge {
            shards,
            dropped_tails,
            peak_resident: 0,
        })
    }

    /// Reads and parses the single record line at `offset` of shard `i`.
    fn read_at(&mut self, i: usize, offset: u64) -> Result<String, String> {
        use std::io::{BufRead, Seek, SeekFrom};
        let shard = self.shards[i].as_mut().expect("indexed shard");
        shard
            .file
            .seek(SeekFrom::Start(offset))
            .map_err(|err| format!("seek journal {}: {err}", shard.path.display()))?;
        let mut line = String::new();
        std::io::BufReader::new(&shard.file)
            .read_line(&mut line)
            .map_err(|err| format!("read journal {}: {err}", shard.path.display()))?;
        Ok(line.trim_end_matches('\n').to_string())
    }

    /// Takes the record for the next expected plan key. Returns `None` for
    /// a gap (no shard journaled `key`) — the caller decides whether that
    /// is a dead-lettered run or an error. Errors on divergent cross-shard
    /// duplicates; exact duplicates merge silently.
    pub fn take(&mut self, key: &RunKey) -> Result<Option<crate::campaign::RunRecord>, String> {
        let holders: Vec<(usize, u64)> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, shard)| {
                shard
                    .as_ref()
                    .and_then(|s| s.offsets.get(key).copied())
                    .map(|offset| (i, offset))
            })
            .collect();
        let Some(&(first, offset)) = holders.first() else {
            return Ok(None);
        };
        let line = self.read_at(first, offset)?;
        // Cross-shard duplicates are compared as raw line bytes — no
        // second record is ever parsed, keeping residency at one.
        for &(i, other_offset) in &holders[1..] {
            if self.read_at(i, other_offset)? != line {
                return Err(format!(
                    "shards {first} and {i}: divergent duplicate record for key {key:?}"
                ));
            }
        }
        for &(i, _) in &holders {
            let shard = self.shards[i].as_mut().expect("indexed shard");
            shard.offsets.remove(key);
        }
        let value = Json::parse(&line)
            .map_err(|err| format!("shard {first}: re-read of key {key:?} failed: {err}"))?;
        let record = journal::record_from_json(&value)
            .map_err(|err| format!("shard {first}: re-read of key {key:?} failed: {err}"))?;
        if record.key != *key {
            return Err(format!(
                "shard {first}: index pointed key {key:?} at a record for {:?}",
                record.key
            ));
        }
        self.peak_resident = self.peak_resident.max(1);
        Ok(Some(record))
    }

    /// Finishes the merge: every indexed key must have been taken. A
    /// leftover means the journals cover keys outside the plan (an overlap
    /// into some other campaign's key space).
    pub fn finish(self) -> Result<usize, String> {
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(shard) = shard {
                if let Some(key) = shard.offsets.keys().next() {
                    return Err(format!(
                        "shard {i}: unexpected record for key {key:?} beyond the plan"
                    ));
                }
            }
        }
        Ok(self.dropped_tails)
    }
}

/// Dead letters ready for the DLQ, built from supervisor [`DeadRun`]s and
/// the plan's key order.
pub fn dead_letters_for(
    shard: usize,
    dead: &[DeadRun],
    keys: &[RunKey],
) -> Result<Vec<DeadLetter>, String> {
    dead.iter()
        .map(|run| {
            let key = keys.get(run.index).cloned().ok_or_else(|| {
                format!("shard {shard}: dead-lettered index {} outside the plan", run.index)
            })?;
            Ok(DeadLetter {
                key,
                shard,
                exit: run.exit.clone(),
                restarts: run.restarts,
                reason: run.reason.clone(),
            })
        })
        .collect()
}
