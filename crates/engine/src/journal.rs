//! The durable campaign journal: checkpoint/resume for long campaigns.
//!
//! A journal is an append-only text file with one JSON document per line:
//!
//! ```text
//! {"kind":"wasabi-journal","schema_version":2}      <- header, always first
//! {"key":{...},"outcome":{...},...}                 <- one line per record
//! {"epoch":1,"completed":32}                        <- fsync'd marker
//! ...
//! ```
//!
//! The writer appends a record line for every finished run and an epoch
//! marker (followed by `fsync`) every [`EPOCH_EVERY`] records, so at most
//! one epoch of work can be lost to an OS crash and at most one *line*
//! to a process kill mid-write. The reader ([`load`]) accepts a journal
//! whose final line is half-written — it drops exactly that line — but
//! rejects corruption anywhere earlier, because silent gaps would violate
//! the engine's every-key-exactly-once guarantee.
//!
//! Record serialization is lossless: a [`RunRecord`] parsed back from its
//! journal line is field-for-field identical to the original, which is
//! what makes a resumed campaign's final report byte-identical to an
//! uninterrupted one (see `tests/determinism.rs`). Keys are written in a
//! fixed order so journal bytes are stable across runs too.

use crate::campaign::{RunOutcome, RunRecord};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use wasabi_analysis::loops::{Mechanism, RetryLocation};
use wasabi_lang::ast::{CallId, LoopId};
use wasabi_lang::project::{CallSite, FileId, MethodId};
use wasabi_oracles::judge::{BugKind, OracleReport};
use wasabi_planner::plan::RunKey;
use wasabi_util::Json;
use wasabi_vm::trace::{ExcSummary, TestOutcome};

/// Journal (and JSON-summary) schema version. Version 1 is the implicit,
/// unversioned PR-1 summary format; version 2 added `schema_version`,
/// crash/retry/quarantine accounting, and the journal itself.
pub const SCHEMA_VERSION: i64 = 2;

/// Records per epoch: each epoch appends a marker line and fsyncs.
const EPOCH_EVERY: usize = 32;

/// An open journal being appended to by a running campaign.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records appended by this process (not counting recovered lines).
    appended: usize,
    /// Records since the last epoch marker.
    since_epoch: usize,
    /// Epoch markers written.
    epochs: usize,
    /// Set after the first I/O error: the journal stops writing (the
    /// campaign itself must not die to a full disk) and reports once.
    disabled: bool,
}

impl Journal {
    /// Opens `path` for appending, creating it (with a header line) if
    /// absent. An existing file is first *repaired*: it is truncated to
    /// its longest valid prefix (complete, parseable lines), so a tail
    /// half-written by a killed process never corrupts the next session's
    /// appends. Returns an error only for I/O failures or a schema/header
    /// mismatch — a repaired-to-empty file is recreated fresh.
    pub fn open(path: &Path) -> Result<Journal, String> {
        let valid_len = match std::fs::read_to_string(path) {
            Ok(text) => scan_valid_prefix(&text)?,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => 0,
            Err(err) => return Err(format!("read {}: {err}", path.display())),
        };
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|err| format!("open {}: {err}", path.display()))?;
        file.set_len(valid_len as u64)
            .map_err(|err| format!("truncate {}: {err}", path.display()))?;
        file.seek(SeekFrom::End(0))
            .map_err(|err| format!("seek {}: {err}", path.display()))?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
            appended: 0,
            since_epoch: 0,
            epochs: 0,
            disabled: false,
        };
        if valid_len == 0 {
            let header = Json::obj([
                ("kind", Json::from("wasabi-journal")),
                ("schema_version", Json::from(SCHEMA_VERSION)),
            ]);
            journal.write_line(&header);
        }
        Ok(journal)
    }

    /// Appends one record. Returns `Some(total appended)` when this
    /// append completed an epoch (marker written and fsync'd) — the
    /// campaign surfaces that as a `CheckpointWritten` event.
    pub fn append(&mut self, record: &RunRecord) -> Option<usize> {
        self.write_line(&record_to_json(record));
        self.appended += 1;
        self.since_epoch += 1;
        if self.since_epoch >= EPOCH_EVERY {
            return self.checkpoint();
        }
        None
    }

    /// Writes a final epoch marker and fsyncs. Returns the total record
    /// count if a marker was written.
    pub fn finish(&mut self) -> Option<usize> {
        if self.since_epoch > 0 {
            self.checkpoint()
        } else {
            None
        }
    }

    fn checkpoint(&mut self) -> Option<usize> {
        self.epochs += 1;
        self.since_epoch = 0;
        let marker = Json::obj([
            ("epoch", Json::from(self.epochs)),
            ("completed", Json::from(self.appended)),
        ]);
        self.write_line(&marker);
        if !self.disabled {
            if let Err(err) = self.file.sync_data() {
                self.report_io_error(&err);
                return None;
            }
        }
        (!self.disabled).then_some(self.appended)
    }

    /// Records appended by this process so far (not counting recovered
    /// lines). Drives the chaos `exit_after_appends` crash point and the
    /// streaming engine's spill decision.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// False once an I/O error has permanently disabled writes — the
    /// streaming engine falls back to keeping records in memory.
    pub fn active(&self) -> bool {
        !self.disabled
    }

    fn write_line(&mut self, value: &Json) {
        if self.disabled {
            return;
        }
        let mut line = value.to_string();
        line.push('\n');
        if let Err(err) = self.file.write_all(line.as_bytes()) {
            self.report_io_error(&err);
        }
    }

    /// Degrade, don't die: a full disk must cost the checkpoint, not the
    /// campaign.
    fn report_io_error(&mut self, err: &std::io::Error) {
        self.disabled = true;
        eprintln!(
            "[engine] journal {} failed ({err}); journaling disabled for the rest of the campaign",
            self.path.display()
        );
    }
}

/// What [`load`] recovered from a journal.
#[derive(Debug, Default)]
pub struct JournalLoad {
    /// Recovered records, in journal (completion) order. Duplicate keys
    /// are kept; the engine's resume merge takes the first occurrence.
    pub records: Vec<RunRecord>,
    /// A half-written final line was dropped during recovery.
    pub dropped_tail: bool,
}

/// Reads a journal back for `--resume`. Tolerates a torn tail — a
/// half-written line at the end of the file, *or* a half-written record
/// line whose only followers are valid epoch markers (a crash racing the
/// epoch fsync can flush the marker while the record line it counts was
/// still buffered) — but rejects corruption anywhere that would silently
/// drop data, as well as a missing or wrong-schema header.
pub fn load(path: &Path) -> Result<JournalLoad, String> {
    let mut reader = JournalReader::open(path)?;
    let mut result = JournalLoad::default();
    while let Some(record) = reader.next_record()? {
        result.records.push(record);
    }
    result.dropped_tail = reader.dropped_tail;
    Ok(result)
}

/// A streaming journal reader: yields records one line at a time without
/// materializing the file, so `wasabi merge` holds at most one record per
/// shard and the streaming report phase holds at most one record total.
/// Applies the same header validation and torn-tail repair as [`load`]
/// (which is implemented on top of it).
#[derive(Debug)]
pub struct JournalReader {
    reader: std::io::BufReader<File>,
    path: PathBuf,
    /// 1-based number of the last line read (for error messages).
    line: usize,
    /// A torn tail was dropped (half-written final line, or a half-written
    /// record line followed only by epoch markers).
    pub dropped_tail: bool,
    finished: bool,
    /// Bytes consumed so far (tracked for [`JournalReader::record_offset`]).
    offset: u64,
    /// Byte offset where the most recently read line starts.
    line_offset: u64,
    /// Byte offset where the last record returned by `next_record` starts.
    record_offset: u64,
}

impl JournalReader {
    /// Opens `path` and validates its header line.
    pub fn open(path: &Path) -> Result<JournalReader, String> {
        let file = File::open(path)
            .map_err(|err| format!("read journal {}: {err}", path.display()))?;
        let mut reader = JournalReader {
            reader: std::io::BufReader::new(file),
            path: path.to_path_buf(),
            line: 0,
            dropped_tail: false,
            finished: false,
            offset: 0,
            line_offset: 0,
            record_offset: 0,
        };
        let Some((line, _complete)) = reader.read_raw_line()? else {
            return Err(format!("journal {}: empty file", path.display()));
        };
        // The header is never torn-tail material — a journal whose first
        // line is unreadable or wrong-schema is unusable.
        match Json::parse(&line).and_then(|value| classify(&value, 0)) {
            Ok(Line::Header) => Ok(reader),
            Ok(_) => Err(format!("journal {}: missing header line", path.display())),
            Err(err) => Err(format!("journal {}: corrupt line 1: {err}", path.display())),
        }
    }

    /// Reads the next non-empty line; returns `(text, had_newline)`, or
    /// `None` at end of file.
    fn read_raw_line(&mut self) -> Result<Option<(String, bool)>, String> {
        use std::io::BufRead;
        loop {
            let mut buf = String::new();
            let n = self
                .reader
                .read_line(&mut buf)
                .map_err(|err| format!("read journal {}: {err}", self.path.display()))?;
            if n == 0 {
                return Ok(None);
            }
            self.line += 1;
            self.line_offset = self.offset;
            self.offset += n as u64;
            let complete = buf.ends_with('\n');
            let text = buf.trim_end_matches('\n').to_string();
            if text.is_empty() {
                continue;
            }
            return Ok(Some((text, complete)));
        }
    }

    /// Returns the next record, skipping epoch markers. `Ok(None)` means a
    /// clean end of journal (possibly after dropping a torn tail — check
    /// [`JournalReader::dropped_tail`]).
    pub fn next_record(&mut self) -> Result<Option<RunRecord>, String> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let Some((text, complete)) = self.read_raw_line()? else {
                self.finished = true;
                return Ok(None);
            };
            let index = self.line - 1;
            match Json::parse(&text).and_then(|value| classify(&value, index)) {
                Ok(Line::Header) => {
                    return Err(format!(
                        "journal {}: duplicate header at line {}",
                        self.path.display(),
                        self.line
                    ))
                }
                Ok(Line::Epoch) => continue,
                Ok(Line::Record(record)) => {
                    self.record_offset = self.line_offset;
                    return Ok(Some(*record));
                }
                Err(err) => {
                    // A torn line (no trailing newline, or cut mid-JSON) is
                    // the expected signature of a killed process. Usually it
                    // is the final line, but a kill racing the epoch fsync
                    // can leave a torn record line *followed by* the epoch
                    // marker that was flushed separately — the tail is
                    // droppable as long as nothing after the tear carries
                    // data (valid epoch markers only, the last of which may
                    // itself be torn).
                    let corrupt_line = self.line;
                    if !complete || self.tail_is_only_epoch_markers()? {
                        self.dropped_tail = true;
                        self.finished = true;
                        return Ok(None);
                    }
                    return Err(format!(
                        "journal {}: corrupt line {corrupt_line}: {err}",
                        self.path.display()
                    ));
                }
            }
        }
    }

    /// Byte offset where the line of the last record returned by
    /// [`JournalReader::next_record`] starts — the handle `wasabi merge`
    /// uses to random-access records by key without keeping them resident
    /// (shard journals append in *completion* order, not key order).
    pub fn record_offset(&self) -> u64 {
        self.record_offset
    }

    /// After a corrupt (complete) line: is everything that follows a valid
    /// epoch marker, except possibly a torn final line? Consumes the rest
    /// of the file.
    fn tail_is_only_epoch_markers(&mut self) -> Result<bool, String> {
        while let Some((text, complete)) = self.read_raw_line()? {
            let parsed = Json::parse(&text).and_then(|value| classify(&value, self.line - 1));
            match parsed {
                Ok(Line::Epoch) => continue,
                // A torn final line is droppable whatever it was becoming.
                Err(_) if !complete => return Ok(true),
                // A record (or header) after the tear means the corruption
                // sits *between* data lines — dropping it would open a gap.
                _ => return Ok(false),
            }
        }
        Ok(true)
    }
}

enum Line {
    Header,
    Epoch,
    Record(Box<RunRecord>),
}

fn classify(value: &Json, index: usize) -> Result<Line, String> {
    if value.get("kind").and_then(Json::as_str) == Some("wasabi-journal") {
        let version = value.get("schema_version").and_then(Json::as_i64);
        if version != Some(SCHEMA_VERSION) {
            return Err(format!(
                "schema_version {version:?} (this build reads {SCHEMA_VERSION})"
            ));
        }
        return Ok(Line::Header);
    }
    if value.get("epoch").is_some() {
        return Ok(Line::Epoch);
    }
    if value.get("key").is_some() {
        return record_from_json(value).map(|r| Line::Record(Box::new(r)));
    }
    Err(format!("unrecognized journal line {}", index + 1))
}

// ---- RunRecord <-> Json ----------------------------------------------------
//
// Key order is fixed so journal bytes are stable; every field of every
// nested type round-trips exactly (no floats appear anywhere in a record,
// so there are no precision hazards).

// Checked narrowing for parsed ids and counts: a corrupt (or torn-and-
// mended) record with an out-of-range value must fail the parse — and
// therefore trigger torn-tail repair or a corruption error — rather than
// silently wrap into a *valid-looking* small id, which would violate the
// every-key-exactly-once guarantee in the nastiest possible way.

fn u64_field(value: &Json, what: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("{what}: expected unsigned int"))
}

fn u32_field(value: &Json, what: &str) -> Result<u32, String> {
    let n = u64_field(value, what)?;
    u32::try_from(n).map_err(|_| format!("{what}: {n} out of range (max {})", u32::MAX))
}

fn u8_field(value: &Json, what: &str) -> Result<u8, String> {
    let n = u64_field(value, what)?;
    u8::try_from(n).map_err(|_| format!("{what}: {n} out of range (max {})", u8::MAX))
}

fn method_to_json(method: &MethodId) -> Json {
    Json::arr([Json::from(method.class.as_str()), Json::from(method.name.as_str())])
}

fn method_from_json(value: &Json) -> Result<MethodId, String> {
    let parts = value.as_arr().ok_or("method: expected array")?;
    match parts {
        [class, name] => Ok(MethodId::new(
            class.as_str().ok_or("method class: expected string")?,
            name.as_str().ok_or("method name: expected string")?,
        )),
        _ => Err("method: expected [class, name]".to_string()),
    }
}

fn site_to_json(site: &CallSite) -> Json {
    Json::arr([Json::from(site.file.0), Json::from(site.call.0)])
}

fn site_from_json(value: &Json) -> Result<CallSite, String> {
    let parts = value.as_arr().ok_or("site: expected array")?;
    match parts {
        [file, call] => Ok(CallSite {
            file: FileId(u32_field(file, "site file")?),
            call: CallId(u32_field(call, "site call")?),
        }),
        _ => Err("site: expected [file, call]".to_string()),
    }
}

fn key_to_json(key: &RunKey) -> Json {
    Json::obj([
        ("test", method_to_json(&key.test)),
        ("site", site_to_json(&key.site)),
        ("exc", Json::from(key.exception.as_str())),
        ("k", Json::from(key.k)),
    ])
}

fn key_from_json(value: &Json) -> Result<RunKey, String> {
    Ok(RunKey {
        test: method_from_json(value.get("test").ok_or("key: missing test")?)?,
        site: site_from_json(value.get("site").ok_or("key: missing site")?)?,
        exception: value
            .get("exc")
            .and_then(Json::as_str)
            .ok_or("key: missing exc")?
            .to_string(),
        k: u32_field(value.get("k").ok_or("key: missing k")?, "key k")?,
    })
}

fn exc_to_json(exc: &ExcSummary) -> Json {
    Json::obj([
        ("ty", Json::from(exc.ty.as_str())),
        ("message", Json::from(exc.message.as_str())),
        ("chain", Json::arr(exc.chain.iter().map(|c| Json::from(c.as_str())))),
        ("raised_at", Json::arr(exc.raised_at.iter().map(method_to_json))),
        ("injected", Json::from(exc.injected)),
    ])
}

fn string_list(value: Option<&Json>, what: &str) -> Result<Vec<String>, String> {
    value
        .and_then(Json::as_arr)
        .ok_or(format!("{what}: expected array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or(format!("{what}: expected string element"))
        })
        .collect()
}

fn exc_from_json(value: &Json) -> Result<ExcSummary, String> {
    Ok(ExcSummary {
        ty: value
            .get("ty")
            .and_then(Json::as_str)
            .ok_or("exc: missing ty")?
            .to_string(),
        message: value
            .get("message")
            .and_then(Json::as_str)
            .ok_or("exc: missing message")?
            .to_string(),
        chain: string_list(value.get("chain"), "exc chain")?,
        raised_at: value
            .get("raised_at")
            .and_then(Json::as_arr)
            .ok_or("exc: missing raised_at")?
            .iter()
            .map(method_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        injected: value
            .get("injected")
            .and_then(Json::as_bool)
            .ok_or("exc: missing injected")?,
    })
}

fn outcome_to_json(outcome: &RunOutcome) -> Json {
    let kind = |k: &str| ("kind", Json::from(k));
    match outcome {
        RunOutcome::TimedOut => Json::obj([kind("timed_out")]),
        RunOutcome::Crashed { message } => {
            Json::obj([kind("crashed"), ("message", Json::from(message.as_str()))])
        }
        RunOutcome::Completed(test) => match test {
            TestOutcome::Passed => Json::obj([kind("passed")]),
            TestOutcome::AssertionFailed { message } => Json::obj([
                kind("assertion_failed"),
                ("message", Json::from(message.as_str())),
            ]),
            TestOutcome::ExceptionEscaped { exc } => {
                Json::obj([kind("exception_escaped"), ("exc", exc_to_json(exc))])
            }
            TestOutcome::Timeout { virtual_ms } => {
                Json::obj([kind("timeout"), ("virtual_ms", Json::from(*virtual_ms))])
            }
            TestOutcome::FuelExhausted => Json::obj([kind("fuel_exhausted")]),
            TestOutcome::WallClockExceeded => Json::obj([kind("wall_clock_exceeded")]),
            TestOutcome::VmFault { message } => Json::obj([
                kind("vm_fault"),
                ("message", Json::from(message.as_str())),
            ]),
        },
    }
}

fn outcome_from_json(value: &Json) -> Result<RunOutcome, String> {
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("outcome: missing kind")?;
    let message = || -> Result<String, String> {
        Ok(value
            .get("message")
            .and_then(Json::as_str)
            .ok_or("outcome: missing message")?
            .to_string())
    };
    Ok(match kind {
        "timed_out" => RunOutcome::TimedOut,
        "crashed" => RunOutcome::Crashed { message: message()? },
        "passed" => RunOutcome::Completed(TestOutcome::Passed),
        "assertion_failed" => {
            RunOutcome::Completed(TestOutcome::AssertionFailed { message: message()? })
        }
        "exception_escaped" => RunOutcome::Completed(TestOutcome::ExceptionEscaped {
            exc: exc_from_json(value.get("exc").ok_or("outcome: missing exc")?)?,
        }),
        "timeout" => RunOutcome::Completed(TestOutcome::Timeout {
            virtual_ms: value
                .get("virtual_ms")
                .and_then(Json::as_u64)
                .ok_or("outcome: missing virtual_ms")?,
        }),
        "fuel_exhausted" => RunOutcome::Completed(TestOutcome::FuelExhausted),
        "wall_clock_exceeded" => RunOutcome::Completed(TestOutcome::WallClockExceeded),
        "vm_fault" => RunOutcome::Completed(TestOutcome::VmFault { message: message()? }),
        other => return Err(format!("outcome: unknown kind `{other}`")),
    })
}

fn location_to_json(location: &RetryLocation) -> Json {
    Json::obj([
        ("site", site_to_json(&location.site)),
        ("coordinator", method_to_json(&location.coordinator)),
        ("retried", method_to_json(&location.retried)),
        ("exc", Json::from(location.exception.as_str())),
        (
            "mechanism",
            match location.mechanism {
                Mechanism::Loop(LoopId(id)) => Json::from(i64::from(id)),
                Mechanism::LlmFlagged => Json::from("llm"),
            },
        ),
    ])
}

fn location_from_json(value: &Json) -> Result<RetryLocation, String> {
    let mechanism = match value.get("mechanism") {
        Some(Json::Int(id)) => Mechanism::Loop(LoopId(
            u32::try_from(*id)
                .map_err(|_| format!("location mechanism: loop id {id} out of range"))?,
        )),
        Some(Json::Str(s)) if s == "llm" => Mechanism::LlmFlagged,
        _ => return Err("location: bad mechanism".to_string()),
    };
    Ok(RetryLocation {
        site: site_from_json(value.get("site").ok_or("location: missing site")?)?,
        coordinator: method_from_json(value.get("coordinator").ok_or("location: missing coordinator")?)?,
        retried: method_from_json(value.get("retried").ok_or("location: missing retried")?)?,
        exception: value
            .get("exc")
            .and_then(Json::as_str)
            .ok_or("location: missing exc")?
            .to_string(),
        mechanism,
    })
}

fn bug_kind_to_str(kind: BugKind) -> &'static str {
    match kind {
        BugKind::MissingCap => "missing-cap",
        BugKind::MissingDelay => "missing-delay",
        BugKind::DifferentException => "different-exception",
    }
}

fn bug_kind_from_str(text: &str) -> Result<BugKind, String> {
    Ok(match text {
        "missing-cap" => BugKind::MissingCap,
        "missing-delay" => BugKind::MissingDelay,
        "different-exception" => BugKind::DifferentException,
        other => return Err(format!("unknown bug kind `{other}`")),
    })
}

fn report_to_json(report: &OracleReport) -> Json {
    Json::obj([
        ("kind", Json::from(bug_kind_to_str(report.kind))),
        ("test", method_to_json(&report.test)),
        ("location", location_to_json(&report.location)),
        ("detail", Json::from(report.detail.as_str())),
        ("dedup_key", Json::from(report.dedup_key.as_str())),
        (
            "exc_chain",
            Json::arr(report.exc_chain.iter().map(|c| Json::from(c.as_str()))),
        ),
    ])
}

fn report_from_json(value: &Json) -> Result<OracleReport, String> {
    Ok(OracleReport {
        kind: bug_kind_from_str(
            value
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("report: missing kind")?,
        )?,
        test: method_from_json(value.get("test").ok_or("report: missing test")?)?,
        location: location_from_json(value.get("location").ok_or("report: missing location")?)?,
        detail: value
            .get("detail")
            .and_then(Json::as_str)
            .ok_or("report: missing detail")?
            .to_string(),
        dedup_key: value
            .get("dedup_key")
            .and_then(Json::as_str)
            .ok_or("report: missing dedup_key")?
            .to_string(),
        exc_chain: string_list(value.get("exc_chain"), "report exc_chain")?,
    })
}

/// Serializes one record as a stable-key-order JSON object (one journal
/// line, compact).
pub fn record_to_json(record: &RunRecord) -> Json {
    Json::obj([
        ("key", key_to_json(&record.key)),
        ("outcome", outcome_to_json(&record.outcome)),
        ("reports", Json::arr(record.reports.iter().map(report_to_json))),
        ("rethrow_filtered", Json::from(record.rethrow_filtered)),
        ("not_a_trigger", Json::from(record.not_a_trigger)),
        ("virtual_ms", Json::from(record.virtual_ms)),
        ("steps", Json::from(record.steps)),
        ("injections", Json::from(record.injections)),
        ("attempts", Json::from(u32::from(record.attempts))),
        ("quarantined", Json::from(record.quarantined)),
    ])
}

/// Parses a record back; exact inverse of [`record_to_json`].
pub fn record_from_json(value: &Json) -> Result<RunRecord, String> {
    Ok(RunRecord {
        key: key_from_json(value.get("key").ok_or("record: missing key")?)?,
        outcome: outcome_from_json(value.get("outcome").ok_or("record: missing outcome")?)?,
        reports: value
            .get("reports")
            .and_then(Json::as_arr)
            .ok_or("record: missing reports")?
            .iter()
            .map(report_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        rethrow_filtered: value
            .get("rethrow_filtered")
            .and_then(Json::as_bool)
            .ok_or("record: missing rethrow_filtered")?,
        not_a_trigger: value
            .get("not_a_trigger")
            .and_then(Json::as_bool)
            .ok_or("record: missing not_a_trigger")?,
        virtual_ms: value
            .get("virtual_ms")
            .and_then(Json::as_u64)
            .ok_or("record: missing virtual_ms")?,
        steps: value
            .get("steps")
            .and_then(Json::as_u64)
            .ok_or("record: missing steps")?,
        injections: u32_field(
            value.get("injections").ok_or("record: missing injections")?,
            "record injections",
        )?,
        attempts: u8_field(
            value.get("attempts").ok_or("record: missing attempts")?,
            "record attempts",
        )?,
        quarantined: value
            .get("quarantined")
            .and_then(Json::as_bool)
            .ok_or("record: missing quarantined")?,
    })
}

/// Scans a journal's text and returns the byte length of its longest
/// valid prefix: whole lines, each parseable and classifiable. Appending
/// resumes after that prefix; everything beyond (a torn tail) is cut.
fn scan_valid_prefix(text: &str) -> Result<usize, String> {
    let mut valid = 0usize;
    for (index, raw) in text.split_inclusive('\n').enumerate() {
        if !raw.ends_with('\n') {
            break; // torn tail: no trailing newline
        }
        let line = raw.trim_end_matches('\n');
        if !line.is_empty() {
            let ok = Json::parse(line).and_then(|v| classify(&v, index)).is_ok();
            if !ok {
                break;
            }
        }
        valid += raw.len();
    }
    Ok(valid)
}

/// Reads the journal for `--resume`, reporting recovery as one stderr
/// line. Missing files are an error — resuming from nothing is almost
/// certainly a typo'd path, and silently running the full plan would
/// masquerade as a resume.
pub fn load_for_resume(path: &Path) -> Result<Vec<RunRecord>, String> {
    let loaded = load(path)?;
    if loaded.dropped_tail {
        eprintln!(
            "[engine] journal {}: dropped a half-written final line (process was killed mid-append)",
            path.display()
        );
    }
    eprintln!(
        "[engine] resuming: {} completed run(s) recovered from {}",
        loaded.records.len(),
        path.display()
    );
    Ok(loaded.records)
}

// ---- Dead-letter queue -----------------------------------------------------
//
// Runs that repeatedly crash their shard *process* are bisected out of the
// restart set by the supervisor and quarantined here — a schema-versioned
// JSON-lines file (`dlq.jsonl`) next to the shard journals. A dead-lettered
// run produces no RunRecord; the merged report counts it in `dead_lettered`.

/// Schema version of the dead-letter journal.
pub const DLQ_SCHEMA_VERSION: i64 = 1;

/// One process-level quarantined run: it repeatedly killed the shard child
/// that executed it, and the supervisor bisected it out of the restart set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The poison run.
    pub key: RunKey,
    /// Shard whose child process it kept killing.
    pub shard: usize,
    /// Rendering of the last crashed child exit ("exit code 134",
    /// "signal 9", ...).
    pub exit: String,
    /// Restarts the supervisor had spent on this shard when the run was
    /// isolated.
    pub restarts: u32,
    /// Supervisor decision: "bisected" (isolated as the poison run) or
    /// "restart cap exhausted" (dead-lettered wholesale with its segment).
    pub reason: String,
}

/// Serializes one dead letter (stable key order, one line).
pub fn dead_letter_to_json(letter: &DeadLetter) -> Json {
    Json::obj([
        ("key", key_to_json(&letter.key)),
        ("shard", Json::from(letter.shard as u64)),
        ("exit", Json::from(letter.exit.as_str())),
        ("restarts", Json::from(letter.restarts)),
        ("reason", Json::from(letter.reason.as_str())),
    ])
}

/// Parses a dead letter back; exact inverse of [`dead_letter_to_json`].
pub fn dead_letter_from_json(value: &Json) -> Result<DeadLetter, String> {
    Ok(DeadLetter {
        key: key_from_json(value.get("key").ok_or("dead letter: missing key")?)?,
        shard: u64_field(value.get("shard").ok_or("dead letter: missing shard")?, "dead letter shard")?
            .try_into()
            .map_err(|_| "dead letter shard out of range".to_string())?,
        exit: value
            .get("exit")
            .and_then(Json::as_str)
            .ok_or("dead letter: missing exit")?
            .to_string(),
        restarts: u32_field(
            value.get("restarts").ok_or("dead letter: missing restarts")?,
            "dead letter restarts",
        )?,
        reason: value
            .get("reason")
            .and_then(Json::as_str)
            .ok_or("dead letter: missing reason")?
            .to_string(),
    })
}

fn dlq_header() -> Json {
    Json::obj([
        ("kind", Json::from("wasabi-dlq")),
        ("schema_version", Json::from(DLQ_SCHEMA_VERSION)),
    ])
}

/// Appends dead letters to `path`, creating the file (with its header) on
/// first use, and fsyncs — a quarantine decision must survive a subsequent
/// supervisor crash. Appending nothing is a no-op (no empty file appears).
pub fn append_dead_letters(path: &Path, letters: &[DeadLetter]) -> Result<(), String> {
    use std::io::Write;
    if letters.is_empty() {
        return Ok(());
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|err| format!("open dlq {}: {err}", path.display()))?;
    let len = file
        .metadata()
        .map_err(|err| format!("stat dlq {}: {err}", path.display()))?
        .len();
    let mut text = String::new();
    if len == 0 {
        text.push_str(&dlq_header().to_string());
        text.push('\n');
    }
    for letter in letters {
        text.push_str(&dead_letter_to_json(letter).to_string());
        text.push('\n');
    }
    file.write_all(text.as_bytes())
        .map_err(|err| format!("write dlq {}: {err}", path.display()))?;
    file.sync_all()
        .map_err(|err| format!("sync dlq {}: {err}", path.display()))?;
    Ok(())
}

/// Loads the dead-letter journal. A missing file means no runs were
/// quarantined (the common case) and yields an empty list. Tolerates a
/// torn final line — the supervisor fsyncs after every batch, but the
/// batch itself can be cut by a crash; anything else corrupt is an error
/// (a silently dropped dead letter would resurrect a poison run as a
/// merge-phase gap).
pub fn load_dead_letters(path: &Path) -> Result<Vec<DeadLetter>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(format!("read dlq {}: {err}", path.display())),
    };
    if text.is_empty() {
        return Err(format!("dlq {}: empty file", path.display()));
    }
    let mut letters = Vec::new();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    for (index, raw) in lines.iter().enumerate() {
        let is_last = index + 1 == lines.len();
        let line = raw.trim_end_matches('\n');
        if line.is_empty() {
            continue;
        }
        let parsed = Json::parse(line).and_then(|value| {
            if index == 0 {
                let kind = value.get("kind").and_then(Json::as_str);
                if kind != Some("wasabi-dlq") {
                    return Err("missing dlq header".to_string());
                }
                let version = value.get("schema_version").and_then(Json::as_i64);
                if version != Some(DLQ_SCHEMA_VERSION) {
                    return Err(format!(
                        "dlq schema_version {version:?} (this build reads {DLQ_SCHEMA_VERSION})"
                    ));
                }
                Ok(None)
            } else {
                dead_letter_from_json(&value).map(Some)
            }
        });
        match parsed {
            Ok(Some(letter)) => letters.push(letter),
            Ok(None) => {}
            Err(err) => {
                if is_last && index > 0 && !raw.ends_with('\n') {
                    eprintln!(
                        "[engine] dlq {}: dropped a half-written final line",
                        path.display()
                    );
                    break;
                }
                return Err(format!("dlq {}: corrupt line {}: {err}", path.display(), index + 1));
            }
        }
    }
    Ok(letters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignOptions, ChaosConfig, RetryPolicy};
    use crate::observer::NullObserver;
    use std::collections::BTreeSet;
    use std::time::Duration;
    use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
    use wasabi_analysis::resolve::ProjectIndex;
    use wasabi_lang::project::Project;
    use wasabi_planner::coverage::profile_coverage;
    use wasabi_planner::plan::{expand_plan, plan, InjectionRun};
    use wasabi_vm::runner::RunOptions;

    const SOURCE: &str = "\
exception ConnectException;\nexception SocketException;\n\
class Flaky {\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { assert(this.run() == \"ok\"); }\n\
}\n\
class Solid {\n\
  field maxAttempts = 4;\n\
  method fetch() throws SocketException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tSolid() { assert(this.run() == \"ok\"); }\n\
}\n";

    fn campaign_fixture() -> (Project, Vec<InjectionRun>) {
        let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
        let index = ProjectIndex::build(&project);
        let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
            .into_iter()
            .flat_map(|(_, locations)| locations)
            .collect();
        let run_options = RunOptions::default();
        let profile = profile_coverage(&project, &locations, &run_options);
        let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
        let test_plan = plan(&profile, &all_sites);
        let runs = expand_plan(&test_plan, &locations, &[1, 100]);
        (project, runs)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("wasabi-journal-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn records_round_trip_through_json_lines() {
        let (project, runs) = campaign_fixture();
        // Chaos at 30% so the fixture covers Crashed, quarantined, and
        // retried records, not just clean completions.
        let options = CampaignOptions {
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::ZERO,
                ..RetryPolicy::default()
            },
            chaos: Some(ChaosConfig::panics(0.3, 99)),
            ..CampaignOptions::default()
        };
        let result = run_campaign(&project, &runs, &options, &mut NullObserver);
        assert!(!result.records.is_empty());
        for record in &result.records {
            let line = record_to_json(record).to_string();
            let back = record_from_json(&Json::parse(&line).expect("parse")).expect("decode");
            assert_eq!(
                format!("{record:?}"),
                format!("{back:?}"),
                "journal round-trip must be lossless"
            );
        }
    }

    #[test]
    fn journal_write_then_load_recovers_every_record() {
        let (project, runs) = campaign_fixture();
        let path = temp_path("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let options = CampaignOptions {
            journal: Some(path.clone()),
            ..CampaignOptions::default()
        };
        let result = run_campaign(&project, &runs, &options, &mut NullObserver);
        let loaded = load(&path).expect("load journal");
        assert!(!loaded.dropped_tail);
        assert_eq!(loaded.records.len(), result.records.len());
        for (a, b) in result.records.iter().zip(&loaded.records) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_drops_only_a_half_written_final_line() {
        let (project, runs) = campaign_fixture();
        let path = temp_path("torn.jsonl");
        let _ = std::fs::remove_file(&path);
        let options = CampaignOptions {
            journal: Some(path.clone()),
            ..CampaignOptions::default()
        };
        let result = run_campaign(&project, &runs, &options, &mut NullObserver);
        // Simulate a process killed mid-append: cut the file mid-way
        // through its final record line.
        let text = std::fs::read_to_string(&path).expect("read");
        let body = text.trim_end_matches('\n');
        let last_line_start = body.rfind('\n').expect("multi-line") + 1;
        let torn_at = last_line_start + (body.len() - last_line_start) / 2;
        std::fs::write(&path, &text[..torn_at]).expect("truncate");

        let loaded = load(&path).expect("load tolerates torn tail");
        assert!(loaded.dropped_tail, "tail must be reported as dropped");
        // Everything before the torn line survived. The torn line was the
        // final epoch marker or a record; either way, at most one record
        // is missing.
        assert!(loaded.records.len() + 1 >= result.records.len() - 1);
        for record in &loaded.records {
            assert!(result.records.iter().any(|r| r.key == record.key));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_mid_file_corruption_and_bad_headers() {
        let path = temp_path("corrupt.jsonl");
        // Corrupt line sandwiched between data lines: hard error. (Followed
        // by only epoch markers it would be a droppable tail — see
        // load_tolerates_a_torn_line_followed_by_epoch_markers.)
        std::fs::write(
            &path,
            format!(
                "{{\"kind\":\"wasabi-journal\",\"schema_version\":2}}\n{{garbage\n{}\n",
                record_line(7)
            ),
        )
        .expect("write");
        let err = load(&path).expect_err("mid-file corruption must fail");
        assert!(err.contains("corrupt line 2"), "got: {err}");
        // Missing header: hard error.
        std::fs::write(&path, "{\"epoch\":1,\"completed\":0}\n").expect("write");
        let err = load(&path).expect_err("missing header must fail");
        assert!(err.contains("missing header"), "got: {err}");
        // Wrong schema version: hard error.
        std::fs::write(&path, "{\"kind\":\"wasabi-journal\",\"schema_version\":99}\n").expect("write");
        let err = load(&path).expect_err("wrong schema must fail");
        assert!(err.contains("schema_version"), "got: {err}");
        let _ = std::fs::remove_file(&path);
    }

    /// A minimal valid record line for hand-built journals.
    fn record_line(k: u64) -> String {
        format!(
            "{{\"key\":{{\"test\":[\"C\",\"t\"],\"site\":[0,4],\"exc\":\"E\",\
             \"k\":{k}}},\"outcome\":{{\"kind\":\"passed\"}},\"reports\":[],\
             \"rethrow_filtered\":false,\"not_a_trigger\":false,\"virtual_ms\":0,\
             \"steps\":0,\"injections\":0,\"attempts\":1,\"quarantined\":false}}"
        )
    }

    const HEADER_LINE: &str = "{\"kind\":\"wasabi-journal\",\"schema_version\":2}";

    /// Regression: the torn-tail repair used to tolerate corruption only on
    /// the literal final line. A process killed while the epoch fsync was in
    /// flight can leave a *torn record line followed by its epoch marker*
    /// (the marker was flushed from a separate buffer write) — that tail is
    /// droppable: nothing after the tear carries data.
    #[test]
    fn load_tolerates_a_torn_line_followed_by_epoch_markers() {
        let path = temp_path("torn-then-epoch.jsonl");

        // Torn record line, then a valid epoch marker: droppable tail.
        std::fs::write(
            &path,
            format!(
                "{HEADER_LINE}\n{}\n{{\"key\":{{\"test\":[\"C\n{{\"epoch\":1,\"completed\":2}}\n",
                record_line(1)
            ),
        )
        .expect("write");
        let loaded = load(&path).expect("torn line before epoch marker is a droppable tail");
        assert!(loaded.dropped_tail);
        assert_eq!(loaded.records.len(), 1, "the intact record before the tear survives");

        // Torn record line, epoch marker, then *another* torn final line
        // (the next session's kill): still droppable.
        std::fs::write(
            &path,
            format!(
                "{HEADER_LINE}\n{}\n{{gar\n{{\"epoch\":1,\"completed\":2}}\n{{\"epoch\":2,\"comp",
                record_line(1)
            ),
        )
        .expect("write");
        let loaded = load(&path).expect("epoch markers then a torn final line still droppable");
        assert!(loaded.dropped_tail);
        assert_eq!(loaded.records.len(), 1);

        // But a valid *record* after the tear means dropping would open a
        // silent gap mid-journal: that stays a hard corruption error.
        std::fs::write(
            &path,
            format!("{HEADER_LINE}\n{{gar\n{}\n", record_line(1)),
        )
        .expect("write");
        let err = load(&path).expect_err("a record after the tear must stay a hard error");
        assert!(err.contains("corrupt line 2"), "got: {err}");

        // Same if the record hides behind an epoch marker.
        std::fs::write(
            &path,
            format!(
                "{HEADER_LINE}\n{{gar\n{{\"epoch\":1,\"completed\":1}}\n{}\n",
                record_line(1)
            ),
        )
        .expect("write");
        let err = load(&path).expect_err("epoch then record after the tear must stay a hard error");
        assert!(err.contains("corrupt line 2"), "got: {err}");
        let _ = std::fs::remove_file(&path);
    }

    /// The streaming reader is the same machine `load` runs on; spot-check
    /// it yields records one at a time with identical repair behavior.
    #[test]
    fn journal_reader_streams_records_and_repairs_tails() {
        let path = temp_path("reader.jsonl");
        std::fs::write(
            &path,
            format!(
                "{HEADER_LINE}\n{}\n{{\"epoch\":1,\"completed\":1}}\n{}\n{{\"key\":{{tor",
                record_line(1),
                record_line(2)
            ),
        )
        .expect("write");
        let mut reader = JournalReader::open(&path).expect("open");
        let first = reader.next_record().expect("read").expect("first record");
        assert_eq!(first.key.k, 1);
        assert!(!reader.dropped_tail, "tail not reached yet");
        let second = reader.next_record().expect("read").expect("second record");
        assert_eq!(second.key.k, 2);
        assert!(reader.next_record().expect("read").is_none());
        assert!(reader.dropped_tail, "torn final line dropped");
        assert!(reader.next_record().expect("read").is_none(), "stays finished");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dead_letters_round_trip_and_tolerate_torn_tails() {
        let path = temp_path("dlq.jsonl");
        let _ = std::fs::remove_file(&path);

        // Missing file: no quarantined runs, not an error.
        assert_eq!(load_dead_letters(&path).expect("missing dlq"), Vec::new());

        let letter = |k: u32, reason: &str| DeadLetter {
            key: RunKey {
                test: MethodId::new("C", "t"),
                site: CallSite { file: FileId(0), call: CallId(4) },
                exception: "E".to_string(),
                k,
            },
            shard: 2,
            exit: "exit code 86".to_string(),
            restarts: 5,
            reason: reason.to_string(),
        };
        append_dead_letters(&path, &[letter(1, "bisected")]).expect("append");
        append_dead_letters(&path, &[letter(100, "restart cap exhausted")]).expect("append more");
        let loaded = load_dead_letters(&path).expect("load");
        assert_eq!(loaded, vec![letter(1, "bisected"), letter(100, "restart cap exhausted")]);

        // Torn final line (supervisor killed mid-batch): dropped, earlier
        // letters survive.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() - 10]).expect("tear");
        let loaded = load_dead_letters(&path).expect("load torn");
        assert_eq!(loaded, vec![letter(1, "bisected")]);

        // Mid-file corruption: hard error.
        std::fs::write(
            &path,
            "{\"kind\":\"wasabi-dlq\",\"schema_version\":1}\n{gar\n{\"key\":{}}\n",
        )
        .expect("write");
        let err = load_dead_letters(&path).expect_err("mid-file corruption");
        assert!(err.contains("corrupt line 2"), "got: {err}");

        // Oversized / malformed shard values must parse-error, never
        // truncate into a bogus shard index (the old `u64 as usize` cast
        // silently wrapped on 32-bit targets).
        let line = dead_letter_to_json(&letter(1, "bisected")).to_string();
        assert!(line.contains("\"shard\":2"), "fixture drifted: {line}");
        for bad in ["-7", "18446744073709551616", "\"2\"", "2.5"] {
            let doc = line.replace("\"shard\":2", &format!("\"shard\":{bad}"));
            let rejected = Json::parse(&doc).and_then(|parsed| dead_letter_from_json(&parsed));
            assert!(rejected.is_err(), "shard {bad} must be rejected");
        }

        // Seeded round-trip sweep across the shard range the JSON integer
        // model represents (i64-backed), including its boundary values.
        let mut rng = wasabi_util::Rng::new(0x0D1A);
        let mut shards: Vec<usize> = (0..32).map(|_| (rng.next_u64() >> 1) as usize).collect();
        shards.extend([0, 1, i64::MAX as usize]);
        for (i, shard) in shards.into_iter().enumerate() {
            let mut sample = letter(i as u32, "bisected");
            sample.shard = shard;
            let round =
                dead_letter_from_json(&Json::parse(&dead_letter_to_json(&sample).to_string()).expect("parse"))
                    .expect("round trip");
            assert_eq!(round, sample, "shard {shard} must survive unchanged");
        }

        // Wrong header kind: hard error.
        std::fs::write(&path, "{\"kind\":\"wasabi-journal\",\"schema_version\":2}\n").expect("write");
        let err = load_dead_letters(&path).expect_err("wrong kind");
        assert!(err.contains("missing dlq header"), "got: {err}");
        let _ = std::fs::remove_file(&path);
    }

    /// Regression: ids and counts wider than their in-memory field used to
    /// be narrowed with bare `as` casts, so a corrupt journal line like
    /// `"attempts": 300` silently wrapped to 44 and resumed a campaign
    /// with plausible-looking garbage. Out-of-range values must fail the
    /// parse instead.
    #[test]
    fn record_parse_rejects_out_of_range_ids_and_counts() {
        let line = |site_file: u64, k: u64, injections: u64, attempts: u64| {
            format!(
                "{{\"key\":{{\"test\":[\"C\",\"t\"],\"site\":[{site_file},4],\"exc\":\"E\",\
                 \"k\":{k}}},\"outcome\":{{\"kind\":\"passed\"}},\"reports\":[],\
                 \"rethrow_filtered\":false,\"not_a_trigger\":false,\"virtual_ms\":0,\
                 \"steps\":0,\"injections\":{injections},\"attempts\":{attempts},\
                 \"quarantined\":false}}"
            )
        };
        let parse = |text: &str| record_from_json(&Json::parse(text).expect("json"));

        // In-range values parse fine (the maxima themselves round-trip).
        let ok = parse(&line(u64::from(u32::MAX), 100, u64::from(u32::MAX), 255))
            .expect("maxima must parse");
        assert_eq!(ok.key.site.file.0, u32::MAX);
        assert_eq!(ok.attempts, 255);

        // One-past-the-end (and far past) each fail with a field-named error.
        let big = 1u64 << 40;
        for (text, field) in [
            (line(big, 1, 0, 1), "site file"),
            (line(0, big, 0, 1), "key k"),
            (line(0, 1, big, 1), "record injections"),
            (line(0, 1, 0, 300), "record attempts"),
            (line(0, 1, 0, 256), "record attempts"),
        ] {
            let err = parse(&text).expect_err("oversized value must fail parse");
            assert!(
                err.contains(field) && err.contains("out of range"),
                "expected `{field} ... out of range`, got: {err}"
            );
        }

        // A negative loop id in a report location must not wrap to u32.
        let loc = "{\"site\":[0,1],\"coordinator\":[\"C\",\"run\"],\"retried\":[\"C\",\"op\"],\
                   \"exc\":\"E\",\"mechanism\":-3}";
        let err = location_from_json(&Json::parse(loc).expect("json"))
            .expect_err("negative loop id must fail");
        assert!(err.contains("out of range"), "got: {err}");
    }

    #[test]
    fn open_repairs_a_torn_tail_before_appending() {
        let path = temp_path("repair.jsonl");
        std::fs::write(
            &path,
            "{\"kind\":\"wasabi-journal\",\"schema_version\":2}\n{\"epoch\":1,\"comp",
        )
        .expect("write");
        drop(Journal::open(&path).expect("open repairs"));
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text, "{\"kind\":\"wasabi-journal\",\"schema_version\":2}\n");
        // And the repaired file loads cleanly (no records yet).
        let loaded = load(&path).expect("load repaired");
        assert!(loaded.records.is_empty());
        assert!(!loaded.dropped_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_from_journal_is_byte_identical_and_reruns_less() {
        let (project, runs) = campaign_fixture();
        let full_path = temp_path("full.jsonl");
        let cut_path = temp_path("cut.jsonl");
        let _ = std::fs::remove_file(&full_path);
        let _ = std::fs::remove_file(&cut_path);

        let full = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                journal: Some(full_path.clone()),
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );

        // Simulate a kill: keep the header + the first half of the
        // record lines, with the last kept line torn mid-write.
        let text = std::fs::read_to_string(&full_path).expect("read");
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        let keep = (lines.len() / 2).max(2);
        let mut cut: String = lines[..keep].concat();
        cut.truncate(cut.len().saturating_sub(7)); // tear the tail
        std::fs::write(&cut_path, &cut).expect("write cut");

        let recovered = load(&cut_path).expect("load cut journal");
        assert!(recovered.dropped_tail);
        assert!(
            !recovered.records.is_empty() && recovered.records.len() < runs.len(),
            "partial recovery: {} of {}",
            recovered.records.len(),
            runs.len()
        );
        let executed_before = recovered.records.len();
        let resumed = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                jobs: 4,
                resume: recovered.records,
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        assert_eq!(
            resumed
                .stats
                .worker_runs
                .iter()
                .sum::<usize>()
                + resumed.stats.supervisor_runs,
            runs.len() - executed_before,
            "strictly fewer runs re-executed than the full plan"
        );
        let render = |records: &[RunRecord]| -> Vec<String> {
            records.iter().map(|r| format!("{r:?}")).collect()
        };
        assert_eq!(
            render(&full.records),
            render(&resumed.records),
            "resumed campaign must be byte-identical to the uninterrupted one"
        );
        let _ = std::fs::remove_file(&full_path);
        let _ = std::fs::remove_file(&cut_path);
    }

    #[test]
    fn journal_appends_across_sessions_resume_same_file() {
        let (project, runs) = campaign_fixture();
        let path = temp_path("sessions.jsonl");
        let _ = std::fs::remove_file(&path);
        // Session 1: journal half the campaign (simulated by journaling a
        // full run, then cutting the file to half the record lines).
        let full = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                journal: Some(path.clone()),
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        std::fs::write(&path, lines[..lines.len() / 2].concat()).expect("cut");
        // Session 2: resume from the same file while appending to it —
        // the natural `--journal j --resume j` CLI shape.
        let recovered = load_for_resume(&path).expect("load");
        let resumed = run_campaign(
            &project,
            &runs,
            &CampaignOptions {
                journal: Some(path.clone()),
                resume: recovered,
                ..CampaignOptions::default()
            },
            &mut NullObserver,
        );
        assert_eq!(
            resumed.records.len(),
            full.records.len(),
            "every key reported exactly once"
        );
        // The journal now holds every record (old + appended), so a
        // third session would re-run nothing.
        let final_load = load(&path).expect("load final");
        let keys: BTreeSet<String> = final_load
            .records
            .iter()
            .map(|r| format!("{:?}", r.key))
            .collect();
        assert_eq!(keys.len(), runs.len());
        let _ = std::fs::remove_file(&path);
    }
}
