//! A sharded work queue built purely on `std::sync::{Mutex, Condvar}`.
//!
//! The campaign's work items (run indexes) are distributed round-robin over
//! one shard per worker at construction time, so under even load each worker
//! drains its own shard without ever contending on a global lock. When a
//! worker's shard runs dry it steals from the other shards, which keeps all
//! workers busy through the tail of a campaign where run durations are
//! skewed (a handful of K=100 runs can outlast everything else).
//!
//! The queue also supports blocking pops for open-ended producers
//! ([`ShardedQueue::push`] + [`ShardedQueue::pop_blocking`]); the campaign
//! engine itself pre-fills the queue and uses the non-blocking
//! [`ShardedQueue::pop`], but the blocking path is what a streaming planner
//! would use and is covered by tests so it stays honest.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A multi-shard MPMC queue of work items.
pub struct ShardedQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Signalled on every push and on close; blocking pops wait on it.
    signal: Condvar,
    /// Guards the closed flag; also the Condvar's companion lock.
    state: Mutex<bool>,
}

impl<T> ShardedQueue<T> {
    /// Creates a queue with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedQueue {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Condvar::new(),
            state: Mutex::new(false),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Creates a queue pre-filled with `items`, dealt round-robin across
    /// `shards` shards. This is the campaign path: all work is known up
    /// front, so the queue is closed immediately and pops never block.
    pub fn prefilled(items: impl IntoIterator<Item = T>, shards: usize) -> Self {
        let queue = ShardedQueue::new(shards);
        for (index, item) in items.into_iter().enumerate() {
            let shard = index % queue.shards.len();
            queue.shards[shard].lock().expect("shard lock").push_back(item);
        }
        queue.close();
        queue
    }

    /// Pushes an item onto `shard` (modulo the shard count) and wakes one
    /// blocked popper.
    pub fn push(&self, shard: usize, item: T) {
        let shard = shard % self.shards.len();
        self.shards[shard].lock().expect("shard lock").push_back(item);
        // Notify while holding the state lock: a blocked popper scans the
        // shards under this lock before waiting, so the notification cannot
        // land in the gap between its empty scan and its wait.
        let _state = self.state.lock().expect("state lock");
        self.signal.notify_one();
    }

    /// Marks the queue closed: blocked pops return `None` once drained.
    pub fn close(&self) {
        *self.state.lock().expect("state lock") = true;
        self.signal.notify_all();
    }

    /// Non-blocking pop for worker `home`: tries the home shard first, then
    /// steals from the others in order. Returns `None` when every shard is
    /// empty at the time of the scan.
    pub fn pop(&self, home: usize) -> Option<T> {
        let count = self.shards.len();
        let home = home % count;
        for offset in 0..count {
            let shard = (home + offset) % count;
            if let Some(item) = self.shards[shard].lock().expect("shard lock").pop_front() {
                return Some(item);
            }
        }
        None
    }

    /// Blocking pop: waits until an item is available anywhere or the queue
    /// is closed and fully drained.
    pub fn pop_blocking(&self, home: usize) -> Option<T> {
        let mut closed = self.state.lock().expect("state lock");
        loop {
            // Scanning under the state lock pairs with `push` notifying
            // under it: an item inserted after this scan will find either a
            // waiter to wake or no one holding the lock.
            if let Some(item) = self.pop(home) {
                return Some(item);
            }
            if *closed {
                return None;
            }
            closed = self.signal.wait(closed).expect("condvar wait");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn prefilled_round_robins_items_across_shards() {
        let queue = ShardedQueue::prefilled(0..10, 3);
        assert_eq!(queue.shard_count(), 3);
        // Shard 0 gets 0,3,6,9; shard 1 gets 1,4,7; shard 2 gets 2,5,8.
        assert_eq!(queue.pop(0), Some(0));
        assert_eq!(queue.pop(1), Some(1));
        assert_eq!(queue.pop(2), Some(2));
    }

    #[test]
    fn pop_drains_home_shard_then_steals() {
        let queue = ShardedQueue::prefilled(0..4, 2);
        // Home shard 0 holds 0 and 2; stealing then yields shard 1's items.
        assert_eq!(queue.pop(0), Some(0));
        assert_eq!(queue.pop(0), Some(2));
        assert_eq!(queue.pop(0), Some(1));
        assert_eq!(queue.pop(0), Some(3));
        assert_eq!(queue.pop(0), None);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let queue = ShardedQueue::prefilled([7], 0);
        assert_eq!(queue.shard_count(), 1);
        assert_eq!(queue.pop(0), Some(7));
    }

    #[test]
    fn concurrent_workers_drain_every_item_exactly_once() {
        const ITEMS: usize = 1000;
        const WORKERS: usize = 8;
        let queue = ShardedQueue::prefilled(0..ITEMS, WORKERS);
        let popped = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        thread::scope(|scope| {
            let (queue, popped, sum) = (&queue, &popped, &sum);
            for worker in 0..WORKERS {
                scope.spawn(move || {
                    while let Some(item) = queue.pop(worker) {
                        popped.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(item, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(popped.load(Ordering::Relaxed), ITEMS);
        assert_eq!(sum.load(Ordering::Relaxed), ITEMS * (ITEMS - 1) / 2);
    }

    #[test]
    fn blocking_pop_waits_for_pushes_and_ends_on_close() {
        let queue = ShardedQueue::new(2);
        let drained = AtomicUsize::new(0);
        thread::scope(|scope| {
            let (queue, drained) = (&queue, &drained);
            for worker in 0..2 {
                scope.spawn(move || {
                    while queue.pop_blocking(worker).is_some() {
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for item in 0..100 {
                queue.push(item, item);
            }
            queue.close();
        });
        assert_eq!(drained.load(Ordering::Relaxed), 100);
    }
}
