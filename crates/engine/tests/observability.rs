//! Observability integration tests: the metrics layer's determinism
//! contract across worker counts, and observer fan-out (the metrics
//! recorder must compose with the reporting observers without changing
//! what either sees).

use std::collections::BTreeSet;
use std::time::Duration;
use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_engine::campaign::{run_campaign, CampaignOptions, ChaosConfig, RetryPolicy};
use wasabi_engine::{MetricsObserver, StderrProgress, Tee};
use wasabi_lang::project::Project;
use wasabi_planner::coverage::profile_coverage;
use wasabi_planner::plan::{expand_plan, plan, InjectionRun};
use wasabi_vm::runner::RunOptions;

const SOURCE: &str = "\
exception ConnectException;\nexception SocketException;\n\
class Flaky {\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { assert(this.run() == \"ok\"); }\n\
}\n\
class Solid {\n\
  field maxAttempts = 4;\n\
  method fetch() throws SocketException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tSolid() { assert(this.run() == \"ok\"); }\n\
}\n";

fn campaign_fixture() -> (Project, Vec<InjectionRun>) {
    let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
    let index = ProjectIndex::build(&project);
    let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
        .into_iter()
        .flat_map(|(_, locations)| locations)
        .collect();
    let run_options = RunOptions::default();
    let profile = profile_coverage(&project, &locations, &run_options);
    let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
    let test_plan = plan(&profile, &all_sites);
    let runs = expand_plan(&test_plan, &locations, &[1, 100]);
    (project, runs)
}

/// Chaos at 30% (seeded, so identical draws at any worker count) makes
/// the fixture cover crashes, retries, and quarantine — the records the
/// deterministic histograms must agree on.
fn options(jobs: usize) -> CampaignOptions {
    CampaignOptions {
        jobs,
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            ..RetryPolicy::default()
        },
        chaos: Some(ChaosConfig::panics(0.3, 99)),
        ..CampaignOptions::default()
    }
}

/// A run span with its scheduling-dependent fields (timing, worker,
/// clock-relative edges) stripped — the part of the span set that must
/// be identical across worker counts.
fn stripped_spans(recorder: &MetricsObserver) -> Vec<(String, String, u8, u32, u64, usize)> {
    let mut spans: Vec<_> = recorder
        .runs()
        .iter()
        .map(|span| {
            (
                span.key_string(),
                span.outcome.clone(),
                span.attempts,
                span.injections,
                span.steps,
                span.reports,
            )
        })
        .collect();
    spans.sort();
    spans
}

#[test]
fn metrics_and_spans_identical_across_worker_counts() {
    let (project, runs) = campaign_fixture();
    assert!(runs.len() >= 4, "fixture plans 2 locations x 2 K values");
    let mut serial_recorder = MetricsObserver::new();
    let serial = run_campaign(&project, &runs, &options(1), &mut serial_recorder);
    let mut parallel_recorder = MetricsObserver::new();
    let parallel = run_campaign(&project, &runs, &options(4), &mut parallel_recorder);

    // The deterministic histograms merge to bit-identical values.
    for ((name, a), (_, b)) in serial
        .metrics
        .deterministic()
        .iter()
        .zip(parallel.metrics.deterministic())
    {
        assert_eq!(**a, *b, "histogram `{name}` differs between jobs=1 and jobs=4");
    }
    // Host-timing histograms are scheduling-dependent, but every record
    // contributes exactly one sample, so the counts still agree.
    for ((name, a), (_, b)) in serial.metrics.timing().iter().zip(parallel.metrics.timing()) {
        assert_eq!(
            a.count(),
            b.count(),
            "timing histogram `{name}` sample count differs"
        );
    }
    // The span sets agree modulo timing fields and worker assignment.
    assert_eq!(stripped_spans(&serial_recorder), stripped_spans(&parallel_recorder));
    assert_eq!(
        serial_recorder.runs().len(),
        runs.len(),
        "one closed span per planned run"
    );
}

#[test]
fn metrics_observer_composes_with_stderr_progress() {
    let (project, runs) = campaign_fixture();
    let mut recorder = MetricsObserver::new();
    let mut progress = StderrProgress::new(usize::MAX);
    let mut tee = Tee {
        first: &mut progress,
        second: &mut recorder,
    };
    let result = run_campaign(&project, &runs, &options(2), &mut tee);
    // The recorder saw the full event stream: every record's span closed,
    // and the Finished stats/metrics match what the campaign returned.
    assert_eq!(recorder.runs().len(), result.records.len());
    let stats = recorder.stats().expect("Finished event delivers stats");
    assert_eq!(stats.runs_total, result.stats.runs_total);
    let metrics = recorder.metrics().expect("Finished event delivers metrics");
    assert_eq!(metrics.steps.count(), result.metrics.steps.count());
    assert_eq!(metrics.attempts.sum(), result.metrics.attempts.sum());
}

#[cfg(feature = "json-reports")]
#[test]
fn metrics_observer_composes_with_json_summary_sink() {
    use wasabi_engine::JsonSummarySink;
    let (project, runs) = campaign_fixture();
    let mut recorder = MetricsObserver::new();
    let mut sink = JsonSummarySink::new();
    let mut tee = Tee {
        first: &mut sink,
        second: &mut recorder,
    };
    let result = run_campaign(&project, &runs, &options(2), &mut tee);
    let summary = sink.summary().expect("summary after Finished").to_string();
    assert!(summary.contains("\"metrics\""), "summary carries the metrics block");
    assert!(summary.contains("\"steps\""));
    assert_eq!(recorder.runs().len(), result.records.len());
}
