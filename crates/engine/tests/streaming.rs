//! Bounded-memory streaming: with `CampaignOptions::stream` and a journal,
//! finished records spill to disk and the engine's peak resident record
//! count stays O(in-flight jobs) instead of O(total runs) — and the
//! journal still contains every record, so the report phase loses nothing.

use std::collections::BTreeSet;
use std::path::PathBuf;

use wasabi_analysis::loops::{all_retry_locations, LoopQueryOptions};
use wasabi_analysis::resolve::ProjectIndex;
use wasabi_engine::campaign::{run_campaign, CampaignOptions};
use wasabi_engine::journal;
use wasabi_engine::observer::NullObserver;
use wasabi_lang::project::Project;
use wasabi_planner::coverage::profile_coverage;
use wasabi_planner::plan::{expand_plan, plan, InjectionRun};
use wasabi_vm::runner::RunOptions;

const SOURCE: &str = "\
exception ConnectException;\nexception SocketException;\n\
class Flaky {\n\
  method op() throws ConnectException { return \"ok\"; }\n\
  method run() {\n\
    while (true) {\n\
      try { return this.op(); } catch (ConnectException e) { log(\"retrying\"); }\n\
    }\n\
  }\n\
  test tFlaky() { assert(this.run() == \"ok\"); }\n\
}\n\
class Solid {\n\
  field maxAttempts = 4;\n\
  method fetch() throws SocketException { return \"ok\"; }\n\
  method run() {\n\
    for (var retry = 0; retry < this.maxAttempts; retry = retry + 1) {\n\
      try { return this.fetch(); } catch (SocketException e) { sleep(25); }\n\
    }\n\
    throw new SocketException(\"giving up\");\n\
  }\n\
  test tSolid() { assert(this.run() == \"ok\"); }\n\
}\n";

fn campaign_fixture() -> (Project, Vec<InjectionRun>) {
    let project = Project::compile("t", vec![("t.jav", SOURCE)]).expect("compile");
    let index = ProjectIndex::build(&project);
    let locations: Vec<_> = all_retry_locations(&index, &LoopQueryOptions::default())
        .into_iter()
        .flat_map(|(_, locations)| locations)
        .collect();
    let run_options = RunOptions::default();
    let profile = profile_coverage(&project, &locations, &run_options);
    let all_sites: BTreeSet<_> = locations.iter().map(|l| l.site).collect();
    let test_plan = plan(&profile, &all_sites);
    let mut runs = expand_plan(&test_plan, &locations, &[1, 2, 3, 100]);
    runs.sort_by(|a, b| a.key().cmp(&b.key()));
    (project, runs)
}

fn temp_journal(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("wasabi-streaming-test-{}-{name}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn streaming_bounds_resident_records_without_losing_any() {
    let (project, runs) = campaign_fixture();
    assert!(runs.len() >= 8, "fixture too small to observe a bound: {}", runs.len());

    // Baseline: a non-streaming campaign keeps every record resident.
    let baseline = run_campaign(&project, &runs, &CampaignOptions::default(), &mut NullObserver);
    assert_eq!(baseline.stats.peak_resident_records, runs.len());
    assert_eq!(baseline.records.len(), runs.len());

    // Streaming: records spill to the journal as their slots complete.
    let path = temp_journal("bounded");
    let options = CampaignOptions {
        jobs: 2,
        journal: Some(path.clone()),
        stream: true,
        ..CampaignOptions::default()
    };
    let streamed = run_campaign(&project, &runs, &options, &mut NullObserver);
    assert!(streamed.records.is_empty(), "streaming must not accumulate records in RAM");
    assert!(
        streamed.stats.peak_resident_records < runs.len() / 2,
        "peak residency {} is not bounded against {} runs",
        streamed.stats.peak_resident_records,
        runs.len()
    );

    // The journal holds every record, byte-equal to the in-memory run.
    let load = journal::load(&path).expect("load journal");
    assert!(!load.dropped_tail);
    assert_eq!(load.records.len(), runs.len());
    let mut recovered = load.records;
    recovered.sort_by(|a, b| a.key.cmp(&b.key));
    for (mem, disk) in baseline.records.iter().zip(&recovered) {
        assert_eq!(
            journal::record_to_json(mem).to_string(),
            journal::record_to_json(disk).to_string(),
            "streamed record diverged from the in-memory campaign"
        );
    }
    let _ = std::fs::remove_file(&path);
}
